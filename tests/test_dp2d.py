"""Tests for the 2-d optimal DP and the brute-force oracle."""

import numpy as np
import pytest

from repro.baselines.dp2d import brute_force_rms, dp2d
from repro.baselines.greedy import greedy
from repro.core.regret import max_regret_ratio_lp
from repro.geometry.hull import extreme_points


class TestDp2d:
    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            dp2d(rng.random((10, 3)), 3)

    def test_small_hull_returned_whole(self):
        pts = np.array([[0.1, 0.9], [0.9, 0.1], [0.5, 0.5]])
        idx = dp2d(pts, 5)
        assert set(extreme_points(pts).tolist()) <= set(idx.tolist())

    def test_matches_bruteforce_optimum(self, rng):
        for trial in range(3):
            pts = np.random.default_rng(trial).random((25, 2))
            idx = dp2d(pts, 3)
            mrr_dp = max_regret_ratio_lp(pts, pts[idx])
            cand = extreme_points(pts)
            _, mrr_opt = brute_force_rms(pts, 3, candidates=cand)
            assert mrr_dp <= mrr_opt + 5e-3

    def test_beats_or_matches_greedy(self, rng):
        pts = rng.random((60, 2))
        idx_dp = dp2d(pts, 4)
        idx_g = greedy(pts, 4, method="sample", n_samples=4000, seed=0)
        m_dp = max_regret_ratio_lp(pts, pts[idx_dp])
        m_g = max_regret_ratio_lp(pts, pts[idx_g])
        assert m_dp <= m_g + 5e-3

    def test_size_bound(self, rng):
        pts = rng.random((80, 2))
        assert len(dp2d(pts, 5)) <= 5


class TestBruteForce:
    def test_exact_on_paper_example(self, paper_points):
        idx, val = brute_force_rms(paper_points, 2)
        # RMS(1, 2): with k = 1 the optimum has small but nonzero regret.
        assert len(idx) == 2
        assert 0.0 <= val < 0.3

    def test_candidate_restriction(self, paper_points):
        idx, _ = brute_force_rms(paper_points, 2, candidates=np.array([0, 3]))
        assert sorted(idx.tolist()) == [0, 3]

    def test_custom_evaluator(self, paper_points):
        calls = []

        def fake_eval(p, q, k):
            calls.append(1)
            return float(len(q))
        brute_force_rms(paper_points, 2, evaluator=fake_eval,
                        candidates=np.array([0, 1, 2]))
        assert len(calls) == 3
