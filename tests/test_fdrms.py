"""Unit + integration tests for FD-RMS (Algorithms 2-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fdrms import FDRMS
from repro.core.regret import RegretEvaluator
from repro.data.database import Database


def make(points, k=1, r=8, eps=0.05, m_max=128, seed=0):
    db = Database(points)
    return db, FDRMS(db, k, r, eps, m_max=m_max, seed=seed)


def check_invariants(db: Database, algo: FDRMS) -> None:
    result = algo.result()
    assert len(result) == len(set(result))
    for pid in result:
        assert pid in db
    cover = algo._cover
    assert cover.is_cover()
    assert cover.is_stable()
    # Active universe is exactly the prefix [0, m).
    assert cover.universe == frozenset(range(algo.m)) or len(db) == 0
    assert algo.r <= algo.m <= algo.m_max


class TestConstruction:
    def test_basic(self, small_cloud):
        db, algo = make(small_cloud)
        check_invariants(db, algo)
        assert 1 <= len(algo.result())

    def test_result_points_shape(self, small_cloud):
        db, algo = make(small_cloud)
        pts = algo.result_points()
        assert pts.shape == (len(algo.result()), 4)

    def test_empty_db_start(self):
        db = Database(d=3)
        algo = FDRMS(db, 1, 5, 0.05, m_max=64, seed=0)
        assert algo.result() == []
        pid = algo.insert([0.5, 0.5, 0.5])
        assert algo.result() == [pid]

    def test_parameter_validation(self, small_cloud):
        db = Database(small_cloud)
        with pytest.raises(ValueError):
            FDRMS(db, 0, 8, 0.05)
        with pytest.raises(ValueError):
            FDRMS(db, 1, 2, 0.05)       # r < d
        with pytest.raises(ValueError):
            FDRMS(db, 1, 8, 0.0)
        with pytest.raises(ValueError):
            FDRMS(db, 1, 8, 0.05, m_max=8)   # m_max <= r

    def test_result_size_at_most_r_when_m_not_saturated(self, rng):
        # With a generous eps the binary search should land |C| == r
        # (or fewer sets suffice to cover even at m = M).
        pts = rng.random((400, 3))
        db, algo = make(pts, r=6, eps=0.1, m_max=512)
        assert len(algo.result()) <= 6 or algo.m == algo.m_max


class TestDynamics:
    def test_insert_dominating_point_enters_result(self, small_cloud):
        db, algo = make(small_cloud)
        pid = algo.insert(np.array([1.0, 1.0, 1.0, 1.0]))
        assert pid in algo.result()
        check_invariants(db, algo)

    def test_insert_weak_point_no_result_change(self, small_cloud):
        db, algo = make(small_cloud)
        before = algo.result()
        algo.insert(np.array([0.01, 0.01, 0.01, 0.01]))
        assert algo.result() == before
        check_invariants(db, algo)

    def test_delete_result_member(self, small_cloud):
        db, algo = make(small_cloud)
        victim = algo.result()[0]
        algo.delete(victim)
        assert victim not in algo.result()
        check_invariants(db, algo)

    def test_delete_non_member(self, small_cloud):
        db, algo = make(small_cloud)
        non_members = [pid for pid in db.ids() if pid not in algo.result()]
        algo.delete(int(non_members[0]))
        check_invariants(db, algo)

    def test_drain_and_refill(self, rng):
        pts = rng.random((20, 3))
        db, algo = make(pts, r=4, m_max=32)
        for pid in list(db.ids()):
            algo.delete(int(pid))
        assert algo.result() == []
        assert len(db) == 0
        ids = [algo.insert(rng.random(3)) for _ in range(10)]
        check_invariants(db, algo)
        assert set(algo.result()) <= set(ids)

    def test_long_mixed_stream(self, rng):
        pts = rng.random((120, 3))
        db, algo = make(pts, r=6, eps=0.05, m_max=128)
        for step in range(150):
            alive = db.ids()
            if alive.size < 10 or rng.random() < 0.5:
                algo.insert(rng.random(3))
            else:
                algo.delete(int(alive[rng.integers(alive.size)]))
            if step % 25 == 0:
                check_invariants(db, algo)
        check_invariants(db, algo)


class TestQuality:
    def test_quality_near_greedy(self, rng):
        """FD-RMS mrr should be within a small gap of static GREEDY."""
        from repro.baselines.greedy import greedy
        from repro.skyline import skyline_indices
        pts = rng.random((500, 3))
        db, algo = make(pts, r=10, eps=0.03, m_max=512, seed=3)
        ev = RegretEvaluator(3, n_samples=20_000, seed=4)
        mrr_fd = ev.evaluate(pts, algo.result_points())
        sky = pts[skyline_indices(pts)]
        g = greedy(sky, 10, method="sample", n_samples=5000, seed=5)
        mrr_greedy = ev.evaluate(pts, sky[g])
        assert mrr_fd <= mrr_greedy + 0.05

    def test_quality_improves_with_r(self, rng):
        pts = rng.random((300, 3))
        ev = RegretEvaluator(3, n_samples=10_000, seed=0)
        vals = []
        for r in (4, 8, 16):
            db, algo = make(pts, r=r, eps=0.05, m_max=256, seed=1)
            vals.append(ev.evaluate(pts, algo.result_points()))
        assert vals[2] <= vals[0] + 0.02

    def test_theorem2_regret_set_property(self, rng):
        """Q_t covers every *active sampled* utility within (k, ε)."""
        pts = rng.random((200, 3))
        db, algo = make(pts, k=2, r=6, eps=0.1, m_max=64, seed=2)
        q = set(algo.result())
        topk = algo._topk
        for u_idx in range(algo.m):
            members = set(topk.members_of(u_idx))
            assert members & q, f"utility {u_idx} uncovered"


class TestUpdateM:
    def test_m_shrinks_when_cover_small(self, rng):
        # Huge eps → dense sets → tiny covers → m should stay near max
        # while |C| < r; with tiny eps the opposite.
        pts = rng.random((300, 3))
        _, algo_dense = make(pts, r=6, eps=0.3, m_max=64, seed=0)
        _, algo_sparse = make(pts, r=6, eps=0.001, m_max=64, seed=0)
        assert algo_dense.m >= algo_sparse.m

    def test_m_bounds_respected(self, rng):
        pts = rng.random((100, 3))
        db, algo = make(pts, r=5, eps=0.05, m_max=32)
        for _ in range(40):
            algo.insert(rng.random(3))
        assert 5 <= algo.m <= 32


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200), k=st.integers(1, 3))
def test_fdrms_random_stream_property(seed, k):
    rng = np.random.default_rng(seed)
    pts = rng.random((30, 3))
    db = Database(pts)
    algo = FDRMS(db, k, 4, 0.08, m_max=32, seed=seed)
    for _ in range(20):
        alive = db.ids()
        if alive.size <= k + 2 or rng.random() < 0.55:
            algo.insert(rng.random(3))
        else:
            algo.delete(int(alive[rng.integers(alive.size)]))
    check_invariants(db, algo)
