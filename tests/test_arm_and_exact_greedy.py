"""Tests for the ARM extension and the exact greedy variant."""

import numpy as np
import pytest

from repro.baselines.arm import arm_greedy, average_regret
from repro.baselines.dp2d import brute_force_rms
from repro.baselines.greedy import greedy
from repro.core.regret import max_regret_ratio_lp
from repro.geometry.hull import extreme_points


class TestAverageRegret:
    def test_zero_for_full_set(self, tiny_cloud):
        assert average_regret(tiny_cloud, tiny_cloud, seed=0) == \
            pytest.approx(0.0, abs=1e-12)

    def test_bounded(self, tiny_cloud):
        val = average_regret(tiny_cloud, tiny_cloud[:1], seed=0)
        assert 0.0 <= val <= 1.0

    def test_below_max_regret(self, tiny_cloud):
        from repro.core.regret import max_k_regret_ratio_sampled
        rng = np.random.default_rng(4)
        utils = rng.random((2000, 3)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        q = tiny_cloud[:3]
        avg = average_regret(tiny_cloud, q, utilities=utils)
        mx = max_k_regret_ratio_sampled(tiny_cloud, q, utilities=utils)
        assert avg <= mx + 1e-12

    def test_monotone_in_q(self, tiny_cloud):
        rng = np.random.default_rng(5)
        utils = rng.random((2000, 3)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        small = average_regret(tiny_cloud, tiny_cloud[:2], utilities=utils)
        large = average_regret(tiny_cloud, tiny_cloud[:10], utilities=utils)
        assert large <= small + 1e-12


class TestArmGreedy:
    def test_size_and_validity(self, small_cloud):
        idx = arm_greedy(small_cloud, 8, seed=0, n_samples=2000)
        assert len(idx) <= 8
        assert len(set(idx.tolist())) == len(idx)

    def test_beats_random_selection_on_average(self, small_cloud):
        rng = np.random.default_rng(7)
        utils = rng.random((5000, 4)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        sel = arm_greedy(small_cloud, 6, seed=1, n_samples=3000)
        rand = rng.choice(small_cloud.shape[0], size=6, replace=False)
        a = average_regret(small_cloud, small_cloud[sel], utilities=utils)
        b = average_regret(small_cloud, small_cloud[rand], utilities=utils)
        assert a <= b + 1e-9

    def test_k2(self, small_cloud):
        idx = arm_greedy(small_cloud, 6, k=2, seed=2, n_samples=2000)
        assert len(idx) <= 6

    def test_arm_differs_from_max_regret_objective(self, rng):
        """ARM and max-regret greedy may pick different sets; ARM's
        average must be at least as good, sampled fairly."""
        pts = rng.random((150, 3))
        utils = rng.random((5000, 3)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        a_idx = arm_greedy(pts, 5, seed=3, n_samples=4000)
        g_idx = greedy(pts, 5, method="sample", n_samples=4000, seed=3)
        a_avg = average_regret(pts, pts[a_idx], utilities=utils)
        g_avg = average_regret(pts, pts[g_idx], utilities=utils)
        assert a_avg <= g_avg + 5e-3


class TestExactGreedy:
    def test_close_to_bruteforce(self):
        rng = np.random.default_rng(13)
        pts = rng.random((14, 3))
        sel = greedy(pts, 3, method="exact")
        val = max_regret_ratio_lp(pts, pts[sel])
        _, opt = brute_force_rms(pts, 3, candidates=extreme_points(pts))
        assert val <= opt + 0.1

    def test_no_worse_than_witness_greedy(self):
        rng = np.random.default_rng(14)
        pts = rng.random((16, 3))
        exact = greedy(pts, 4, method="exact")
        witness = greedy(pts, 4, method="lp")
        v_exact = max_regret_ratio_lp(pts, pts[exact])
        v_witness = max_regret_ratio_lp(pts, pts[witness])
        assert v_exact <= v_witness + 5e-2

    def test_early_stop_at_zero_regret(self):
        # A dominating point makes regret 0 after one pick.
        pts = np.vstack([np.full((1, 3), 0.99),
                         np.random.default_rng(0).random((10, 3)) * 0.5])
        sel = greedy(pts, 5, method="exact")
        assert sel.tolist() == [0]
