"""Unit + property tests for the cone tree (utility index UI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.sampling import sample_utilities
from repro.index.conetree import ConeTree


def _brute_reached(utils, taus, active, point):
    out = []
    for i in range(utils.shape[0]):
        if active[i] and float(utils[i] @ point) >= taus[i]:
            out.append(i)
    return out


class TestConstruction:
    def test_requires_unit_vectors(self):
        with pytest.raises(ValueError, match="unit"):
            ConeTree(np.array([[2.0, 0.0]]))

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            ConeTree(np.empty((0, 3)))

    def test_size(self):
        utils = sample_utilities(30, 3, seed=0)
        assert ConeTree(utils).size == 30


class TestQueries:
    def test_inactive_never_matches(self):
        utils = sample_utilities(10, 3, seed=0)
        tree = ConeTree(utils)
        assert tree.reached_by(np.ones(3)) == []

    def test_all_active_zero_threshold_matches_all(self):
        utils = sample_utilities(10, 3, seed=0)
        tree = ConeTree(utils)
        for i in range(10):
            tree.activate(i, 0.0)
        assert tree.reached_by(np.full(3, 0.5)) == list(range(10))

    def test_threshold_filters(self, rng):
        utils = sample_utilities(64, 4, seed=1)
        tree = ConeTree(utils)
        taus = 0.5 + 0.5 * rng.random(64)
        for i in range(64):
            tree.activate(i, float(taus[i]))
        p = rng.random(4)
        expect = _brute_reached(utils, taus, np.ones(64, bool), p)
        assert tree.reached_by(p) == expect

    def test_set_threshold_updates(self, rng):
        utils = sample_utilities(32, 3, seed=2)
        tree = ConeTree(utils)
        for i in range(32):
            tree.activate(i, 10.0)   # unreachable
        p = np.ones(3)
        assert tree.reached_by(p) == []
        tree.set_threshold(5, 0.1)
        assert tree.reached_by(p) == [5]

    def test_deactivate(self, rng):
        utils = sample_utilities(16, 3, seed=3)
        tree = ConeTree(utils)
        for i in range(16):
            tree.activate(i, 0.0)
        tree.deactivate(7)
        assert 7 not in tree.reached_by(np.ones(3))
        assert not tree.is_active(7)

    def test_zero_point(self):
        utils = sample_utilities(8, 3, seed=4)
        tree = ConeTree(utils)
        for i in range(8):
            tree.activate(i, 0.0)
        assert tree.reached_by(np.zeros(3)) == list(range(8))
        tree.set_threshold(0, 0.5)
        assert 0 not in tree.reached_by(np.zeros(3))

    def test_wrong_dimension(self):
        tree = ConeTree(sample_utilities(4, 3, seed=0))
        with pytest.raises(ValueError):
            tree.reached_by(np.ones(2))


@settings(max_examples=25, deadline=None)
@given(m=st.integers(1, 50), seed=st.integers(0, 500),
       frac_active=st.floats(0.0, 1.0))
def test_reached_by_property(m, seed, frac_active):
    """Cone-tree results always equal the brute-force filter."""
    rng = np.random.default_rng(seed)
    utils = sample_utilities(m, 3, seed=rng)
    tree = ConeTree(utils, leaf_capacity=3)
    taus = rng.random(m) * 1.5
    active = rng.random(m) < frac_active
    for i in range(m):
        if active[i]:
            tree.activate(i, float(taus[i]))
    p = rng.random(3) * 1.2
    assert tree.reached_by(p) == _brute_reached(utils, taus, active, p)


class TestBatchThresholds:
    def test_set_thresholds_equals_scalar_loop(self, rng):
        utils = sample_utilities(48, 4, seed=10)
        a, b = ConeTree(utils, leaf_capacity=4), ConeTree(utils, leaf_capacity=4)
        for i in range(48):
            a.activate(i, 1.0)
            b.activate(i, 1.0)
        idxs = rng.choice(48, size=17, replace=False)
        taus = rng.random(17)
        a.set_thresholds(idxs, taus)
        for i, t in zip(idxs, taus):
            b.set_threshold(int(i), float(t))
        for _ in range(10):
            p = rng.random(4) * 1.2
            assert a.reached_by(p) == b.reached_by(p)

    def test_thresholds_view_is_read_only(self):
        tree = ConeTree(sample_utilities(8, 3, seed=1))
        view = tree.thresholds()
        assert view.shape == (8,)
        with pytest.raises(ValueError):
            view[0] = 0.0
        tree.activate(3, 0.25)
        assert view[3] == 0.25  # live view

    def test_set_thresholds_validates_alignment(self):
        tree = ConeTree(sample_utilities(8, 3, seed=1))
        with pytest.raises(ValueError):
            tree.set_thresholds([1, 2], [0.5])
