"""Tests for the component profiler."""

import numpy as np
import pytest

from repro.bench.profile import ProfiledFDRMS, _TimedProxy
from repro.data import Database
from repro.utils import Stopwatch


class TestTimedProxy:
    def test_times_method_calls(self):
        sw = Stopwatch()

        class Thing:
            value = 42

            def work(self, x):
                return x + 1

        proxy = _TimedProxy(Thing(), sw, "seg")
        assert proxy.work(1) == 2
        assert proxy.value == 42          # attributes pass through
        assert sw.count("seg") == 1

    def test_times_even_on_exception(self):
        sw = Stopwatch()

        class Boom:
            def work(self):
                raise RuntimeError("x")

        proxy = _TimedProxy(Boom(), sw, "seg")
        with pytest.raises(RuntimeError):
            proxy.work()
        assert sw.count("seg") == 1


class TestProfiledFDRMS:
    def test_breakdown_accumulates(self, small_cloud, rng):
        db = Database(small_cloud)
        algo = ProfiledFDRMS(db, 1, 8, 0.05, m_max=64, seed=0)
        assert algo.breakdown() == {}     # init not attributed
        for _ in range(30):
            if rng.random() < 0.5:
                algo.insert(rng.random(4))
            else:
                alive = db.ids()
                algo.delete(int(alive[rng.integers(alive.size)]))
        parts = algo.breakdown()
        assert parts.get("topk", 0) > 0
        assert parts.get("cover", 0) > 0

    def test_behaves_like_plain_fdrms(self, small_cloud):
        from repro.core.fdrms import FDRMS
        db_a = Database(small_cloud)
        plain = FDRMS(db_a, 1, 8, 0.05, m_max=64, seed=3)
        db_b = Database(small_cloud)
        prof = ProfiledFDRMS(db_b, 1, 8, 0.05, m_max=64, seed=3)
        assert plain.result() == prof.result()
        p = np.array([0.9, 0.9, 0.9, 0.9])
        assert plain.insert(p) == prof.insert(p)
        assert plain.result() == prof.result()

    def test_survives_drain(self, rng):
        pts = rng.random((10, 2))
        db = Database(pts)
        algo = ProfiledFDRMS(db, 1, 2, 0.05, m_max=8, seed=0)
        for pid in list(db.ids()):
            algo.delete(int(pid))
        assert algo.result() == []
        algo.insert(rng.random(2))
        assert len(algo.result()) == 1
