"""Batched updates must be indistinguishable from sequential ones.

``Session.apply_batch(ops)`` (and the layers below it: ``FDRMS``,
``ApproxTopKIndex``, ``Database``) promise *exact* sequential semantics —
same results, same counters — while amortizing work across the batch.
These tests replay identical workloads through both paths and compare.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_session
from repro.core.topk import ApproxTopKIndex
from repro.data.database import DELETE, INSERT, Database, Operation
from repro.data.workload import make_paper_workload, make_skewed_workload
from repro.geometry.sampling import sample_utilities_with_basis

# FD-RMS plus two recompute-wrapped static baselines (one deterministic
# geometric method, one k-aware sampled method with a pinned seed).
ALGOS = [
    ("fd-rms", dict(m_max=48, eps=0.1)),
    ("sphere", {}),
    ("greedy*", dict(n_samples=200)),
]


def _workload(pts, kind, seed):
    if kind == "paper":
        return make_paper_workload(pts, seed=seed)
    return make_skewed_workload(pts, insert_fraction=0.5,
                                n_operations=120, seed=seed)


@pytest.mark.parametrize("algo,opts", ALGOS,
                         ids=[a for a, _ in ALGOS])
@pytest.mark.parametrize("kind", ["paper", "skewed"])
def test_session_apply_batch_matches_sequential(algo, opts, kind):
    rng = np.random.default_rng(42 + len(algo) + len(kind))
    pts = rng.random((180, 3))
    wl = _workload(pts, kind, seed=5)
    seq = open_session(wl.initial, r=6, algo=algo, seed=0, **opts)
    bat = open_session(wl.initial, r=6, algo=algo, seed=0, **opts)
    ids_seq = [seq.apply(op) for op in wl.operations]
    ids_bat = bat.apply_batch(wl.operations)
    assert [i if i is None else int(i) for i in ids_bat] == ids_seq
    assert bat.result() == seq.result()
    assert bat.stats()["solution_size"] == seq.stats()["solution_size"]
    assert bat.stats()["inserts"] == seq.stats()["inserts"]
    assert bat.stats()["deletes"] == seq.stats()["deletes"]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 3),
       insert_fraction=st.floats(0.1, 0.9))
def test_fdrms_batch_parity_property(seed, k, insert_fraction):
    """Property: arbitrary churn mixes, ranks, and batch boundaries."""
    rng = np.random.default_rng(seed)
    pts = rng.random((120, 3))
    wl = make_skewed_workload(pts, insert_fraction=insert_fraction,
                              n_operations=80, seed=seed + 1)
    seq = open_session(wl.initial, r=5, k=k, algo="fd-rms", seed=0,
                       m_max=32, eps=0.1)
    bat = open_session(wl.initial, r=5, k=k, algo="fd-rms", seed=0,
                       m_max=32, eps=0.1)
    for op in wl.operations:
        seq.apply(op)
    # Split the stream at an arbitrary point: apply_batch must compose.
    cut = int(rng.integers(0, len(wl.operations) + 1))
    bat.apply_batch(wl.operations[:cut])
    bat.apply_batch(wl.operations[cut:])
    assert bat.result() == seq.result()
    assert bat.stats()["solution_size"] == seq.stats()["solution_size"]
    bat.engine.verify(deep=True)


def test_topk_index_apply_batch_matches_sequential(rng):
    pts = rng.random((90, 3))
    utils = sample_utilities_with_basis(20, 3, seed=2)
    ops = []
    alive = list(range(60))
    nxt = 60
    for _ in range(70):
        if alive and rng.random() < 0.45:
            victim = alive.pop(int(rng.integers(len(alive))))
            ops.append(Operation(DELETE, pts[victim % 90].copy(),
                                 tuple_id=victim))
        else:
            ops.append(Operation(INSERT, rng.random(3)))
            alive.append(nxt)
            nxt += 1

    db_a = Database(pts[:60])
    idx_a = ApproxTopKIndex(db_a, utils, 2, 0.1)
    seq_results = []
    for op in ops:
        if op.kind == INSERT:
            pid, deltas = idx_a.insert(op.point)
            seq_results.append((pid, deltas))
        else:
            seq_results.append((None, idx_a.delete(op.tuple_id)))

    db_b = Database(pts[:60])
    idx_b = ApproxTopKIndex(db_b, utils, 2, 0.1)
    bat_results = idx_b.apply_batch(ops)

    assert [(p, d) for p, d in bat_results] == seq_results
    for i in range(20):
        assert idx_a.members_of(i) == idx_b.members_of(i)
        assert idx_a.threshold(i) == idx_b.threshold(i)


def test_database_apply_batch_matches_sequential(rng):
    pts = rng.random((30, 4))
    inserts = [Operation(INSERT, rng.random(4)) for _ in range(10)]
    ops = list(inserts)
    ops += [Operation(DELETE, pts[3].copy(), tuple_id=3),
            Operation(DELETE, inserts[5].point.copy(), tuple_id=35)]
    ops += [Operation(INSERT, rng.random(4)) for _ in range(5)]
    a, b = Database(pts), Database(pts)
    ids_a = [a.apply(op) for op in ops]
    ids_b = b.apply_batch(ops)
    assert ids_a == ids_b
    assert a.ids().tolist() == b.ids().tolist()
    assert np.array_equal(a.points(), b.points())


def test_insert_many_matches_repeated_insert(rng):
    batch = rng.random((25, 3))
    a = Database(d=3)
    b = Database(d=3)
    ids_a = [a.insert(row) for row in batch]
    ids_b = b.insert_many(batch).tolist()
    assert ids_a == ids_b
    assert np.array_equal(a.points(), b.points())


def test_insert_many_validates_like_insert():
    db = Database(d=2)
    with pytest.raises(ValueError):
        db.insert_many([[0.1, -0.2]])
    with pytest.raises(ValueError):
        db.insert_many([[0.1, np.nan]])
    with pytest.raises(ValueError):
        db.insert_many([[0.1, 0.2, 0.3]])
    assert len(db) == 0  # failed batches must not partially apply
    assert db.insert_many(np.empty((0, 2))).size == 0


def test_recompute_session_batch_skyline_matches_rebuild(rng):
    """Deferred skyline recomputation equals per-op maintenance."""
    pts = rng.random((150, 3))
    wl = make_skewed_workload(pts, insert_fraction=0.4, n_operations=100,
                              seed=9)
    seq = open_session(wl.initial, r=6, algo="sphere", seed=0)
    bat = open_session(wl.initial, r=6, algo="sphere", seed=0)
    for op in wl.operations:
        seq.apply(op)
    bat.apply_batch(wl.operations)
    assert seq.stats()["skyline_size"] == bat.stats()["skyline_size"]
    assert seq.result() == bat.result()


def test_recompute_session_batch_failure_keeps_skyline_synced(rng):
    """A bad op mid-batch must not leave the skyline stale (the prefix
    before it IS applied to the database)."""
    pts = rng.random((40, 3)) * 0.5
    sess = open_session(pts, r=6, algo="sphere", seed=0)
    base = sess.result()
    dominant = np.array([0.99, 0.99, 0.99])
    ops = [Operation(INSERT, dominant),
           Operation(DELETE, pts[0].copy(), tuple_id=999)]  # not alive
    with pytest.raises(KeyError):
        sess.apply_batch(ops)
    assert 40 in sess.db          # the insert before the bad op applied
    assert 40 in sess._skyline    # ...and the skyline was re-synced
    assert 40 in sess.result()    # ...so reads see the dominating tuple
    assert sess.result() != base


def test_recompute_session_stats_is_self_consistent(rng):
    """stats() refreshes the lazy result first: consecutive calls agree."""
    sess = open_session(rng.random((60, 3)), r=6, algo="sphere", seed=0)
    sess.insert([0.98, 0.97, 0.99])
    first = sess.stats()
    second = sess.stats()
    assert first == second
    assert first["solution_size"] == len(sess.result())


def test_fdrms_delete_many_matches_sequential(rng):
    pts = rng.random((200, 3))
    seq = open_session(pts, r=6, algo="fd-rms", seed=0, m_max=48, eps=0.1)
    bat = open_session(pts, r=6, algo="fd-rms", seed=0, m_max=48, eps=0.1)
    victims = rng.permutation(200)[:120].tolist()
    for tid in victims:
        seq.delete(tid)
    bat.delete_many(victims)
    assert bat.result() == seq.result()
    assert bat.stats()["deletes"] == seq.stats()["deletes"]
    assert bat.stats()["solution_size"] == seq.stats()["solution_size"]
    bat.engine.verify(deep=True)


def test_fdrms_delete_run_to_empty_matches_sequential(rng):
    pts = rng.random((40, 3))
    seq = open_session(pts, r=4, algo="fd-rms", seed=1, m_max=24, eps=0.1)
    bat = open_session(pts, r=4, algo="fd-rms", seed=1, m_max=24, eps=0.1)
    victims = list(range(40))
    for tid in victims:
        seq.delete(tid)
    bat.delete_many(victims)
    assert bat.result() == seq.result() == []
    assert len(bat.db) == len(seq.db) == 0
    # The engines stay usable after draining the database.
    assert int(bat.insert([0.9, 0.9, 0.9])) == int(seq.insert([0.9, 0.9, 0.9]))
    assert bat.result() == seq.result()


def test_recompute_session_delete_many_matches_sequential(rng):
    pts = rng.random((150, 3))
    seq = open_session(pts, r=6, algo="sphere", seed=0)
    bat = open_session(pts, r=6, algo="sphere", seed=0)
    victims = rng.permutation(150)[:60].tolist()
    for tid in victims:
        seq.delete(tid)
    bat.delete_many(victims)
    assert bat.result() == seq.result()
    assert bat.stats()["deletes"] == seq.stats()["deletes"]
    assert bat.stats()["skyline_size"] == seq.stats()["skyline_size"]


def test_topk_index_delete_run_matches_sequential(rng):
    pts = rng.random((160, 3))
    utilities = sample_utilities_with_basis(32, 3, seed=9)
    dbs = [Database(pts) for _ in range(2)]
    seq = ApproxTopKIndex(dbs[0], utilities, 2, 0.1)
    bat = ApproxTopKIndex(dbs[1], utilities, 2, 0.1)
    victims = rng.permutation(160)[:100].tolist()
    deltas_seq = [seq.delete(tid) for tid in victims]
    cursor = bat.begin_delete_run(victims)
    deltas_bat = [cursor.step() for _ in victims]
    assert deltas_bat == deltas_seq
    for i in range(32):
        assert bat.members_of(i) == seq.members_of(i)
        assert bat.threshold(i) == seq.threshold(i)
