"""Failure-injection and degenerate-input tests across the stack.

Production hardening: one-dimensional data, duplicate tuples, boundary
coordinates, extreme parameters, and adversarial insert/delete churn on
the same value.
"""

import numpy as np
import pytest

from repro.baselines.greedy import greedy
from repro.baselines.sphere import sphere
from repro.core.fdrms import FDRMS
from repro.core.regret import max_k_regret_ratio_sampled
from repro.core.topk import ApproxTopKIndex
from repro.data import Database
from repro.geometry.sampling import sample_utilities_with_basis
from repro.skyline import DynamicSkyline, skyline_indices


class TestOneDimensional:
    def test_skyline_is_argmax_set(self):
        pts = np.array([[0.2], [0.9], [0.9], [0.4]])
        assert set(skyline_indices(pts).tolist()) == {1, 2}

    def test_fdrms_d1(self):
        rng = np.random.default_rng(0)
        db = Database(rng.random((50, 1)))
        algo = FDRMS(db, 1, 1, 0.05, m_max=8, seed=0)
        # In d=1 a single tuple (the max) achieves zero regret.
        result = algo.result()
        assert len(result) == 1
        ids, pts = db.snapshot()
        assert np.isclose(float(db.point(result[0])[0]), pts.max())

    def test_greedy_d1(self):
        pts = np.array([[0.1], [0.8], [0.5]])
        sel = greedy(pts, 1, method="sample", seed=0)
        assert sel.tolist() == [1]


class TestDuplicates:
    def test_fdrms_with_all_identical_points(self):
        pts = np.tile(np.array([[0.5, 0.5]]), (30, 1))
        db = Database(pts)
        algo = FDRMS(db, 1, 2, 0.05, m_max=16, seed=0)
        assert 1 <= len(algo.result()) <= 3
        mrr = max_k_regret_ratio_sampled(pts, algo.result_points(),
                                         n_samples=2000, seed=1)
        assert mrr == pytest.approx(0.0, abs=1e-12)

    def test_topk_index_duplicates(self):
        pts = np.tile(np.array([[0.4, 0.6]]), (10, 1))
        db = Database(pts)
        utils = sample_utilities_with_basis(6, 2, seed=0)
        index = ApproxTopKIndex(db, utils, 3, 0.05)
        # All duplicates tie at ω_k, so all are members everywhere.
        for i in range(6):
            assert len(index.members_of(i)) == 10
        index.delete(0)
        for i in range(6):
            assert len(index.members_of(i)) == 9

    def test_skyline_duplicate_churn(self):
        db = Database(np.array([[0.5, 0.5]]))
        dyn = DynamicSkyline(db)
        ids = [0]
        for _ in range(20):
            pid = db.insert([0.5, 0.5])
            dyn.insert(pid)
            ids.append(pid)
        assert len(dyn) == len(ids)
        for pid in ids[:-1]:
            db.delete(pid)
            dyn.delete(pid)
        assert set(dyn.ids) == {ids[-1]}


class TestBoundaryValues:
    def test_zero_points_allowed(self):
        db = Database(np.array([[0.0, 0.0], [1.0, 1.0]]))
        algo = FDRMS(db, 1, 2, 0.05, m_max=8, seed=0)
        assert algo.result() == [1]
        algo.delete(1)
        assert algo.result() == [0]

    def test_axis_aligned_points(self):
        pts = np.vstack([np.eye(3), np.full((1, 3), 0.4)])
        db = Database(pts)
        algo = FDRMS(db, 1, 3, 0.05, m_max=16, seed=0)
        # The three unit vectors are the only sensible representatives.
        assert set(algo.result()) <= {0, 1, 2}


class TestExtremeParameters:
    def test_tiny_eps(self, rng):
        pts = rng.random((60, 3))
        db = Database(pts)
        algo = FDRMS(db, 1, 5, 1e-6, m_max=32, seed=0)
        assert 1 <= len(algo.result())

    def test_huge_eps(self, rng):
        pts = rng.random((60, 3))
        db = Database(pts)
        algo = FDRMS(db, 1, 5, 0.99, m_max=32, seed=0)
        # ε→1 makes every tuple an approximate top-k member: S(p) dense,
        # cover tiny.
        assert 1 <= len(algo.result()) <= 5

    def test_k_at_least_n(self, rng):
        pts = rng.random((10, 3))
        db = Database(pts)
        algo = FDRMS(db, 50, 3, 0.05, m_max=16, seed=0)
        # Every tuple is a top-k tuple; any single tuple has zero regret.
        assert len(algo.result()) >= 1
        mrr = max_k_regret_ratio_sampled(pts, algo.result_points(), k=50,
                                         n_samples=2000, seed=1)
        assert mrr == pytest.approx(0.0, abs=1e-12)

    def test_r_equals_d(self, rng):
        pts = rng.random((40, 4))
        db = Database(pts)
        algo = FDRMS(db, 1, 4, 0.05, m_max=16, seed=0)
        assert len(algo.result()) <= 5


class TestAdversarialChurn:
    def test_insert_delete_same_value_repeatedly(self, rng):
        pts = rng.random((40, 3))
        db = Database(pts)
        algo = FDRMS(db, 1, 4, 0.05, m_max=32, seed=0)
        hot = np.array([0.95, 0.95, 0.95])
        for _ in range(25):
            pid = algo.insert(hot)
            assert pid in algo.result()
            algo.delete(pid)
            assert pid not in algo.result()
        assert algo._cover.is_cover() and algo._cover.is_stable()

    def test_drain_to_single_tuple(self, rng):
        pts = rng.random((30, 2))
        db = Database(pts)
        algo = FDRMS(db, 2, 2, 0.05, m_max=16, seed=0)
        ids = list(db.ids())
        for victim in ids[:-1]:
            algo.delete(int(victim))
        assert algo.result() == [ids[-1]]

    def test_static_baseline_single_point(self):
        pts = np.array([[0.3, 0.7]])
        assert sphere(pts, 3, seed=0).tolist() == [0]
