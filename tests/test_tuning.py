"""Tests for the ε auto-tuning protocol (§III-C)."""

import pytest

from repro.core.regret import RegretEvaluator
from repro.core.fdrms import FDRMS
from repro.core.tuning import suggest_epsilon
from repro.data import Database
from repro.data.synthetic import anticorrelated_points, independent_points


class TestSuggestEpsilon:
    def test_within_bounds(self, small_cloud):
        eps = suggest_epsilon(small_cloud, 1, 10, seed=0)
        assert 1e-4 <= eps <= 0.2

    def test_smaller_r_larger_eps(self):
        pts = anticorrelated_points(800, 5, seed=1)
        tight = suggest_epsilon(pts, 1, 40, seed=2)
        loose = suggest_epsilon(pts, 1, 6, seed=2)
        assert loose >= tight

    def test_tracks_data_hardness(self):
        """AntiCor has higher optimal regret than Indep at equal (k, r)."""
        anti = anticorrelated_points(800, 5, seed=3)
        indep = independent_points(800, 5, seed=3)
        assert suggest_epsilon(anti, 1, 10, seed=4) >= \
            suggest_epsilon(indep, 1, 10, seed=4)

    def test_r_at_least_n_floor(self):
        pts = independent_points(20, 3, seed=5)
        assert suggest_epsilon(pts, 1, 50, seed=5) == pytest.approx(1e-4)

    def test_validation(self, small_cloud):
        with pytest.raises(ValueError):
            suggest_epsilon(small_cloud, 1, 0)
        with pytest.raises(ValueError):
            suggest_epsilon(small_cloud, 1, 5, fraction=0.0)
        with pytest.raises(ValueError):
            suggest_epsilon(small_cloud, 0, 5)

    def test_improves_fdrms_on_hard_small_r(self):
        """The tuned ε must not lose to the untuned default on the
        regime that motivated it (AntiCor, small r)."""
        pts = anticorrelated_points(900, 6, seed=6)
        ev = RegretEvaluator(6, n_samples=6000, seed=7)
        eps_auto = suggest_epsilon(pts, 1, 10, seed=8)
        out = {}
        for label, eps in [("default", 0.02), ("auto", eps_auto)]:
            db = Database(pts)
            algo = FDRMS(db, 1, 10, eps, m_max=256, seed=9)
            out[label] = ev.evaluate(pts, algo.result_points())
        assert out["auto"] <= out["default"] + 0.02
