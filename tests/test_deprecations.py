"""Old entry points keep working but emit DeprecationWarning."""

import numpy as np
import pytest

from repro import baselines
from repro.baselines.greedy import greedy as raw_greedy
from repro.bench import make_adapter, run_workload
from repro.core.regret import RegretEvaluator
from repro.data import make_paper_workload


@pytest.fixture(scope="module")
def setup():
    pts = np.random.default_rng(3).random((150, 3))
    wl = make_paper_workload(pts, seed=4)
    ev = RegretEvaluator(3, n_samples=1000, seed=5)
    return pts, wl, ev


class TestMakeAdapterShim:
    def test_warns_and_still_works(self, setup):
        _, wl, ev = setup
        with pytest.warns(DeprecationWarning, match="make_adapter"):
            adapter = make_adapter("Sphere", wl.initial, 1, 5, seed=0)
        res = run_workload(adapter, wl, ev, 1)
        assert res.algorithm == "Sphere"
        assert res.snapshots

    def test_warns_for_fdrms_too(self, setup):
        _, wl, _ = setup
        with pytest.warns(DeprecationWarning, match="adapter_for"):
            adapter = make_adapter("FD-RMS", wl.initial, 1, 5, seed=0,
                                   eps=0.05, m_max=32)
        assert adapter.name == "FD-RMS"

    def test_unknown_name_still_keyerror(self, setup):
        _, wl, _ = setup
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_adapter("nope", wl.initial, 1, 5)


class TestDirectBaselineImports:
    def test_package_level_call_warns(self, setup):
        pts, _, _ = setup
        with pytest.warns(DeprecationWarning,
                          match="repro.solve.*algo='greedy'"):
            idx = baselines.greedy(pts, 4)
        # The shim delegates to the real function: identical output.
        assert np.array_equal(np.sort(idx), np.sort(raw_greedy(pts, 4)))

    def test_submodule_import_stays_silent(self, setup, recwarn):
        pts, _, _ = setup
        raw_greedy(pts, 4)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_every_package_algorithm_is_wrapped(self):
        for name in ("greedy", "greedy_star", "geo_greedy", "dmm_rrms",
                     "dmm_greedy", "eps_kernel", "hitting_set", "sphere",
                     "cube", "dp2d", "arm_greedy", "rrr_greedy"):
            func = getattr(baselines, name)
            assert func.__wrapped__ is not func
