# fixture-relpath: src/repro/core/_fx_rpl001.py
"""Unordered set/dict iteration inside a determinism-scoped module."""


def iterate_set_literal():
    total = 0
    for item in {3, 1, 2}:
        total += item
    return total


def iterate_dict_keys(mapping):
    out = []
    for key in mapping.keys():
        out.append(key)
    return out


def materialize_local_set(values):
    seen = set(values)
    return list(seen)


def sorted_iteration_is_fine(mapping):
    return [key for key in sorted(mapping)]
