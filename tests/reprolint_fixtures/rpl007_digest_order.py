# fixture-relpath: src/repro/utils/_fx_rpl007.py
"""Digest fed from an unordered comprehension."""
import hashlib


def digest_of(mapping):
    digest = hashlib.sha256()
    digest.update(repr({k: v for k, v in mapping.items()}).encode())
    return digest.hexdigest()


def canonical_digest_is_fine(mapping):
    digest = hashlib.sha256()
    for key in sorted(mapping):
        digest.update(repr((key, mapping[key])).encode())
    return digest.hexdigest()
