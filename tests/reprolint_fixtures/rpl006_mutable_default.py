# fixture-relpath: src/repro/core/_fx_rpl006.py
"""Mutable default arguments."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def fresh_default_is_fine(item, bucket=None):
    return (bucket or []) + [item]
