# fixture-relpath: src/repro/core/set_cover.py
"""Array allocation inside per-op loops of the flat-array core."""
import numpy as np


def repair_loop(rows):
    outputs = []
    for row in rows:
        scratch = np.zeros(row.size)
        scratch[row] = 1.0
        outputs.append(scratch.sum())
    return outputs


def hoisted_scratch_is_fine(rows, scratch):
    outputs = []
    for row in rows:
        scratch[:] = 0.0
        outputs.append(scratch[row].sum())
    return outputs
