# fixture-relpath: src/repro/core/_fx_rpl005.py
"""Wall-clock reads outside the timing shim."""
import time
from datetime import datetime


def stamp():
    started = time.time()
    label = datetime.now()
    return started, label


def monotonic_is_fine():
    t0 = time.perf_counter()
    return time.perf_counter() - t0
