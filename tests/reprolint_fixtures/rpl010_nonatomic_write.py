# fixture-relpath: src/repro/persist/example.py
"""In-place file writes inside the durability-critical persistence layer."""
import json

import numpy as np

from repro.persist.atomic import write_via_handle_atomic


def bare_write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def path_open_write(path, blob):
    with path.open("wb") as handle:
        handle.write(blob)


def savez_in_place(path, arrays):
    np.savez(path, **arrays)


def convenience_writer(path, text):
    path.write_text(text, encoding="utf-8")


def dynamic_mode(path, mode):
    return path.open(mode)


def read_side_is_fine(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def atomic_savez_is_fine(path, arrays):
    write_via_handle_atomic(path, lambda h: np.savez(h, **arrays))


def suppressed_append_log(path, line):
    # reprolint: disable=RPL010 -- append-mode log; atomicity is per record
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
