# fixture-relpath: src/repro/core/_fx_rpl009.py
"""Suppression pragmas: justified ones hide, bare ones are themselves flagged."""
import numpy as np


def suppressed_draw(n):
    # reprolint: disable=RPL003 -- fixture: exercising a justified suppression
    return np.random.rand(n)


def bare_pragma(n):
    # reprolint: disable=RPL003
    return np.random.rand(n)
