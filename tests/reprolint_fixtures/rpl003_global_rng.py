# fixture-relpath: src/repro/core/_fx_rpl003.py
"""Global RNG access vs. seeded generators."""
import random

import numpy as np


def draw_bad(n):
    noise = np.random.rand(n)
    jitter = random.random()
    return noise, jitter


def draw_good_is_fine(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)
