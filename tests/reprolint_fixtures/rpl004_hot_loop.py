# fixture-relpath: src/repro/core/topk.py
"""Per-element Python loops over arrays in a hot-path module."""
import numpy as np


def per_element_sum(arr):
    total = 0.0
    for i in range(len(arr)):
        total += arr[i]
    return total


def per_row(mat):
    acc = []
    for i in range(mat.shape[0]):
        acc.append(mat[i].sum())
    return acc


def tolist_append(arr):
    out = []
    for value in arr.tolist():
        out.append(value * 2)
    return out


def vectorized_is_fine(arr):
    return float(np.sum(arr))
