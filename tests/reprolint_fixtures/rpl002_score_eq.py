# fixture-relpath: src/repro/core/_fx_rpl002.py
"""Exact float equality on score-like names."""


def compare_scores(score, kth_score):
    if score == kth_score:
        return True
    return score != 0.5


def tolerant_compare_is_fine(score, kth_score):
    return abs(score - kth_score) <= 1e-12
