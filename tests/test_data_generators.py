"""Tests for synthetic generators and simulated real-world datasets."""

import numpy as np
import pytest

from repro.data import (
    DATASET_SPECS,
    anticorrelated_points,
    aq_like,
    bb_like,
    correlated_points,
    ct_like,
    independent_points,
    make_dataset,
    movie_like,
)
from repro.skyline import skyline_indices


class TestSynthetic:
    def test_independent_range(self):
        pts = independent_points(500, 5, seed=0)
        assert pts.shape == (500, 5)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_anticorrelated_range_and_negative_correlation(self):
        pts = anticorrelated_points(3000, 2, seed=0)
        assert (pts >= 0).all() and (pts <= 1).all()
        corr = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert corr < -0.2

    def test_correlated_positive_correlation(self):
        pts = correlated_points(3000, 2, seed=0, correlation=0.8)
        corr = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert corr > 0.4

    def test_skyline_ordering(self):
        """AntiCor skyline > Indep skyline > correlated skyline."""
        n, d = 1500, 4
        anti = skyline_indices(anticorrelated_points(n, d, seed=1)).size
        indep = skyline_indices(independent_points(n, d, seed=1)).size
        corr = skyline_indices(correlated_points(n, d, seed=1,
                                                 correlation=0.85)).size
        assert anti > indep > corr

    def test_determinism(self):
        a = anticorrelated_points(100, 3, seed=9)
        b = anticorrelated_points(100, 3, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            independent_points(0, 3)
        with pytest.raises(ValueError):
            anticorrelated_points(10, 3, spread=0.0)
        with pytest.raises(ValueError):
            correlated_points(10, 3, correlation=1.5)


class TestRealWorldStandins:
    @pytest.mark.parametrize("fn,name", [
        (bb_like, "BB"), (aq_like, "AQ"), (ct_like, "CT"),
        (movie_like, "Movie"),
    ])
    def test_shapes_match_table1(self, fn, name):
        pts = fn(n=800, seed=0)
        assert pts.shape == (800, DATASET_SPECS[name].d)
        assert (pts >= 0).all() and (pts <= 1.0 + 1e-12).all()

    def test_skyline_regimes(self):
        """Skyline fractions must order as in Table I:
        BB (~1%) < AQ (~5.5%) < CT (~13%) < Movie (~25%)."""
        n = 3000
        fracs = {}
        for fn, name in [(bb_like, "BB"), (aq_like, "AQ"),
                         (ct_like, "CT"), (movie_like, "Movie")]:
            pts = fn(n=n, seed=3)
            fracs[name] = skyline_indices(pts).size / n
        assert fracs["BB"] < fracs["AQ"] < fracs["Movie"]
        assert fracs["BB"] < 0.1
        assert fracs["Movie"] > 0.1

    def test_default_sizes_match_spec(self):
        # Generators default to paper-scale n; just check the wiring via
        # a sliced call (full-size generation is exercised in benches).
        pts = make_dataset("BB", n=100, seed=0)
        assert pts.shape == (100, 5)

    def test_make_dataset_lookup(self):
        assert make_dataset("indep", n=50, seed=0).shape == (50, 6)
        assert make_dataset("AntiCor", n=50, seed=0).shape == (50, 6)
        with pytest.raises(KeyError):
            make_dataset("nope")
