"""Tests for the per-figure experiment drivers (fast miniature runs)."""

import pytest

from repro.bench.experiments import (
    experiment_epsilon_sweep,
    experiment_scalability,
    experiment_vary_k,
    experiment_vary_r,
    format_series_table,
)
from repro.data.synthetic import independent_points


@pytest.fixture(scope="module")
def points():
    return independent_points(200, 3, seed=55)


class TestDrivers:
    def test_epsilon_sweep(self, points):
        res = experiment_epsilon_sweep(points, k=1, r=6,
                                       eps_values=(0.01, 0.1), m_max=32,
                                       seed=1, eval_samples=1000)
        assert set(res) == {0.01, 0.1}
        for run in res.values():
            assert run.algorithm == "FD-RMS"
            assert run.snapshots

    def test_vary_r(self, points):
        res = experiment_vary_r(points, ["FD-RMS", "Sphere"],
                                r_values=(5, 10), k=1, seed=1,
                                eval_samples=1000, fdrms_eps=0.05, m_max=32)
        assert set(res) == {"FD-RMS", "Sphere"}
        for series in res.values():
            assert set(series) == {5, 10}
            # quality should weakly improve with r
            assert series[10].mean_mrr <= series[5].mean_mrr + 0.05

    def test_vary_k(self, points):
        res = experiment_vary_k(points, ["FD-RMS"], k_values=(1, 2), r=5,
                                seed=1, eval_samples=1000, fdrms_eps=0.05,
                                m_max=32)
        assert set(res["FD-RMS"]) == {1, 2}
        # mrr_k decreases with k by definition.
        assert res["FD-RMS"][2].mean_mrr <= res["FD-RMS"][1].mean_mrr + 0.02

    def test_scalability(self):
        res = experiment_scalability(
            lambda d: independent_points(150, d, seed=60), ["FD-RMS"],
            (3, 4), k=1, r=5, seed=1, eval_samples=1000, fdrms_eps=0.05,
            m_max=32)
        assert set(res["FD-RMS"]) == {3, 4}


class TestFormatting:
    def test_missing_cells_blank(self, points):
        res = experiment_vary_r(points, ["FD-RMS"], r_values=(5,), k=1,
                                seed=1, eval_samples=500, fdrms_eps=0.05,
                                m_max=32)
        res["Ghost"] = {}
        table = format_series_table(res, x_label="r")
        assert "Ghost" in table

    def test_metric_selection(self, points):
        res = experiment_vary_r(points, ["FD-RMS"], r_values=(5,), k=1,
                                seed=1, eval_samples=500, fdrms_eps=0.05,
                                m_max=32)
        t1 = format_series_table(res, x_label="r", metric="avg_update_ms")
        t2 = format_series_table(res, x_label="r", metric="mean_mrr",
                                 fmt="{:>10.4f}")
        assert t1 != t2
