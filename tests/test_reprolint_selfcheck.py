"""Self-check: the repo's own sources stay reprolint-clean.

The flat-array core must carry **zero** undisabled diagnostics, and any
suppression pragma anywhere in the linted tree must carry a
justification (a bare pragma is itself a diagnostic, RPL009). This is
the in-process twin of the CI gate
``python -m tools.reprolint src tests benchmarks``.
"""

from __future__ import annotations

from pathlib import Path

from tools.reprolint.engine import run_paths

REPO_ROOT = Path(__file__).parent.parent


def _active_renders(paths: list[str]) -> list[str]:
    results = run_paths([REPO_ROOT / p for p in paths], root=REPO_ROOT)
    return [d.render(with_hint=False)
            for res in results for d in res.active]


def test_core_has_zero_undisabled_diagnostics() -> None:
    assert _active_renders(["src/repro/core"]) == []


def test_index_and_scenarios_are_clean() -> None:
    assert _active_renders(["src/repro/index", "src/repro/scenarios"]) == []


def test_full_lint_surface_is_clean() -> None:
    """Same surface as CI: src, tests, benchmarks (fixtures excluded)."""
    assert _active_renders(["src", "tests", "benchmarks"]) == []


def test_core_suppressions_are_all_justified() -> None:
    """Every pragma parses with a justification; RPL009 would leak out
    through ``active`` otherwise, but assert the stronger property that
    suppressed diagnostics exist (the pragmas do cover something)."""
    results = run_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    suppressed = [d for res in results for d in res.diagnostics
                  if d.suppressed]
    assert suppressed, "expected justified suppressions in src/"
    assert all(d.code != "RPL009" for res in results
               for d in res.diagnostics)
