"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20_260_612)


@pytest.fixture
def paper_points() -> np.ndarray:
    """The 8-tuple 2-d database of Fig. 1 (rows p1..p8)."""
    return np.array([
        [0.2, 1.0],   # p1
        [0.6, 0.8],   # p2
        [0.7, 0.5],   # p3
        [1.0, 0.1],   # p4
        [0.4, 0.3],   # p5
        [0.2, 0.7],   # p6
        [0.3, 0.9],   # p7
        [0.6, 0.6],   # p8
    ])


@pytest.fixture
def small_cloud(rng) -> np.ndarray:
    """300 random 4-d points in the unit cube."""
    return rng.random((300, 4))


@pytest.fixture
def tiny_cloud(rng) -> np.ndarray:
    """40 random 3-d points (cheap enough for LP-heavy tests)."""
    return rng.random((40, 3))
