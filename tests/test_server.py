"""Multi-tenant network service: wire framing, quotas, digest parity.

The tentpole claim under test is the one the CI ``serve-smoke`` job
gates on: the network edge — admission, coalescing waves, per-tenant
quotas, LRU eviction, concurrent tenants, even chaos injected into one
tenant's transport — never changes *what* the engine computes. Every
end-to-end test here finishes with a ``result_digest`` comparison
against a plain in-process replay of the same operation stream.

All tests drive the real asyncio server over real sockets (``port=0``)
from ``asyncio.run`` inside synchronous pytest functions; no asyncio
pytest plugin is required.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np
import pytest

from repro.api.session import open_session
from repro.server import ReproServer, TenantQuota, TenantRegistry
from repro.server.protocol import (
    ERROR_STATUS,
    ServiceError,
    error_envelope,
    get_field,
    require_field,
)
from repro.server.loadgen import inline_digest, run_load, wait_ready
from repro.server.wire import HttpClient, WebSocketClient, websocket_accept
from repro.service.supervisor import result_digest


def _points(seed: int = 0, n: int = 120, d: int = 4) -> list[list[float]]:
    rng = np.random.default_rng(seed)
    return [[float(x) for x in row] for row in rng.random((n, d))]


def _insert_ops(seed: int, count: int, d: int = 4) -> list[dict[str, Any]]:
    rng = np.random.default_rng(seed)
    return [{"kind": "insert", "point": [float(x) for x in rng.random(d)]}
            for _ in range(count)]


def _open_payload(points: list[list[float]], **extra: Any) -> dict[str, Any]:
    payload: dict[str, Any] = {"points": points, "r": 6, "k": 1,
                               "seed": 0, "eps": 0.1, "m_max": 32}
    payload.update(extra)
    return payload


def _reference_digest(points: list[list[float]],
                      wire_ops: list[dict[str, Any]]) -> str:
    """Plain in-process replay of the same wire stream."""
    session = open_session(np.asarray(points, dtype=float), 6, k=1,
                           algo="fd-rms", seed=0, eps=0.1, m_max=32)
    try:
        ops = [op if op["kind"] == "delete"
               else {"kind": "insert",
                     "point": np.asarray(op["point"], dtype=float)}
               for op in wire_ops]
        session.apply_batch(ops)
        return result_digest(session)
    finally:
        session.close()


async def _booted(**kwargs: Any) -> ReproServer:
    server = ReproServer(host="127.0.0.1", port=0, **kwargs)
    await server.start()
    return server


# ----------------------------------------------------------------------
# Wire + protocol primitives
# ----------------------------------------------------------------------

class TestProtocol:
    def test_websocket_accept_rfc6455_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
                == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")

    def test_every_error_code_has_a_4xx_or_5xx_status(self):
        for code, status in ERROR_STATUS.items():
            assert 400 <= status < 600, code
            err = ServiceError(code, "boom")
            assert err.http_status == status
            assert err.envelope()["error"]["code"] == code

    def test_envelope_detail_is_optional(self):
        assert "detail" not in error_envelope("internal", "x")["error"]
        env = error_envelope("internal", "x", {"y": 1})
        assert env["error"]["detail"] == {"y": 1}

    def test_field_helpers_reject_json_type_confusion(self):
        with pytest.raises(ServiceError):
            require_field({}, "r", int)
        with pytest.raises(ServiceError):
            require_field({"r": "6"}, "r", int)
        with pytest.raises(ServiceError):
            # JSON true must not pass where an integer is expected.
            require_field({"r": True}, "r", int)
        assert get_field({}, "k", int, 7) == 7


# ----------------------------------------------------------------------
# HTTP endpoint round trips
# ----------------------------------------------------------------------

class TestHttpEndpoints:
    def test_lifecycle_and_digest_parity_over_http(self):
        points = _points()
        ops = _insert_ops(1, 24) + [{"kind": "delete", "id": i}
                                    for i in range(0, 20, 2)]

        async def run() -> None:
            server = await _booted()
            client = HttpClient(server.host, server.port)
            try:
                resp = await client.request("GET", "/healthz")
                assert resp.status == 200 and resp.json()["ok"] is True

                resp = await client.request(
                    "POST", "/v1/tenants/alpha/open", _open_payload(points))
                assert resp.status == 200
                body = resp.json()
                assert body["alive_tuples"] == len(points)
                assert body["d"] == 4

                resp = await client.request(
                    "POST", "/v1/tenants/alpha/batch", {"ops": ops})
                assert resp.status == 200
                assert resp.json()["admitted"] == len(ops)

                resp = await client.request(
                    "GET", "/v1/tenants/alpha/result?fresh=1")
                body = resp.json()
                assert resp.status == 200 and body["stale"] is False
                assert body["result_digest"] == _reference_digest(
                    points, ops)

                resp = await client.request(
                    "GET", "/v1/tenants/alpha/stats")
                stats = resp.json()
                assert stats["alive_tuples"] == len(points) + 24 - 10
                assert stats["service"]["applied_ops"] == len(ops)

                resp = await client.request("GET", "/v1/stats")
                body = resp.json()
                assert body["registry"]["open_tenants"] == 1
                assert body["server"]["http_requests"] >= 5

                resp = await client.request(
                    "DELETE", "/v1/tenants/alpha?checkpoint=0")
                assert resp.status == 200
                assert resp.json()["checkpointed"] is False
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_delete_endpoint_matches_batch_deletes(self):
        points = _points(3, n=80)

        async def run() -> None:
            server = await _booted()
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/t/open",
                                     _open_payload(points))
                resp = await client.request(
                    "POST", "/v1/tenants/t/delete",
                    {"ids": list(range(0, 30, 3))})
                assert resp.status == 200
                assert resp.json()["admitted"] == 10
                resp = await client.request(
                    "GET", "/v1/tenants/t/result?fresh=1")
                digest = resp.json()["result_digest"]
                assert digest == _reference_digest(
                    points, [{"kind": "delete", "id": i}
                             for i in range(0, 30, 3)])
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_typed_error_envelopes(self):
        points = _points(4, n=40)

        async def run() -> None:
            server = await _booted(
                quota=TenantQuota(max_ops_per_request=8))
            client = HttpClient(server.host, server.port)
            try:
                async def expect(status: int, code: str, method: str,
                                 target: str, payload: Any = None) -> None:
                    resp = await client.request(method, target, payload)
                    assert resp.status == status, (target, resp.json())
                    assert resp.json()["error"]["code"] == code, target

                await expect(404, "unknown_tenant", "GET",
                             "/v1/tenants/ghost/result")
                await expect(404, "not_found", "GET", "/v1/nope")
                await expect(405, "method_not_allowed", "POST", "/healthz",
                             {})
                await expect(400, "bad_request", "POST",
                             "/v1/tenants/bad!id/open",
                             _open_payload(points))
                await expect(400, "bad_request", "POST",
                             "/v1/tenants/t/open", {"points": points})

                await client.request("POST", "/v1/tenants/t/open",
                                     _open_payload(points))
                await expect(409, "tenant_exists", "POST",
                             "/v1/tenants/t/open", _open_payload(points))
                await expect(429, "quota_exceeded", "POST",
                             "/v1/tenants/t/batch",
                             {"ops": _insert_ops(0, 9)})
                # Malformed op (wrong dimensionality) must be rejected
                # atomically by the validation boundary.
                await expect(400, "validation_failed", "POST",
                             "/v1/tenants/t/batch",
                             {"ops": [{"kind": "insert",
                                       "point": [1.0, 2.0]}]})
                await expect(400, "bad_request", "GET",
                             "/v1/tenants/t/result?deadline_ms=nan-ish")
                assert server.counters["request_errors"] >= 8
                assert server.registry.counters["quota_rejections"] == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())


# ----------------------------------------------------------------------
# WebSocket transport
# ----------------------------------------------------------------------

class TestWebSocketTransport:
    def test_ws_verbs_and_digest_parity(self):
        points = _points(5, n=60)
        ops = _insert_ops(6, 16)

        async def run() -> None:
            server = await _booted()
            ws = WebSocketClient(server.host, server.port)
            try:
                await ws.connect()
                reply = await ws.round_trip(
                    {"rid": 1, "verb": "open", "tenant": "w",
                     "payload": _open_payload(points)})
                assert reply["ok"] is True and reply["rid"] == 1

                reply = await ws.round_trip(
                    {"rid": 2, "verb": "batch", "tenant": "w",
                     "payload": {"ops": ops}})
                assert reply["data"]["admitted"] == len(ops)

                reply = await ws.round_trip(
                    {"rid": 3, "verb": "result", "tenant": "w",
                     "payload": {"fresh": True}})
                assert reply["data"]["result_digest"] == _reference_digest(
                    points, ops)

                reply = await ws.round_trip(
                    {"rid": 4, "verb": "server_stats"})
                assert reply["data"]["server"]["ws_messages"] >= 4

                reply = await ws.round_trip(
                    {"rid": 5, "verb": "warp", "tenant": "w"})
                assert reply["ok"] is False
                assert reply["error"]["code"] == "not_found"

                reply = await ws.round_trip(
                    {"rid": 6, "verb": "close", "tenant": "w",
                     "payload": {"checkpoint": False}})
                assert reply["data"]["checkpointed"] is False
                assert len(server.registry) == 0
            finally:
                await ws.close()
                await server.close()

        asyncio.run(run())

    def test_oversized_frame_gets_a_1009_close_frame(self):
        import struct

        from repro.server.wire import WS_OP_CLOSE, _ws_read_frame

        async def run() -> tuple[int, int]:
            server = await _booted(max_body_bytes=1024)
            ws = WebSocketClient(server.host, server.port)
            try:
                await ws.connect()
                assert ws._reader is not None and ws._writer is not None
                # 4 KiB of JSON against a 1 KiB limit: the server must
                # answer with a proper close frame (1009 Message Too
                # Big), not drop the TCP connection mid-stream.
                big = '{"verb": "' + "x" * 4096 + '"}'
                from repro.server.wire import ws_write_message
                await ws_write_message(ws._writer, big,
                                       mask=ws._next_mask())
                opcode, _, payload = await _ws_read_frame(
                    ws._reader, max_len=1 << 16)
                (code,) = struct.unpack(">H", payload[:2])
                return opcode, code
            finally:
                await ws.close()
                await server.close()

        opcode, code = asyncio.run(run())
        assert opcode == WS_OP_CLOSE
        assert code == 1009


# ----------------------------------------------------------------------
# Tenant registry: quotas, LRU eviction, checkpoint/resume
# ----------------------------------------------------------------------

class TestTenantRegistry:
    def test_lru_eviction_checkpoints_and_resume_restores_digest(
            self, tmp_path):
        points = _points(7, n=80)
        ops = _insert_ops(8, 20)

        async def run() -> None:
            server = await _booted(max_tenants=1,
                                   checkpoint_root=tmp_path)
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/first/open",
                                     _open_payload(points))
                await client.request("POST", "/v1/tenants/first/batch",
                                     {"ops": ops})
                resp = await client.request(
                    "GET", "/v1/tenants/first/result?fresh=1")
                digest = resp.json()["result_digest"]

                # Opening a second tenant in a 1-slot registry evicts
                # the first — with a checkpoint it can resume from.
                resp = await client.request(
                    "POST", "/v1/tenants/second/open",
                    _open_payload(_points(9, n=40)))
                assert resp.json()["evicted"] == ["first"]
                assert (tmp_path / "first").is_dir()
                assert server.registry.counters["evict_checkpoints"] == 1

                resp = await client.request(
                    "POST", "/v1/tenants/first/open",
                    _open_payload(points, resume=True))
                assert resp.status == 200
                resp = await client.request(
                    "GET", "/v1/tenants/first/result?fresh=1")
                assert resp.json()["result_digest"] == digest
                assert server.registry.counters["resumed"] == 1
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_explicit_checkpoint_reports_manifest(self, tmp_path):
        points = _points(10, n=50)

        async def run() -> None:
            server = await _booted(checkpoint_root=tmp_path)
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/c/open",
                                     _open_payload(points))
                resp = await client.request(
                    "POST", "/v1/tenants/c/checkpoint", {})
                body = resp.json()
                assert resp.status == 200
                digest = body["state_digest"]
                assert len(digest) == 64 and int(digest, 16) >= 0
                assert (tmp_path / "c").is_dir()
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_checkpoint_without_root_is_unsupported(self):
        async def run() -> None:
            server = await _booted()
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/c/open",
                                     _open_payload(_points(11, n=30)))
                resp = await client.request(
                    "POST", "/v1/tenants/c/checkpoint", {})
                assert resp.status == 409
                assert resp.json()["error"]["code"] == "unsupported"
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_traversal_tenant_ids_are_rejected(self, tmp_path):
        # '.' and '..' pass the character-set check but would resolve
        # the checkpoint dir outside the configured root — a remote
        # client must never be able to place writes there.
        registry = TenantRegistry(max_tenants=2, checkpoint_root=tmp_path)
        for bad in (".", "..", "", "x" * 65, "bad!id"):
            with pytest.raises(ServiceError) as info:
                registry.open(bad, _open_payload(_points(20, n=20)))
            assert info.value.code == "bad_request", bad

        async def run() -> None:
            server = await _booted(checkpoint_root=tmp_path)
            client = HttpClient(server.host, server.port)
            try:
                resp = await client.request(
                    "POST", "/v1/tenants/../open",
                    _open_payload(_points(21, n=20)))
                assert resp.status == 400
                assert resp.json()["error"]["code"] == "bad_request"
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())
        # Nothing escaped the (still empty) checkpoint root.
        assert list(tmp_path.iterdir()) == []

    def test_checkpoint_dir_is_fenced_inside_the_root(self, tmp_path):
        # Defense in depth: even if an unsafe id slipped past
        # validation, _checkpoint_dir must refuse to resolve it.
        registry = TenantRegistry(max_tenants=2, checkpoint_root=tmp_path)
        assert registry._checkpoint_dir("ok") == tmp_path / "ok"
        with pytest.raises(ServiceError):
            registry._checkpoint_dir("..")

    def test_evict_while_waiting_on_the_lock_answers_unknown_tenant(
            self):
        async def run() -> None:
            server = await _booted()
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/r/open",
                                     _open_payload(_points(22, n=30)))
                tenant = server.registry.peek("r")
                # Hold the tenant lock (as a running wave would), queue
                # a write behind it, then evict before releasing: the
                # write must answer 404, not silently drop its ops.
                async with tenant.lock:
                    write = asyncio.ensure_future(server._write(
                        "r", _insert_ops(23, 4), {}))
                    await asyncio.sleep(0)
                    server.registry.evict("r", checkpoint=False)
                with pytest.raises(ServiceError) as info:
                    await write
                assert info.value.code == "unknown_tenant"
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())

    def test_pending_ops_quota_sheds_before_submit(self):
        registry = TenantRegistry(
            max_tenants=2, quota=TenantQuota(max_ops_per_request=64,
                                             max_pending_ops=10))
        tenant = registry.open("q", _open_payload(_points(12, n=30)))
        try:
            registry.admit(tenant, _insert_ops(0, 8))
            with pytest.raises(ServiceError) as info:
                registry.admit(tenant, _insert_ops(1, 8))
            assert info.value.code == "quota_exceeded"
            # The rejected request never entered the queue.
            assert tenant.supervisor.pending_ops == 8
        finally:
            registry.close_all()


# ----------------------------------------------------------------------
# Degradation: stale reads under a zero deadline
# ----------------------------------------------------------------------

class TestDegradation:
    def test_zero_deadline_read_serves_stale_with_lag(self):
        async def run() -> None:
            server = await _booted()
            client = HttpClient(server.host, server.port)
            try:
                await client.request("POST", "/v1/tenants/s/open",
                                     _open_payload(_points(13, n=60)))
                # Materialize a first result so there is something to
                # shed to, then queue work without pumping it.
                await client.request("GET",
                                     "/v1/tenants/s/result?fresh=1")
                tenant = server.registry.get("s")
                registry_admitted = server.registry.admit(
                    tenant, _insert_ops(14, 32))
                assert registry_admitted == 32
                view = await server._result("s", fresh=False,
                                            deadline_ms=0.0)
                assert view["stale"] is True
                assert view["lag_ops"] > 0
                assert "result_digest" not in view
                # A fresh read afterwards drains and converges.
                view = await server._result("s", fresh=True,
                                            deadline_ms=None)
                assert view["stale"] is False
                assert view["lag_ops"] == 0
                assert view["result_digest"] == result_digest(
                    tenant.session)
            finally:
                await client.close()
                await server.close()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Concurrency: multi-tenant isolation, chaos on one tenant only
# ----------------------------------------------------------------------

class TestMultiTenantIsolation:
    def test_concurrent_tenants_reach_digest_parity(self):
        async def run() -> dict[str, Any]:
            server = await _booted()
            try:
                await wait_ready(server.host, server.port)
                serve = asyncio.ensure_future(server.serve_forever())
                summary = await run_load(
                    server.host, server.port, "mixed-batch",
                    tenants=2, n=160, seed=0, r=6, m_max=32,
                    read_every=3, deadline_ms=1.0)
                serve.cancel()
                return summary
            finally:
                await server.close()

        summary = asyncio.run(run())
        assert summary["parity_ok"] is True
        assert len(summary["per_tenant"]) == 2
        transports = {row["transport"] for row in summary["per_tenant"]}
        assert transports == {"http", "ws"}
        digests = {row["served_digest"] for row in summary["per_tenant"]}
        assert len(digests) == 2  # per-tenant seeds -> distinct streams
        for row in summary["per_tenant"]:
            assert row["served_digest"] == row["inline_digest"]

    def test_chaos_on_one_tenant_never_perturbs_the_other(self):
        async def run() -> dict[str, Any]:
            server = await _booted()
            try:
                summary = await run_load(
                    server.host, server.port, "mixed-batch",
                    tenants=2, n=160, seed=3, r=6, m_max=32,
                    read_every=2, deadline_ms=1.0,
                    chaos_tenant=0, chaos_spec="all", chaos_seed=1)
                return {"summary": summary,
                        "tenants_left": len(server.registry)}
            finally:
                await server.close()

        out = asyncio.run(run())
        summary = out["summary"]
        rows = {row["tenant"]: row for row in summary["per_tenant"]}
        # Chaos actually fired on tenant0's transport...
        assert sum(rows["tenant0"]["chaos"].values()) > 0
        assert "chaos" not in rows["tenant1"]
        # ...yet BOTH tenants' digests match their inline references —
        # the isolation (and digest-safety) claim in one assertion.
        assert summary["parity_ok"] is True
        for row in summary["per_tenant"]:
            assert row["served_digest"] == row["inline_digest"], row
        # The driver evicted its tenants, leaving the server reusable.
        assert out["tenants_left"] == 0

    def test_serve_load_is_repeatable_against_a_standing_server(self):
        async def run() -> tuple[dict[str, Any], dict[str, Any]]:
            server = await _booted()
            try:
                first = await run_load(
                    server.host, server.port, "mixed-batch",
                    tenants=2, n=80, seed=0, r=6, m_max=32,
                    read_every=0, deadline_ms=1.0, check_parity=False)
                second = await run_load(
                    server.host, server.port, "mixed-batch",
                    tenants=2, n=80, seed=0, r=6, m_max=32,
                    read_every=0, deadline_ms=1.0, check_parity=False)
                return first, second
            finally:
                await server.close()

        first, second = asyncio.run(run())
        # Before the driver evicted its tenants on completion, the
        # second run died with tenant_exists on every open.
        assert {row["tenant"] for row in second["per_tenant"]} == \
            {row["tenant"] for row in first["per_tenant"]}
        assert all(row["served_digest"] for row in second["per_tenant"])


# ----------------------------------------------------------------------
# Load generator internals
# ----------------------------------------------------------------------

class TestLoadgen:
    def test_inline_digest_matches_direct_session_replay(self):
        from repro.scenarios import get_scenario
        from repro.scenarios.replay import batch_slices, floor_r

        trace = get_scenario("mixed-batch").compile(seed=0, n=120)
        r_eff = floor_r(6, trace.d)
        workload = trace.workload
        session = open_session(workload.initial, r_eff, k=1, algo="fd-rms",
                               seed=0, eps=0.1, m_max=32)
        try:
            for start, stop in batch_slices(trace):
                session.apply_batch(list(workload.operations[start:stop]))
            expected = result_digest(session)
        finally:
            session.close()
        assert inline_digest(trace, r=r_eff, k=1, seed=0, eps=0.1,
                             m_max=32) == expected
