"""Optimality cross-checks on tiny instances.

The brute-force oracle gives the true optimum; the heuristics must land
within predictable distance of it. These tests pin the *quality* claims
the paper makes qualitatively (GREEDY near-optimal, FD-RMS near GREEDY,
CUBE's bound loose but valid).
"""

import numpy as np
import pytest

from repro.baselines.cube import cube
from repro.baselines.dp2d import brute_force_rms
from repro.baselines.greedy import greedy
from repro.core.fdrms import FDRMS
from repro.core.regret import max_regret_ratio_lp
from repro.data import Database
from repro.geometry.hull import extreme_points


@pytest.fixture(scope="module")
def tiny():
    rng = np.random.default_rng(99)
    return rng.random((18, 3))


class TestAgainstBruteForce:
    def test_greedy_within_gap(self, tiny):
        cand = extreme_points(tiny)
        _, opt = brute_force_rms(tiny, 3, candidates=cand)
        sel = greedy(tiny, 3)
        val = max_regret_ratio_lp(tiny, tiny[sel])
        assert val <= opt + 0.12

    def test_fdrms_within_gap(self, tiny):
        cand = extreme_points(tiny)
        _, opt = brute_force_rms(tiny, 3, candidates=cand)
        db = Database(tiny)
        algo = FDRMS(db, 1, 3, 0.05, m_max=64, seed=0)
        val = max_regret_ratio_lp(tiny, algo.result_points())
        assert val <= opt + 0.2

    def test_cube_bound_holds(self, tiny):
        # CUBE guarantees mrr = O(r^{-1/(d-1)}); on the unit cube with
        # r = 9, d = 3 the classical constant gives a loose but finite
        # bound; sanity-check it is not vacuous.
        sel = cube(tiny, 9)
        val = max_regret_ratio_lp(tiny, tiny[sel])
        assert val < 0.75

    def test_bruteforce_is_minimum(self, tiny):
        """No heuristic may beat the brute-force optimum."""
        cand = extreme_points(tiny)
        _, opt = brute_force_rms(tiny, 3, candidates=cand)
        for sel in (greedy(tiny, 3),
                    cube(tiny, 3)):
            val = max_regret_ratio_lp(tiny, tiny[sel])
            assert val >= opt - 5e-3


class TestDynamicEqualsStatic:
    def test_fdrms_after_churn_close_to_fresh(self, tiny):
        """Quality after heavy churn ≈ quality of a fresh build."""
        rng = np.random.default_rng(5)
        db = Database(tiny)
        algo = FDRMS(db, 1, 3, 0.05, m_max=64, seed=1)
        for _ in range(60):
            if rng.random() < 0.5 or len(db) < 6:
                algo.insert(rng.random(3))
            else:
                alive = db.ids()
                algo.delete(int(alive[rng.integers(alive.size)]))
        churned = max_regret_ratio_lp(db.points(), algo.result_points())

        fresh_db = Database(db.points())
        fresh = FDRMS(fresh_db, 1, 3, 0.05, m_max=64, seed=1)
        fresh_val = max_regret_ratio_lp(fresh_db.points(),
                                        fresh.result_points())
        assert churned <= fresh_val + 0.15
