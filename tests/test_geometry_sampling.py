"""Unit + property tests for utility-space sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.sampling import (
    delta_net_size,
    grid_utilities,
    net_resolution,
    sample_utilities,
    sample_utilities_with_basis,
)


class TestSampleUtilities:
    def test_shape_and_norm(self):
        u = sample_utilities(100, 5, seed=0)
        assert u.shape == (100, 5)
        assert np.allclose(np.linalg.norm(u, axis=1), 1.0)

    def test_nonnegative(self):
        u = sample_utilities(500, 3, seed=1)
        assert (u >= 0).all()

    def test_deterministic_with_seed(self):
        a = sample_utilities(10, 4, seed=42)
        b = sample_utilities(10, 4, seed=42)
        assert np.array_equal(a, b)

    def test_zero_m(self):
        assert sample_utilities(0, 3).shape == (0, 3)

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            sample_utilities(-1, 3)

    def test_roughly_uniform_octant_coverage(self):
        # In 2-d, the fraction with u[0] > u[1] should be about half.
        u = sample_utilities(4000, 2, seed=3)
        frac = float((u[:, 0] > u[:, 1]).mean())
        assert 0.45 < frac < 0.55


class TestBasisSample:
    def test_first_d_rows_are_basis(self):
        u = sample_utilities_with_basis(10, 4, seed=0)
        assert np.allclose(u[:4], np.eye(4))
        assert u.shape == (10, 4)

    def test_requires_m_at_least_d(self):
        with pytest.raises(ValueError):
            sample_utilities_with_basis(2, 3)


class TestGridUtilities:
    def test_d1_single_direction(self):
        g = grid_utilities(5, 1)
        assert g.shape == (1, 1)
        assert np.isclose(g[0, 0], 1.0)

    def test_count_matches_simplex_lattice(self):
        # C(per_axis + d - 1, d - 1) lattice points, minus the none-zero
        # guard (all lattice points with per_axis >= 1 are nonzero).
        from math import comb
        g = grid_utilities(4, 3)
        assert g.shape[0] == comb(4 + 2, 2)

    def test_unit_norm_and_nonneg(self):
        g = grid_utilities(6, 4)
        assert np.allclose(np.linalg.norm(g, axis=1), 1.0)
        assert (g >= 0).all()

    def test_includes_axis_directions(self):
        g = grid_utilities(3, 2)
        for axis in np.eye(2):
            assert np.isclose(np.abs(g @ axis).max(), 1.0)


class TestDeltaNet:
    def test_size_grows_as_delta_shrinks(self):
        assert delta_net_size(0.01, 3) > delta_net_size(0.1, 3)

    def test_d1_trivial(self):
        assert delta_net_size(0.5, 1) == 1

    def test_resolution_inverts_size(self):
        for d in (2, 3, 5):
            m = delta_net_size(0.05, d)
            delta = net_resolution(m, d)
            assert 0.03 < delta < 0.08

    def test_rejects_bad_delta(self):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                delta_net_size(bad, 3)


@settings(max_examples=25, deadline=None)
@given(m=st.integers(1, 50), d=st.integers(1, 6),
       seed=st.integers(0, 2**32 - 1))
def test_sample_always_unit_nonnegative(m, d, seed):
    u = sample_utilities(m, d, seed=seed)
    assert u.shape == (m, d)
    assert (u >= 0).all()
    assert np.allclose(np.linalg.norm(u, axis=1), 1.0, atol=1e-9)
