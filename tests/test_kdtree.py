"""Unit + property tests for the dynamic k-d tree (tuple index TI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kdtree import KDTree


def _brute_top_k(points: dict[int, np.ndarray], u: np.ndarray, k: int):
    items = sorted(points.items(),
                   key=lambda kv: (-float(kv[1] @ u), kv[0]))[:k]
    return [pid for pid, _ in items]


class TestBuildAndQuery:
    def test_bulk_build_top_k(self, rng):
        pts = rng.random((200, 4))
        tree = KDTree.build(range(200), pts)
        u = rng.random(4)
        ids, scores = tree.top_k(u, 10)
        ref = _brute_top_k({i: pts[i] for i in range(200)}, u, 10)
        assert ids.tolist() == ref
        assert np.allclose(scores, pts[ids] @ u)

    def test_top_k_more_than_size(self, rng):
        pts = rng.random((5, 3))
        tree = KDTree.build(range(5), pts)
        ids, _ = tree.top_k(rng.random(3), 99)
        assert sorted(ids.tolist()) == list(range(5))

    def test_top_k_empty_tree(self):
        tree = KDTree(3)
        ids, scores = tree.top_k(np.ones(3), 4)
        assert ids.size == 0 and scores.size == 0

    def test_range_query_matches_bruteforce(self, rng):
        pts = rng.random((150, 3))
        tree = KDTree.build(range(150), pts)
        u = rng.random(3)
        tau = float(np.quantile(pts @ u, 0.9))
        ids, scores = tree.range_query(u, tau)
        expect = sorted(int(i) for i in np.flatnonzero(pts @ u >= tau))
        assert sorted(ids.tolist()) == expect
        assert (scores >= tau).all()
        # Sorted by descending score.
        assert (np.diff(scores) <= 1e-12).all()

    def test_duplicate_points_allowed(self):
        pts = np.tile(np.array([[0.5, 0.5]]), (40, 1))
        tree = KDTree.build(range(40), pts)
        ids, _ = tree.top_k(np.array([1.0, 0.0]), 3)
        assert ids.tolist() == [0, 1, 2]  # tie-break by id

    def test_wrong_dimension_raises(self, rng):
        tree = KDTree.build(range(4), rng.random((4, 3)))
        with pytest.raises(ValueError):
            tree.top_k(np.ones(2), 1)
        with pytest.raises(ValueError):
            tree.range_query(np.ones(4), 0.0)


class TestDynamics:
    def test_insert_then_query(self, rng):
        tree = KDTree(3)
        pts = {}
        for i in range(120):
            p = rng.random(3)
            tree.insert(i, p)
            pts[i] = p
        u = rng.random(3)
        ids, _ = tree.top_k(u, 7)
        assert ids.tolist() == _brute_top_k(pts, u, 7)

    def test_duplicate_id_rejected(self):
        tree = KDTree(2)
        tree.insert(0, [0.5, 0.5])
        with pytest.raises(KeyError):
            tree.insert(0, [0.6, 0.6])

    def test_delete_removes_from_results(self, rng):
        pts = rng.random((50, 3))
        tree = KDTree.build(range(50), pts)
        u = rng.random(3)
        best = int(tree.top_k(u, 1)[0][0])
        tree.delete(best)
        assert best not in tree
        new_best = int(tree.top_k(u, 1)[0][0])
        assert new_best != best

    def test_delete_unknown_raises(self):
        tree = KDTree(2)
        with pytest.raises(KeyError):
            tree.delete(3)

    def test_mass_delete_triggers_rebuild_and_stays_correct(self, rng):
        pts = rng.random((256, 3))
        tree = KDTree.build(range(256), pts)
        alive = dict(enumerate(pts))
        order = rng.permutation(256)
        for victim in order[:230]:
            tree.delete(int(victim))
            del alive[int(victim)]
        assert len(tree) == len(alive)
        u = rng.random(3)
        ids, _ = tree.top_k(u, 5)
        assert ids.tolist() == _brute_top_k(alive, u, 5)

    def test_interleaved_insert_delete(self, rng):
        tree = KDTree(2, leaf_capacity=4)
        alive: dict[int, np.ndarray] = {}
        next_id = 0
        for step in range(300):
            if not alive or rng.random() < 0.6:
                p = rng.random(2)
                tree.insert(next_id, p)
                alive[next_id] = p
                next_id += 1
            else:
                victim = int(rng.choice(list(alive)))
                tree.delete(victim)
                del alive[victim]
            if step % 50 == 0 and alive:
                u = rng.random(2)
                ids, _ = tree.top_k(u, min(4, len(alive)))
                assert ids.tolist() == _brute_top_k(alive, u, min(4, len(alive)))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 60), k=st.integers(1, 8), seed=st.integers(0, 999))
def test_topk_property(n, k, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))
    tree = KDTree.build(range(n), pts, leaf_capacity=4)
    u = rng.random(3) + 1e-3
    ids, scores = tree.top_k(u, k)
    ref = _brute_top_k({i: pts[i] for i in range(n)}, u, k)
    assert ids.tolist() == ref
    assert np.all(np.diff(scores) <= 1e-12)


class TestBulkInsert:
    def test_insert_many_equals_repeated_insert(self, rng):
        pts = rng.random((120, 3))
        bulk = KDTree(3, leaf_capacity=4)
        bulk.insert_many(range(120), pts)
        seq = KDTree(3, leaf_capacity=4)
        for i in range(120):
            seq.insert(i, pts[i])
        for _ in range(6):
            u = rng.random(3)
            assert bulk.top_k(u, 9)[0].tolist() == seq.top_k(u, 9)[0].tolist()
        assert len(bulk) == len(seq) == 120

    def test_insert_many_into_populated_tree(self, rng):
        tree = KDTree.build(range(30), rng.random((30, 2)), leaf_capacity=4)
        tree.insert_many(range(100, 140), rng.random((40, 2)))
        assert len(tree) == 70
        assert 105 in tree

    def test_insert_many_rejects_duplicates(self, rng):
        tree = KDTree(2)
        with pytest.raises(KeyError):
            tree.insert_many([0, 0], rng.random((2, 2)))
        tree.insert(1, rng.random(2))
        with pytest.raises(KeyError):
            tree.insert_many([1, 2], rng.random((2, 2)))

    def test_node_recycling_after_rebuilds(self, rng):
        """Mass deletion rebuilds recycle node storage via the free list."""
        tree = KDTree.build(range(512), rng.random((512, 3)), leaf_capacity=4)
        for victim in rng.permutation(512)[:500]:
            tree.delete(int(victim))
        assert len(tree) == 12
        nodes_after_decay = tree._n_nodes - len(tree._free_nodes)
        assert nodes_after_decay < 64  # shrunk with the data


class TestBulkDelete:
    def test_delete_many_equals_repeated_delete(self, rng):
        pts = rng.random((300, 4))
        a = KDTree.build(range(300), pts)
        b = KDTree.build(range(300), pts)
        victims = rng.permutation(300)[:180].tolist()
        a.delete_many(victims)
        for tid in victims:
            b.delete(tid)
        assert len(a) == len(b) == 120
        for _ in range(15):
            u = rng.random(4)
            ids_a, sc_a = a.top_k(u, 7)
            ids_b, sc_b = b.top_k(u, 7)
            assert ids_a.tolist() == ids_b.tolist()
            assert np.allclose(sc_a, sc_b)
            tau = float(np.quantile(pts @ u, 0.9))
            r_a, _ = a.range_query(u, tau)
            r_b, _ = b.range_query(u, tau)
            assert r_a.tolist() == r_b.tolist()

    def test_delete_many_then_insert_stays_correct(self, rng):
        pts = rng.random((120, 3))
        tree = KDTree.build(range(120), pts)
        tree.delete_many(list(range(0, 120, 2)))
        fresh = rng.random((30, 3))
        tree.insert_many(range(200, 230), fresh)
        alive = {i: pts[i] for i in range(1, 120, 2)}
        alive.update({200 + i: fresh[i] for i in range(30)})
        u = rng.random(3)
        ids, _scores = tree.top_k(u, 9)
        assert ids.tolist() == _brute_top_k(alive, u, 9)

    def test_delete_many_missing_id_is_atomic(self, rng):
        pts = rng.random((40, 3))
        tree = KDTree.build(range(40), pts)
        with pytest.raises(KeyError):
            tree.delete_many([1, 2, 3, 4, 999])
        assert len(tree) == 40
        u = rng.random(3)
        ids, _ = tree.top_k(u, 5)
        assert ids.tolist() == _brute_top_k({i: pts[i] for i in range(40)},
                                            u, 5)

    def test_delete_many_duplicate_raises(self, rng):
        tree = KDTree.build(range(10), rng.random((10, 2)))
        with pytest.raises(KeyError):
            tree.delete_many([3, 3, 4, 5, 6])
        assert len(tree) == 10
