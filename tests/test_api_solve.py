"""The ``solve()`` facade: uniform results, equivalence, validation."""

import numpy as np
import pytest

import repro
from repro.api.registry import CapabilityError, list_algorithms
from repro.api.result import RMSResult
from repro.baselines.dmm import dmm_greedy
from repro.baselines.dp2d import dp2d
from repro.baselines.greedy import greedy
from repro.baselines.hitting_set import hitting_set
from repro.baselines.sphere import sphere


@pytest.fixture(scope="module")
def pts2d():
    return np.random.default_rng(5).random((80, 2))


@pytest.fixture(scope="module")
def pts4d():
    return np.random.default_rng(6).random((150, 4))


class TestEveryAlgorithm:
    def test_solve_works_for_every_registered_algorithm(self, pts2d):
        # d = 2 is the one dimensionality every algorithm supports.
        for spec in list_algorithms():
            res = repro.solve(pts2d, r=10, algo=spec.name, seed=0)
            assert isinstance(res, RMSResult)
            assert res.algorithm == spec.display_name
            assert len(res) <= 10
            assert res.points.shape == (len(res), 2)
            assert np.array_equal(res.points, pts2d[res.indices])
            assert res.wall_seconds >= 0.0

    def test_result_is_frozen(self, pts2d):
        res = repro.solve(pts2d, r=5, algo="cube")
        with pytest.raises(Exception):
            res.indices[0] = 99
        with pytest.raises(Exception):
            res.config["r"] = 1
        with pytest.raises(Exception):
            res.r = 1


class TestDirectCallEquivalence:
    """solve(points, r, algo=name) must match the raw function call."""

    CASES = [
        ("greedy", greedy, {}),
        ("sphere", sphere, {"seed": 11}),
        ("dmm-greedy", dmm_greedy, {"seed": 11}),
        ("hs", hitting_set, {"seed": 11, "k": 2}),
    ]

    @pytest.mark.parametrize("name,func,extra",
                             CASES, ids=[c[0] for c in CASES])
    def test_equivalence(self, pts4d, name, func, extra):
        k = extra.get("k", 1)
        seed = extra.get("seed")
        direct = np.sort(np.asarray(func(pts4d, 8, **extra)))
        via = repro.solve(pts4d, r=8, k=k, algo=name, seed=seed)
        assert np.array_equal(via.indices, direct)

    def test_equivalence_dp2d(self, pts2d):
        direct = np.sort(np.asarray(dp2d(pts2d, 6)))
        via = repro.solve(pts2d, r=6, algo="dp2d")
        assert np.array_equal(via.indices, direct)


class TestAutoPolicy:
    def test_auto_picks_exact_oracle_in_2d(self, pts2d):
        assert repro.solve(pts2d, r=6).algorithm == "DP2D"

    def test_auto_picks_fdrms_otherwise(self, pts4d):
        assert repro.solve(pts4d, r=6, seed=0).algorithm == "FD-RMS"
        two_d = np.random.default_rng(1).random((40, 2))
        # k > 1 rules the 2-d oracle out even in two dimensions.
        assert repro.solve(two_d, r=6, k=2, seed=0).algorithm == "FD-RMS"


class TestValidationAndExtras:
    def test_capability_error_for_k(self, pts4d):
        with pytest.raises(CapabilityError, match="k > 1"):
            repro.solve(pts4d, r=5, k=2, algo="greedy")

    def test_capability_error_for_d(self, pts4d):
        with pytest.raises(CapabilityError, match="d = 2"):
            repro.solve(pts4d, r=5, algo="dp2d")

    def test_unknown_option_raises(self, pts4d):
        with pytest.raises(TypeError, match="does not accept"):
            repro.solve(pts4d, r=5, algo="cube", bogus=1)

    def test_option_forwarding(self, pts4d):
        res = repro.solve(pts4d, r=5, algo="sphere", seed=0, n_samples=500)
        assert res.config["n_samples"] == 500

    def test_evaluate_attaches_regret(self, pts4d):
        res = repro.solve(pts4d, r=8, algo="sphere", seed=0, evaluate=True,
                          eval_samples=2000)
        assert res.regret is not None and 0.0 <= res.regret <= 1.0
        assert "mrr=" in res.summary()

    def test_fdrms_solve_equals_engine(self, pts4d):
        via = repro.solve(pts4d, r=8, algo="fd-rms", seed=3, m_max=64)
        db = repro.Database(pts4d)
        engine = repro.FDRMS(db, 1, 8, 0.02, m_max=64, seed=3)
        assert list(via.indices) == engine.result()


class TestEvalUtilitiesPlumbing:
    def test_pinned_test_set_drives_evaluation(self, rng):
        import repro
        from repro.core.regret import max_k_regret_ratio_sampled
        pts = rng.random((150, 3))
        utils = rng.random((64, 3)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        res = repro.solve(pts, r=6, algo="sphere", seed=0, evaluate=True,
                          eval_utilities=utils)
        expect = max_k_regret_ratio_sampled(pts, res.points, 1,
                                            utilities=utils)
        assert res.regret == pytest.approx(expect, abs=0.0)

    def test_cached_evaluation_is_deterministic(self, rng):
        import repro
        pts = rng.random((150, 3))
        r1 = repro.solve(pts, r=6, algo="sphere", seed=4, evaluate=True,
                         eval_samples=500)
        r2 = repro.solve(pts, r=6, algo="sphere", seed=4, evaluate=True,
                         eval_samples=500)
        assert r1.regret == r2.regret
