"""Unit + property tests for the skyline operator (static + dynamic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.database import Database
from repro.skyline import DynamicSkyline, dominates, skyline_indices, skyline_mask


class TestDominates:
    def test_strict_domination(self):
        assert dominates([0.5, 0.5], [0.4, 0.4])
        assert dominates([0.5, 0.4], [0.4, 0.4])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([0.5, 0.5], [0.5, 0.5])

    def test_incomparable(self):
        assert not dominates([0.9, 0.1], [0.1, 0.9])
        assert not dominates([0.1, 0.9], [0.9, 0.1])

    def test_tolerance(self):
        assert dominates([0.5, 0.5], [0.501, 0.3], tol=0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([0.5], [0.5, 0.5])


def _brute_skyline(pts: np.ndarray) -> set[int]:
    out = set()
    n = pts.shape[0]
    for i in range(n):
        if not any(dominates(pts[j], pts[i]) for j in range(n) if j != i):
            out.add(i)
    return out


class TestStaticSkyline:
    def test_paper_dataset(self, paper_points):
        # Fig. 1: the skyline of {p1..p8} is {p1, p2, p3, p4, p7}
        # (0-indexed rows 0, 1, 2, 3, 6).
        sky = set(skyline_indices(paper_points).tolist())
        assert sky == {0, 1, 2, 3, 6}

    def test_matches_bruteforce(self, rng):
        pts = rng.random((150, 3))
        assert set(skyline_indices(pts).tolist()) == _brute_skyline(pts)

    def test_duplicates_both_survive(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.1]])
        mask = skyline_mask(pts)
        assert mask.tolist() == [True, True, False]

    def test_single_point(self):
        assert skyline_mask(np.array([[0.3, 0.3]])).tolist() == [True]

    def test_anticorrelated_has_large_skyline(self, rng):
        from repro.data.synthetic import anticorrelated_points, correlated_points
        anti = anticorrelated_points(400, 4, seed=rng)
        corr = correlated_points(400, 4, seed=rng, correlation=0.9)
        assert skyline_indices(anti).size > skyline_indices(corr).size


class TestDynamicSkyline:
    def test_initial_matches_static(self, small_cloud):
        db = Database(small_cloud)
        dyn = DynamicSkyline(db)
        assert set(dyn.ids) == set(skyline_indices(small_cloud).tolist())

    def test_insert_dominated_no_change(self, paper_points):
        db = Database(paper_points)
        dyn = DynamicSkyline(db)
        before = set(dyn.ids)
        pid = db.insert([0.1, 0.1])
        assert dyn.insert(pid) is False
        assert set(dyn.ids) == before

    def test_insert_dominating_evicts(self, paper_points):
        db = Database(paper_points)
        dyn = DynamicSkyline(db)
        pid = db.insert([1.0, 1.0])  # dominates everything
        assert dyn.insert(pid) is True
        assert set(dyn.ids) == {pid}

    def test_delete_nonskyline_no_change(self, paper_points):
        db = Database(paper_points)
        dyn = DynamicSkyline(db)
        before = set(dyn.ids)
        db.delete(4)  # p5 is dominated
        assert dyn.delete(4) is False
        assert set(dyn.ids) == before

    def test_delete_skyline_promotes(self, paper_points):
        db = Database(paper_points)
        dyn = DynamicSkyline(db)
        db.delete(0)  # p1 leaves; p7 keeps (0.3, 0.9); p6 still dominated
        assert dyn.delete(0) is True
        ids, pts = db.snapshot()
        expect = {int(ids[i]) for i in
                  np.flatnonzero(skyline_mask(pts))}
        assert set(dyn.ids) == expect

    def test_random_sequence_matches_recompute(self, rng):
        pts = rng.random((120, 3))
        db = Database(pts[:60])
        dyn = DynamicSkyline(db)
        for row in range(60, 120):
            pid = db.insert(pts[row])
            dyn.insert(pid)
            self_check(db, dyn)
        alive = list(db.ids())
        rng.shuffle(alive)
        for victim in alive[:80]:
            db.delete(int(victim))
            dyn.delete(int(victim))
            self_check(db, dyn)

    def test_points_accessor(self, paper_points):
        db = Database(paper_points)
        dyn = DynamicSkyline(db)
        ids, pts = dyn.points()
        assert ids.tolist() == sorted(dyn.ids)
        assert pts.shape == (len(dyn), 2)


def self_check(db: Database, dyn: DynamicSkyline) -> None:
    ids, pts = db.snapshot()
    if ids.size == 0:
        assert len(dyn) == 0
        return
    expect = {int(ids[i]) for i in np.flatnonzero(skyline_mask(pts))}
    assert set(dyn.ids) == expect


@settings(max_examples=25, deadline=None)
@given(data=arrays(np.float64, st.tuples(st.integers(2, 25), st.just(3)),
                   elements=st.floats(0.0, 1.0, allow_nan=False)),
       n_ops=st.integers(1, 15), seed=st.integers(0, 1000))
def test_dynamic_skyline_property(data, n_ops, seed):
    """Dynamic maintenance equals recompute after every random op."""
    rng = np.random.default_rng(seed)
    half = max(1, data.shape[0] // 2)
    db = Database(data[:half])
    dyn = DynamicSkyline(db)
    pending = list(range(half, data.shape[0]))
    for _ in range(n_ops):
        alive = db.ids()
        if pending and (alive.size <= 1 or rng.random() < 0.5):
            row = pending.pop()
            pid = db.insert(data[row])
            dyn.insert(pid)
        elif alive.size > 1:
            victim = int(alive[rng.integers(alive.size)])
            db.delete(victim)
            dyn.delete(victim)
        self_check(db, dyn)
