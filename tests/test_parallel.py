"""Parallel execution backend: worker-count invariance and crash safety.

The contract under test (docs/DETERMINISM.md, worker-count-invariance
rule): block decompositions are pure functions of problem size, every
block is the same NumPy call on every backend, and reduction is
block-ordered — so engine state digests are *byte-identical* across
``parallel=1/2/4``, replay determinism digests match the inline engine,
and a worker crash mid-wave degrades to inline recomputation without
changing a single bit.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.parallel.blocks as blocks
from repro.core.fdrms import FDRMS
from repro.data.database import DELETE, INSERT, Database, Operation
from repro.parallel import (
    HAVE_NUMBA,
    SerialBackend,
    SharedMemoryBackend,
    ShmArena,
    eviction_positions,
    reached_utilities,
    resolve_backend,
)
from repro.parallel.kernels import KERNELS, bootstrap_chunk


def _mixed_ops(rng, n_insert=30, delete_ids=range(0, 40, 2)):
    ops = [Operation(INSERT, rng.random(4), None) for _ in range(n_insert)]
    ops += [Operation(DELETE, None, int(i)) for i in delete_ids]
    return ops


def _build_engine(points, parallel, *, ops=None):
    engine = FDRMS(Database(points), 1, 6, 0.1, m_max=32, seed=3,
                   parallel=parallel)
    if ops is not None:
        engine.apply_batch(ops)
    return engine


@pytest.fixture
def small_sharding(monkeypatch):
    """Shrink blocks/thresholds so tiny problems exercise real sharding."""
    monkeypatch.setattr(blocks, "BOOTSTRAP_CHUNK_ELEMS", 2000)
    monkeypatch.setattr(blocks, "SCORE_BLOCK_ROWS", 7)
    monkeypatch.setattr(blocks, "SCORE_PAR_MIN_ELEMS", 1)
    monkeypatch.setattr(blocks, "REPAIR_BLOCK_COLS", 3)
    monkeypatch.setattr(blocks, "REPAIR_PAR_MIN_ELEMS", 1)


# ----------------------------------------------------------------------
# Backend resolution and block decompositions
# ----------------------------------------------------------------------

def test_resolve_backend_mapping():
    assert resolve_backend(None) is None
    assert isinstance(resolve_backend(0), SerialBackend)
    assert isinstance(resolve_backend(1), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    shm = resolve_backend(3)
    assert isinstance(shm, SharedMemoryBackend) and shm.workers == 3
    shm.close()
    auto = resolve_backend("auto")
    assert auto.workers == max(1, os.cpu_count() or 1) or \
        isinstance(auto, SerialBackend)
    auto.close()
    passthrough = SerialBackend()
    assert resolve_backend(passthrough) is passthrough
    with pytest.raises(ValueError):
        resolve_backend(-1)
    with pytest.raises(ValueError):
        resolve_backend("sideways")
    with pytest.raises(ValueError):
        SharedMemoryBackend(1)


def test_bootstrap_chunks_match_historical_rule():
    # The inline bootstrap has always chunked utilities by
    # max(1, 4_000_000 // n); the canonical decomposition must agree.
    for n, m_total in [(1, 8), (100, 64), (100_000, 1024), (5_000_000, 7)]:
        chunk = max(1, int(4_000_000 // max(1, n)))
        expected = [(s, min(s + chunk, m_total))
                    for s in range(0, m_total, chunk)]
        assert blocks.bootstrap_chunks(n, m_total) == expected


def test_block_decompositions_cover_exactly():
    for fn, total in [(blocks.score_row_blocks, 2500),
                      (blocks.repair_col_blocks, 100)]:
        spans = fn(total)
        assert spans[0][0] == 0 and spans[-1][1] == total
        for (_, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 == s2


# ----------------------------------------------------------------------
# Kernel-level byte parity
# ----------------------------------------------------------------------

def test_bootstrap_kernel_byte_parity_across_backends():
    rng = np.random.default_rng(0)
    n, d, m_total = 400, 4, 96
    pts = rng.standard_normal((n, d))
    ids = np.arange(n, dtype=np.intp)
    u = np.abs(rng.standard_normal((m_total, d)))
    chunks = blocks.bootstrap_chunks(n, m_total)

    def wave(backend):
        payloads = [{"pts": backend.ship(pts), "ids": backend.ship(ids),
                     "u": backend.share("u", 0, u),
                     "start": s, "end": e, "k": 2, "eps": 0.1}
                    for s, e in chunks]
        return backend.map_blocks("bootstrap_chunk", payloads)

    serial, shm = SerialBackend(), SharedMemoryBackend(2)
    try:
        results = {"serial": wave(serial), "shm": wave(shm)}
    finally:
        shm.close()
    for (s, e), rs, rp in zip(chunks, results["serial"], results["shm"]):
        reference = bootstrap_chunk(pts, ids, u, s, e, 2, 0.1)
        for ref, out_s, out_p in zip(reference, rs, rp):
            assert np.array_equal(ref, out_s)
            assert np.array_equal(out_s, out_p)


def test_shm_arena_publish_cache_and_release():
    arena = ShmArena()
    arr = np.arange(12, dtype=np.float64).reshape(3, 4)
    ref1 = arena.publish("u", 0, arr)
    assert arena.publish("u", 0, arr) is ref1  # token hit reuses
    ref2 = arena.publish("u", 1, arr * 2)  # token bump reallocates
    assert ref2.name != ref1.name
    assert np.array_equal(arena.view(ref2), arr * 2)
    transient = arena.ship(arr[::2])  # non-contiguous input
    view = arena.view(transient)
    assert view.flags["C_CONTIGUOUS"] and np.array_equal(view, arr[::2])
    arena.release(transient)
    arena.close()
    assert not arena._segments


# ----------------------------------------------------------------------
# Engine-level worker-count invariance
# ----------------------------------------------------------------------

def test_state_digest_identical_inline_and_all_worker_counts():
    # Default thresholds: small workloads stay on the single-GEMM
    # paths, and the bootstrap decomposition equals the inline chunk
    # rule — so even the inline engine must agree byte for byte.
    rng = np.random.default_rng(7)
    pts = rng.random((150, 4))
    ops = _mixed_ops(np.random.default_rng(8))
    digests = {}
    for parallel in (None, 1, 2, 4):
        engine = _build_engine(pts, parallel, ops=ops)
        digests[parallel] = engine.state_digest()
        engine.close()
    assert len(set(digests.values())) == 1


def test_state_digest_identical_with_forced_sharding(small_sharding):
    # Shrunk blocks force multi-chunk bootstrap, sharded insert-run
    # scoring, and blocked repair waves; workers 1/2/4 must still agree
    # byte for byte (inline is excluded here: it legitimately uses the
    # unsharded GEMMs).
    rng = np.random.default_rng(7)
    pts = rng.random((200, 4))
    ops = _mixed_ops(np.random.default_rng(9), n_insert=40,
                     delete_ids=range(0, 60, 2))
    digests = {}
    for parallel in (1, 2, 4):
        engine = _build_engine(pts, parallel, ops=ops)
        assert engine.parallel_workers == parallel
        digests[parallel] = engine.state_digest()
        engine.close()
    assert len(set(digests.values())) == 1


def test_replay_digest_and_trace_hash_worker_invariant():
    import json
    from pathlib import Path

    from repro.scenarios import get_scenario, hash_key, replay_trace

    golden = json.loads(
        Path(__file__).resolve().parents[1]
        .joinpath("benchmarks", "scenario_hashes.json").read_text())
    trace = get_scenario("mixed-batch").compile(seed=0, n=400)
    assert golden[hash_key("mixed-batch", 400, 0)] == trace.content_hash
    digests = set()
    for workers in (None, 1, 2, 4):
        options = {"eps": 0.1, "m_max": 64}
        if workers is not None:
            options["parallel"] = workers
        result = replay_trace(trace, "fd-rms", r=6, k=1, seed=0,
                              eval_samples=200, options=options)
        assert result.trace_hash == trace.content_hash
        digests.add(result.determinism_digest())
    assert len(digests) == 1


def test_open_session_parallel_and_close_releases_pool():
    from repro.api.session import open_session

    rng = np.random.default_rng(1)
    session = open_session(rng.random((120, 4)), 6, eps=0.1, m_max=32,
                           parallel=2)
    session.insert(rng.random(4))
    backend = session.engine._backend
    assert isinstance(backend, SharedMemoryBackend)
    session.close()
    assert backend._executor is None
    assert not backend._arena._segments


def test_workers_never_leak_into_digested_counters():
    # Worker count is physical configuration; landing it in stats()
    # would break digest parity across --workers values.
    rng = np.random.default_rng(2)
    engine = _build_engine(rng.random((80, 4)), 2)
    try:
        stats = engine.statistics()
        assert "parallel_workers" not in stats
        assert "workers" not in stats
        assert engine.parallel_workers == 2
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------

def _install_crashing_kernel(monkeypatch, name):
    """Make ``name`` kill the process when run inside a worker.

    The parent pid check keeps the degraded inline recomputation (and
    any serial backend) on the real kernel.
    """
    parent = os.getpid()
    real = KERNELS[name]

    def crashing(*args, **kwargs):
        if os.getpid() != parent:
            os._exit(1)
        return real(*args, **kwargs)

    monkeypatch.setitem(KERNELS, name, crashing)


def test_crash_during_parallel_bootstrap_degrades_bit_exact(
        monkeypatch, tmp_path):
    from repro.persist.checkpoint import save_checkpoint
    from repro.persist.recovery import restore_engine

    _install_crashing_kernel(monkeypatch, "bootstrap_chunk")
    rng = np.random.default_rng(4)
    pts = rng.random((150, 4))
    crashed = _build_engine(pts, 2)
    backend = crashed._backend
    assert backend.degraded  # every worker died mid-bootstrap
    clean = _build_engine(pts, 1)
    assert crashed.state_digest() == clean.state_digest()

    # Persistence is unaffected: the degraded engine checkpoints, and
    # the checkpoint restores (serially and in parallel) digest-exact.
    ops = _mixed_ops(np.random.default_rng(5), n_insert=10,
                     delete_ids=range(0, 10, 2))
    crashed.apply_batch(ops)
    clean.apply_batch(ops)
    assert crashed.state_digest() == clean.state_digest()
    save_checkpoint(crashed, tmp_path / "ckpt")
    for parallel in (None, 2):
        restored, info = restore_engine(tmp_path / "ckpt",
                                        parallel=parallel)
        assert info["state_digest"] == crashed.state_digest()
        restored.close()
    crashed.close()
    clean.close()


def test_crash_mid_stream_wave_recovers_and_stays_serial(
        monkeypatch, small_sharding):
    _install_crashing_kernel(monkeypatch, "score_rows")
    rng = np.random.default_rng(6)
    pts = rng.random((150, 4))
    ops = _mixed_ops(np.random.default_rng(7))
    survivor = _build_engine(pts, 2, ops=ops)  # crashes on first wave
    assert survivor._backend.degraded
    reference = _build_engine(pts, 1, ops=ops)
    assert survivor.state_digest() == reference.state_digest()
    survivor.close()
    reference.close()


def test_restore_reestablishes_pool_digest_exact(
        monkeypatch, small_sharding):
    """Degrade -> fix -> ``restore()`` -> parallel again, bit-for-bit.

    The full round trip the service layer's breaker probe relies on:
    a crashing kernel degrades the backend inline, reinstating the
    real kernel and calling ``restore()`` brings a live pool back, and
    the post-restore parallel waves leave the engine digest-identical
    to a serial run of the same history.
    """
    real = KERNELS["score_rows"]
    _install_crashing_kernel(monkeypatch, "score_rows")
    rng = np.random.default_rng(8)
    pts = rng.random((150, 4))
    first = _mixed_ops(np.random.default_rng(9))
    survivor = _build_engine(pts, 2, ops=first)
    backend = survivor._backend
    assert backend.degraded
    monkeypatch.setitem(KERNELS, "score_rows", real)  # "deploy the fix"
    assert backend.restore() is True
    assert not backend.degraded
    assert backend.restores == 1
    assert backend.restore() is True  # idempotent on a healthy pool
    assert backend.restores == 1
    more = _mixed_ops(np.random.default_rng(10), n_insert=20,
                      delete_ids=range(40, 60, 2))
    survivor.apply_batch(more)
    assert not backend.degraded  # the re-pooled executor really ran
    reference = _build_engine(pts, 1, ops=first + more)
    assert survivor.state_digest() == reference.state_digest()
    survivor.close()
    reference.close()


# ----------------------------------------------------------------------
# Compiled scalar tails (feature-detected; CI runs the NumPy branch)
# ----------------------------------------------------------------------

def test_compiled_shim_matches_numpy_expressions():
    rng = np.random.default_rng(11)
    row = rng.standard_normal(257)
    taus = rng.standard_normal(257)
    assert np.array_equal(reached_utilities(row, taus),
                          np.flatnonzero(row >= taus))
    assert np.array_equal(eviction_positions(row, taus),
                          np.flatnonzero(row < taus))
    # Exactly-equal scores must count as reached (>= semantics).
    assert np.array_equal(reached_utilities(taus.copy(), taus),
                          np.arange(257))
    assert eviction_positions(taus.copy(), taus).size == 0


def test_have_numba_reflects_environment():
    try:
        import numba  # noqa: F401
        expected = True
    except ImportError:
        expected = False
    assert HAVE_NUMBA is expected


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_replay_workers_flag(capsys):
    from repro.cli import main

    rc = main(["replay", "mixed-batch", "--n", "150", "--r", "6",
               "--m-max", "32", "--eval-samples", "100",
               "--workers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mixed-batch" in out
