"""Unit tests for the regret LPs."""

import numpy as np
import pytest

from repro.geometry.lp import (
    max_regret_direction,
    min_size_cover_lp_bound,
    point_happiness,
    worst_case_ratio,
)


class TestWorstCaseRatio:
    def test_zero_when_p_in_q(self):
        q = np.array([[0.5, 0.5], [0.9, 0.1]])
        assert worst_case_ratio(q[0], q) == pytest.approx(0.0, abs=1e-9)

    def test_zero_when_dominated(self):
        p = np.array([0.3, 0.3])
        q = np.array([[0.5, 0.5]])
        assert worst_case_ratio(p, q) == pytest.approx(0.0, abs=1e-9)

    def test_axis_extreme_regret(self):
        # Q holds only the y-extreme; p is the x-extreme. At u = e_x the
        # ratio ω(u, Q)/<u, p> = 0.1/1.0, so regret = 0.9.
        p = np.array([1.0, 0.0])
        q = np.array([[0.1, 1.0]])
        assert worst_case_ratio(p, q) == pytest.approx(0.9, abs=1e-6)

    def test_clipped_to_unit_interval(self):
        p = np.array([1.0, 0.0])
        q = np.array([[0.0, 1.0]])
        val = worst_case_ratio(p, q)
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(1.0, abs=1e-6)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            worst_case_ratio(np.ones(3), np.ones((2, 2)))


class TestMaxRegretDirection:
    def test_direction_witnesses_value(self):
        rng = np.random.default_rng(0)
        pts = rng.random((20, 3))
        q = pts[:4]
        p = pts[int(np.argmax(pts.sum(axis=1)))]
        val, u = max_regret_direction(p, q)
        assert np.isclose(np.linalg.norm(u), 1.0)
        # Realized regret at the witness direction matches the LP value.
        realized = max(0.0, 1.0 - float(np.max(q @ u)) / float(p @ u))
        assert realized == pytest.approx(val, abs=1e-6)

    def test_zero_case_returns_uniform_direction(self):
        q = np.array([[1.0, 1.0]])
        val, u = max_regret_direction(np.array([0.5, 0.5]), q)
        assert val == pytest.approx(0.0, abs=1e-9)
        assert np.isclose(np.linalg.norm(u), 1.0)


class TestPointHappiness:
    def test_extreme_point_is_happy(self):
        others = np.array([[0.2, 0.8], [0.8, 0.2]])
        p = np.array([0.9, 0.9])
        assert point_happiness(p, others) > 0

    def test_dominated_point_is_unhappy(self):
        others = np.array([[1.0, 1.0]])
        p = np.array([0.5, 0.5])
        assert point_happiness(p, others) <= 0

    def test_convex_combination_is_unhappy(self):
        others = np.array([[1.0, 0.0], [0.0, 1.0]])
        p = np.array([0.5, 0.5])  # on the segment, never uniquely best
        assert point_happiness(p, others) <= 1e-9


class TestCoverLpBound:
    def test_identity_membership(self):
        # Each element covered by exactly one distinct set: OPT = m.
        assert min_size_cover_lp_bound(np.eye(4)) == pytest.approx(4.0)

    def test_single_universal_set(self):
        mat = np.ones((5, 1))
        assert min_size_cover_lp_bound(mat) == pytest.approx(1.0)

    def test_lower_bounds_greedy(self):
        rng = np.random.default_rng(1)
        mat = (rng.random((30, 12)) < 0.3).astype(float)
        mat[np.arange(30), rng.integers(0, 12, 30)] = 1.0  # feasibility
        lp = min_size_cover_lp_bound(mat)
        # Greedy cover size must be >= LP bound.
        covered = np.zeros(30, dtype=bool)
        picks = 0
        while not covered.all():
            gains = mat[~covered].sum(axis=0)
            j = int(np.argmax(gains))
            covered |= mat[:, j] > 0
            picks += 1
        assert picks >= lp - 1e-9

    def test_infeasible_raises(self):
        mat = np.zeros((2, 2))
        with pytest.raises(ValueError, match="no set"):
            min_size_cover_lp_bound(mat)

    def test_empty_universe(self):
        assert min_size_cover_lp_bound(np.zeros((0, 3))) == 0.0
