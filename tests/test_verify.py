"""Tests for FDRMS.verify() — the public self-check."""

import pytest

from repro.core.fdrms import FDRMS
from repro.data import Database


class TestVerify:
    def test_passes_after_construction(self, small_cloud):
        db = Database(small_cloud)
        algo = FDRMS(db, 1, 8, 0.05, m_max=64, seed=0)
        algo.verify(deep=True)

    def test_passes_after_churn(self, small_cloud, rng):
        db = Database(small_cloud)
        algo = FDRMS(db, 2, 8, 0.05, m_max=64, seed=0)
        for _ in range(60):
            if rng.random() < 0.5:
                algo.insert(rng.random(4))
            else:
                alive = db.ids()
                algo.delete(int(alive[rng.integers(alive.size)]))
        algo.verify(deep=True)

    def test_detects_corrupted_cover(self, small_cloud):
        db = Database(small_cloud)
        algo = FDRMS(db, 1, 8, 0.05, m_max=64, seed=0)
        # Sabotage: steal an element's assignment record.
        cover = algo._cover
        elem = next(iter(cover.universe))
        cover._phi[elem] = -1
        with pytest.raises(AssertionError):
            algo.verify()

    def test_detects_corrupted_membership(self, small_cloud):
        db = Database(small_cloud)
        algo = FDRMS(db, 1, 8, 0.05, m_max=64, seed=0)
        # Sabotage the top-k structures behind verify's back.
        topk = algo._topk
        victim = None
        for i in range(topk.pool_size):
            members = topk.members_of(i)
            if members:
                victim = (i, members[0])
                break
        assert victim is not None
        i, pid = victim
        topk._store.remove(i, pid)
        with pytest.raises(AssertionError):
            algo.verify(deep=True)

    def test_empty_database_ok(self):
        db = Database(d=3)
        algo = FDRMS(db, 1, 3, 0.05, m_max=16, seed=0)
        algo.verify(deep=True)
