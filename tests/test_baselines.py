"""Unit tests shared across all static baselines."""

import numpy as np
import pytest

from repro.baselines.cube import cube
from repro.baselines.dmm import dmm_greedy, dmm_rrms
from repro.baselines.eps_kernel import eps_kernel
from repro.baselines.geogreedy import geo_greedy
from repro.baselines.greedy import greedy
from repro.baselines.greedy_star import greedy_star
from repro.baselines.hitting_set import hitting_set
from repro.baselines.sphere import sphere
from repro.core.regret import max_k_regret_ratio_sampled
from repro.skyline import skyline_indices

ALL_1RMS = [
    ("greedy-lp", lambda pts, r, seed: greedy(pts, r)),
    ("greedy-sample", lambda pts, r, seed: greedy(pts, r, method="sample",
                                                  n_samples=3000, seed=seed)),
    ("geo", lambda pts, r, seed: geo_greedy(pts, r, method="sample",
                                            n_samples=3000, seed=seed)),
    ("dmm-rrms", lambda pts, r, seed: dmm_rrms(pts, r, seed=seed)),
    ("dmm-greedy", lambda pts, r, seed: dmm_greedy(pts, r, seed=seed)),
    ("eps-kernel", lambda pts, r, seed: eps_kernel(pts, r, seed=seed)),
    ("hs", lambda pts, r, seed: hitting_set(pts, r, seed=seed,
                                            n_samples=1500)),
    ("sphere", lambda pts, r, seed: sphere(pts, r, seed=seed,
                                           n_samples=3000)),
    ("cube", lambda pts, r, seed: cube(pts, r)),
]


@pytest.fixture(scope="module")
def sky():
    rng = np.random.default_rng(77)
    pts = rng.random((350, 3))
    return pts[skyline_indices(pts)]


@pytest.mark.parametrize("name,fn", ALL_1RMS, ids=[n for n, _ in ALL_1RMS])
class TestCommonContract:
    def test_size_and_validity(self, name, fn, sky):
        idx = fn(sky, 8, 3)
        assert len(idx) <= 8
        assert len(set(idx.tolist())) == len(idx)
        assert (idx >= 0).all() and (idx < sky.shape[0]).all()

    def test_r_at_least_n_returns_everything(self, name, fn, sky):
        small = sky[:5]
        idx = fn(small, 10, 3)
        if name == "geo":
            # GEOGREEDY prunes points that are never top-1 (non-extreme),
            # which preserves 1-RMS optimality; require it to keep all
            # hull extremes instead.
            from repro.geometry.hull import extreme_points
            assert set(extreme_points(small).tolist()) <= set(idx.tolist())
        else:
            assert sorted(idx.tolist()) == list(range(5))

    def test_reasonable_quality(self, name, fn, sky):
        idx = fn(sky, 10, 3)
        mrr = max_k_regret_ratio_sampled(sky, sky[idx], 1,
                                         n_samples=10_000, seed=9)
        # Even the weakest baseline (cube) stays below 0.6 here; the
        # real algorithms are far lower.
        limit = 0.6 if name == "cube" else 0.25
        assert mrr < limit, f"{name} mrr={mrr}"


class TestGreedySpecifics:
    def test_unknown_method(self, sky):
        with pytest.raises(ValueError):
            greedy(sky, 4, method="nope")

    def test_lp_and_sample_similar_quality(self, sky):
        lp = greedy(sky, 8)
        smp = greedy(sky, 8, method="sample", n_samples=8000, seed=0)
        m_lp = max_k_regret_ratio_sampled(sky, sky[lp], 1, n_samples=10_000, seed=1)
        m_s = max_k_regret_ratio_sampled(sky, sky[smp], 1, n_samples=10_000, seed=1)
        assert abs(m_lp - m_s) < 0.08

    def test_first_pick_is_x_extreme(self, sky):
        idx = greedy(sky, 4)
        assert idx[0] == int(np.argmax(sky[:, 0]))


class TestGreedyStar:
    def test_k2_quality_beats_tiny_subset(self, rng):
        pts = rng.random((300, 3))
        idx = greedy_star(pts, 8, k=2, n_samples=4000, seed=0)
        mrr = max_k_regret_ratio_sampled(pts, pts[idx], 2,
                                         n_samples=10_000, seed=1)
        base = max_k_regret_ratio_sampled(pts, pts[:1], 2,
                                          n_samples=10_000, seed=1)
        assert mrr < base

    def test_candidate_fraction(self, rng):
        pts = rng.random((100, 3))
        idx = greedy_star(pts, 6, k=2, candidate_fraction=0.3, seed=2)
        assert len(idx) <= 6

    def test_validation(self, rng):
        pts = rng.random((20, 3))
        with pytest.raises(ValueError):
            greedy_star(pts, 5, k=0)
        with pytest.raises(ValueError):
            greedy_star(pts, 5, k=2, candidate_fraction=0.0)

    def test_k1_close_to_greedy(self, sky):
        idx = greedy_star(sky, 8, k=1, n_samples=5000, seed=3)
        mrr = max_k_regret_ratio_sampled(sky, sky[idx], 1,
                                         n_samples=10_000, seed=4)
        assert mrr < 0.2


class TestDMM:
    def test_rrms_beats_greedy_variant_or_close(self, sky):
        a = dmm_rrms(sky, 8, seed=0)
        b = dmm_greedy(sky, 8, seed=0)
        ma = max_k_regret_ratio_sampled(sky, sky[a], 1, n_samples=10_000, seed=5)
        mb = max_k_regret_ratio_sampled(sky, sky[b], 1, n_samples=10_000, seed=5)
        assert ma <= mb + 0.05

    def test_finer_grid_no_worse(self, sky):
        coarse = dmm_rrms(sky, 8, per_axis=4, seed=0)
        fine = dmm_rrms(sky, 8, per_axis=12, seed=0)
        mc = max_k_regret_ratio_sampled(sky, sky[coarse], 1, n_samples=10_000, seed=6)
        mf = max_k_regret_ratio_sampled(sky, sky[fine], 1, n_samples=10_000, seed=6)
        assert mf <= mc + 0.05


class TestEpsKernelAndSphere:
    def test_kernel_selects_extremes(self, sky):
        from repro.geometry.hull import extreme_points
        idx = eps_kernel(sky, 10, seed=0)
        assert set(idx.tolist()) <= set(extreme_points(sky, seed=0).tolist())

    def test_sphere_pool_refined(self, sky):
        idx = sphere(sky, 6, seed=0, n_samples=2000)
        assert len(idx) <= 6


class TestCube:
    def test_d1(self):
        pts = np.array([[0.2], [0.9], [0.5]])
        assert cube(pts, 1).tolist() == [1]

    def test_includes_last_axis_max_per_cell(self):
        # Two clear cells in 2-d with t >= 2.
        pts = np.array([[0.1, 0.3], [0.2, 0.9], [0.8, 0.4], [0.9, 0.7]])
        idx = set(cube(pts, 4).tolist())
        assert 1 in idx and 3 in idx

    def test_bound_matches_theory_shape(self, rng):
        # CUBE's mrr should shrink as r grows (O(r^{-1/(d-1)})).
        pts = rng.random((2000, 3))
        sky = pts[skyline_indices(pts)]
        m_small = max_k_regret_ratio_sampled(
            pts, sky[cube(sky, 5)], 1, n_samples=5000, seed=0)
        m_large = max_k_regret_ratio_sampled(
            pts, sky[cube(sky, 60)], 1, n_samples=5000, seed=0)
        assert m_large <= m_small + 1e-9


class TestHS:
    def test_k2_uses_full_database(self, rng):
        pts = rng.random((150, 3))
        idx = hitting_set(pts, 8, k=2, n_samples=1000, seed=0)
        mrr = max_k_regret_ratio_sampled(pts, pts[idx], 2,
                                         n_samples=10_000, seed=1)
        assert mrr < 0.2

    def test_smaller_r_means_larger_eps(self, sky):
        small = hitting_set(sky, 4, n_samples=1000, seed=0)
        large = hitting_set(sky, 16, n_samples=1000, seed=0)
        ms = max_k_regret_ratio_sampled(sky, sky[small], 1, n_samples=10_000, seed=2)
        ml = max_k_regret_ratio_sampled(sky, sky[large], 1, n_samples=10_000, seed=2)
        assert ml <= ms + 1e-9
