"""Tests for the scenario subsystem: specs, compilation, traces."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.database import DELETE, INSERT, Database
from repro.scenarios import (
    Scenario,
    TraceFormatError,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    load_trace,
    register_scenario,
    save_trace,
    scenario_names,
)

ALL_SCENARIOS = scenario_names()

BUILTINS = {
    "paper", "sliding-window", "insert-burst", "delete-heavy",
    "clustered-drift", "skyline-churn", "mixed-batch",
}


class TestRegistry:
    def test_builtin_catalogue(self):
        assert BUILTINS <= set(ALL_SCENARIOS)

    def test_case_insensitive_lookup(self):
        assert get_scenario("PAPER") is get_scenario("paper")
        assert get_scenario(" Sliding-Window ").name == "sliding-window"

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(UnknownScenarioError) as exc:
            get_scenario("nope")
        assert "nope" in str(exc.value)
        assert "paper" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(Scenario(name="paper", summary="dup"))

    def test_listing_is_sorted(self):
        names = [s.name for s in list_scenarios()]
        assert names == sorted(names)

    def test_unknown_arrival_pattern_reports_patterns(self):
        from repro.scenarios import UnknownArrivalError
        scenario = Scenario(name="typo-demo", summary="bad arrival",
                            arrival="no-such-pattern")
        with pytest.raises(UnknownArrivalError) as exc:
            scenario.compile(seed=0, n=40)
        assert "arrival pattern" in str(exc.value)
        assert "no-such-pattern" in str(exc.value)


@pytest.mark.parametrize("name", sorted(BUILTINS))
class TestCompile:
    def test_fixed_seed_determinism(self, name):
        a = get_scenario(name).compile(seed=7, n=120)
        b = get_scenario(name).compile(seed=7, n=120)
        assert a.content_hash == b.content_hash
        assert len(a.workload.operations) == len(b.workload.operations)
        for op_a, op_b in zip(a.workload.operations, b.workload.operations):
            assert op_a.kind == op_b.kind
            assert op_a.tuple_id == op_b.tuple_id
            assert np.array_equal(op_a.point, op_b.point)
        assert np.array_equal(a.workload.initial, b.workload.initial)
        assert a.batch_plan == b.batch_plan

    def test_seed_changes_trace(self, name):
        a = get_scenario(name).compile(seed=7, n=120)
        b = get_scenario(name).compile(seed=8, n=120)
        assert a.content_hash != b.content_hash

    def test_snapshots_and_plan_well_formed(self, name):
        trace = get_scenario(name).compile(seed=3, n=120)
        marks = trace.workload.snapshots
        assert list(marks) == sorted(set(marks))
        assert all(1 <= m <= trace.n_operations for m in marks)
        assert marks[-1] == trace.n_operations
        if trace.batch_plan is not None:
            assert sum(trace.batch_plan) == trace.n_operations
            assert all(b >= 1 for b in trace.batch_plan)

    def test_points_valid(self, name):
        trace = get_scenario(name).compile(seed=3, n=120)
        assert np.isfinite(trace.workload.initial).all()
        assert (trace.workload.initial >= 0).all()
        for op in trace.workload.operations:
            assert np.isfinite(op.point).all()
            assert (op.point >= 0).all()

    def test_trace_replays_against_database(self, name):
        # The pre-assigned tuple ids must match the Database id counter,
        # every deletion must name an alive tuple, and every deletion
        # must carry the victim's actual value (the documented
        # Operation contract that baseline replays rely on).
        trace = get_scenario(name).compile(seed=5, n=100)
        db = Database(trace.workload.initial)
        for op in trace.workload.operations:
            if op.kind == INSERT:
                assert db.insert(op.point) == op.tuple_id
            else:
                assert op.tuple_id in db
                victim_value = db.delete(op.tuple_id)
                assert np.array_equal(op.point, victim_value)

    def test_scaling_to_tiny_sizes(self, name):
        trace = get_scenario(name).compile(seed=1, n=40)
        assert trace.n_operations >= 1


class TestScenarioShapes:
    def test_insert_burst_is_insert_only_and_batched(self):
        trace = get_scenario("insert-burst").compile(seed=2, n=150)
        kinds = {op.kind for op in trace.workload.operations}
        assert kinds == {INSERT}
        assert trace.batch_plan is not None
        assert max(trace.batch_plan) > 1

    def test_delete_heavy_shrinks_database(self):
        trace = get_scenario("delete-heavy").compile(seed=2, n=150)
        n_del = sum(op.kind == DELETE for op in trace.workload.operations)
        n_ins = trace.n_operations - n_del
        assert n_del > 2 * n_ins

    def test_sliding_window_keeps_size_constant(self):
        trace = get_scenario("sliding-window").compile(seed=2, n=150)
        db = Database(trace.workload.initial)
        size0 = len(db)
        for op in trace.workload.operations:
            db.apply(op)
        assert len(db) == size0

    def test_skyline_churn_points_near_corner(self):
        trace = get_scenario("skyline-churn").compile(seed=2, n=150)
        inserts = [op.point for op in trace.workload.operations
                   if op.kind == INSERT]
        assert inserts
        assert all((p >= 0.9).all() for p in inserts)
        # Every inserted dominator is eventually deleted (or still
        # pending at the tail), so churn is sustained, not cumulative.
        deleted = {op.tuple_id for op in trace.workload.operations
                   if op.kind == DELETE}
        insert_ids = [op.tuple_id for op in trace.workload.operations
                      if op.kind == INSERT]
        assert len(deleted) >= len(insert_ids) - 12

    def test_mixed_batch_plan_mixes_sizes(self):
        trace = get_scenario("mixed-batch").compile(seed=2, n=200)
        assert trace.batch_plan is not None
        sizes = set(trace.batch_plan)
        assert 1 in sizes
        assert any(s > 1 for s in sizes)

    def test_clustered_drift_moves_the_database(self):
        trace = get_scenario("clustered-drift").compile(seed=2, n=200)
        db = Database(trace.workload.initial)
        start_mean = db.points().mean(axis=0).copy()
        for op in trace.workload.operations:
            db.apply(op)
        end_mean = db.points().mean(axis=0)
        assert np.linalg.norm(end_mean - start_mean) > 0.02


class TestTraceIO:
    def test_round_trip_identical(self, tmp_path):
        trace = get_scenario("mixed-batch").compile(seed=9, n=100)
        path = tmp_path / "trace.jsonl"
        written_hash = save_trace(trace, path)
        loaded = load_trace(path)
        assert written_hash == trace.content_hash
        assert loaded.content_hash == trace.content_hash
        assert loaded.scenario == trace.scenario
        assert loaded.seed == trace.seed
        assert loaded.batch_plan == trace.batch_plan
        assert dict(loaded.params) == dict(trace.params)
        assert loaded.workload.snapshots == trace.workload.snapshots
        assert np.array_equal(loaded.workload.initial,
                              trace.workload.initial)
        assert len(loaded.workload.operations) == trace.n_operations
        for op_l, op_t in zip(loaded.workload.operations,
                              trace.workload.operations):
            assert op_l.kind == op_t.kind
            assert op_l.tuple_id == op_t.tuple_id
            assert np.array_equal(op_l.point, op_t.point)

    def test_round_trip_every_builtin(self, tmp_path):
        for name in sorted(BUILTINS):
            trace = get_scenario(name).compile(seed=4, n=60)
            path = tmp_path / f"{name}.jsonl"
            save_trace(trace, path)
            assert load_trace(path).content_hash == trace.content_hash

    def test_tampering_detected(self, tmp_path):
        trace = get_scenario("paper").compile(seed=9, n=80)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        op = json.loads(lines[-1])
        op[2][0] += 0.25
        lines[-1] = json.dumps(op, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="hash mismatch"):
            load_trace(path)
        # verify=False loads the tampered tape without complaint
        assert load_trace(path, verify=False).n_operations == \
            trace.n_operations

    def test_truncated_file_detected(self, tmp_path):
        trace = get_scenario("paper").compile(seed=9, n=80)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError, match="not a scenario trace"):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="malformed header"):
            load_trace(path)

    def test_truncated_last_line_rejected(self, tmp_path):
        """A torn final record (cut mid-line) is a typed error naming
        the line, never a bare json.JSONDecodeError."""
        trace = get_scenario("paper").compile(seed=9, n=80)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # cut into the final op record
        with pytest.raises(TraceFormatError, match="truncated or malformed"):
            load_trace(path)

    def test_binary_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_bytes(b"\x80\x81\xfe\xff binary garbage")
        with pytest.raises(TraceFormatError, match="malformed header"):
            load_trace(path)

    def test_binary_garbage_mid_file_rejected(self, tmp_path):
        trace = get_scenario("paper").compile(seed=9, n=80)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        with path.open("ab") as handle:
            handle.write(b"\x80\x81\xfe\xff trailing binary\n")
        # The buffered text reader decodes in chunks, so the
        # UnicodeDecodeError can surface at an earlier readline; either
        # way it maps to TraceFormatError, never a bare decode error.
        with pytest.raises(TraceFormatError):
            load_trace(path)


class TestGoldenHashes:
    """Pin cross-run/cross-platform trace determinism at the CI size.

    ``benchmarks/scenario_hashes.json`` is the golden file the CI
    scenario-matrix job pins with ``repro replay --expect-hashes``;
    regenerate it with::

        PYTHONPATH=src python benchmarks/bench_scenarios.py --n 400 \\
            --hashes-only --write-hashes benchmarks/scenario_hashes.json
    """

    GOLDEN = Path(__file__).resolve().parents[1] / "benchmarks" \
        / "scenario_hashes.json"

    def test_golden_file_matches_compiled_hashes(self):
        golden = json.loads(self.GOLDEN.read_text())
        assert set(golden) == {f"{name}:n=400:seed=0"
                               for name in ALL_SCENARIOS}
        for name in ALL_SCENARIOS:
            trace = get_scenario(name).compile(seed=0, n=400)
            assert golden[f"{name}:n=400:seed=0"] == trace.content_hash, \
                f"trace hash drift for {name}; regenerate the golden file"
