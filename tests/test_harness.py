"""Tests for adapters and the workload runner."""

import numpy as np
import pytest

from repro.bench import (
    BASELINE_FACTORIES,
    FDRMSAdapter,
    StaticAdapter,
    adapter_for,
    run_workload,
)
from repro.bench.experiments import format_series_table
from repro.baselines.sphere import sphere
from repro.core.regret import RegretEvaluator
from repro.data import make_paper_workload


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(10)
    pts = rng.random((240, 3))
    wl = make_paper_workload(pts, seed=11)
    ev = RegretEvaluator(3, n_samples=3000, seed=12)
    return pts, wl, ev


class TestFDRMSAdapter:
    def test_run(self, setup):
        _, wl, ev = setup
        ad = FDRMSAdapter(wl.initial, 1, 6, 0.05, m_max=64, seed=0)
        res = run_workload(ad, wl, ev, 1)
        assert res.algorithm == "FD-RMS"
        assert res.n_operations == wl.n_operations
        assert len(res.snapshots) == len(wl.snapshots)
        assert res.total_seconds > 0
        assert 0 <= res.mean_mrr <= 1

    def test_snapshot_db_sizes(self, setup):
        _, wl, ev = setup
        ad = FDRMSAdapter(wl.initial, 1, 6, 0.05, m_max=64, seed=0)
        res = run_workload(ad, wl, ev, 1)
        # After all insertions the DB peaks at 240, then shrinks to 120.
        assert res.snapshots[-1].db_size == 120


class TestStaticAdapter:
    def test_estimate_mode_counts_changes(self, setup):
        _, wl, ev = setup
        ad = StaticAdapter(wl.initial, sphere, name="Sphere",
                           kwargs={"r": 6, "seed": 0, "n_samples": 2000},
                           estimate=True)
        res = run_workload(ad, wl, ev, 1)
        assert res.total_seconds > 0
        assert all(s.result_size <= 6 for s in res.snapshots)

    def test_exact_mode_equal_results(self, setup):
        """Estimate and exact modes must give identical snapshot results
        (only the timing estimator differs)."""
        _, wl, ev = setup
        res = {}
        for mode in (True, False):
            ad = StaticAdapter(wl.initial, sphere, name="Sphere",
                               kwargs={"r": 6, "seed": 0, "n_samples": 2000},
                               estimate=mode)
            res[mode] = run_workload(ad, wl, ev, 1)
        mrrs_a = [s.mrr for s in res[True].snapshots]
        mrrs_b = [s.mrr for s in res[False].snapshots]
        assert mrrs_a == pytest.approx(mrrs_b, abs=1e-12)

    def test_skyline_only_pool(self, setup):
        pts, wl, ev = setup
        captured = {}

        def probe(pool, r):
            captured["n"] = pool.shape[0]
            return np.arange(min(r, pool.shape[0]))
        ad = StaticAdapter(wl.initial, probe, name="probe",
                           kwargs={"r": 4}, use_skyline=True)
        ad.result_points()
        from repro.skyline import skyline_indices
        assert captured["n"] == skyline_indices(wl.initial).size


class TestFactories:
    def test_registry_contents(self):
        for expected in ["FD-RMS", "Greedy", "Greedy*", "GeoGreedy",
                         "DMM-RRMS", "DMM-Greedy", "eps-Kernel", "HS",
                         "Sphere"]:
            assert expected in BASELINE_FACTORIES

    def test_adapter_for_unknown(self, setup):
        _, wl, _ = setup
        with pytest.raises(KeyError):
            adapter_for("nope", wl.initial, 1, 5)

    @pytest.mark.parametrize("name", ["FD-RMS", "Sphere", "DMM-Greedy",
                                      "eps-Kernel"])
    def test_each_factory_runs(self, setup, name):
        _, wl, ev = setup
        # One shared option bag: eps/m_max are routed to FD-RMS and
        # silently dropped for the static baselines.
        ad = adapter_for(name, wl.initial, 1, 6, seed=1, eps=0.05, m_max=64)
        res = run_workload(ad, wl, ev, 1)
        assert res.mean_mrr < 0.5


class TestFormatting:
    def test_format_series_table(self, setup):
        _, wl, ev = setup
        ad = FDRMSAdapter(wl.initial, 1, 6, 0.05, m_max=64, seed=0)
        res = run_workload(ad, wl, ev, 1)
        table = format_series_table({"FD-RMS": {10: res, 20: res}},
                                    x_label="r")
        assert "FD-RMS" in table
        assert "r=10" in table and "r=20" in table
