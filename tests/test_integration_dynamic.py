"""End-to-end integration: FD-RMS vs static baselines on live workloads.

These tests re-enact the paper's core claims at miniature scale:

* FD-RMS maintains result quality within a small gap of the best static
  algorithm across the whole dynamic run (§IV-B summary);
* FD-RMS per-operation cost is far below a static recompute (the paper's
  headline speedup, directionally).
"""

import time

import numpy as np
import pytest

from repro.bench import FDRMSAdapter, adapter_for, run_workload
from repro.core.regret import RegretEvaluator
from repro.data import make_paper_workload
from repro.data.synthetic import anticorrelated_points, independent_points


@pytest.fixture(scope="module")
def indep_run():
    pts = independent_points(500, 3, seed=21)
    wl = make_paper_workload(pts, seed=22)
    ev = RegretEvaluator(3, n_samples=5000, seed=23)
    return pts, wl, ev


class TestQualityParity:
    def test_fdrms_vs_sphere_quality(self, indep_run):
        _, wl, ev = indep_run
        fd = run_workload(
            FDRMSAdapter(wl.initial, 1, 8, 0.03, m_max=256, seed=1), wl, ev, 1)
        sp = run_workload(
            adapter_for("Sphere", wl.initial, 1, 8, seed=1), wl, ev, 1)
        # Paper: "differences are less than 0.01" at full scale; allow a
        # modest miniature-scale gap.
        assert fd.mean_mrr <= sp.mean_mrr + 0.05

    def test_fdrms_result_always_within_budget_slack(self, indep_run):
        _, wl, ev = indep_run
        fd = run_workload(
            FDRMSAdapter(wl.initial, 1, 8, 0.03, m_max=256, seed=1), wl, ev, 1)
        for snap in fd.snapshots:
            # |C| can transiently exceed r only while m = r floor binds.
            assert snap.result_size <= 12

    def test_k_greater_one(self):
        pts = independent_points(300, 3, seed=31)
        wl = make_paper_workload(pts, seed=32)
        ev = RegretEvaluator(3, n_samples=4000, seed=33)
        fd = run_workload(
            FDRMSAdapter(wl.initial, 3, 8, 0.05, m_max=128, seed=2),
            wl, ev, 3)
        hs = run_workload(
            adapter_for("HS", wl.initial, 3, 8, seed=2), wl, ev, 3)
        assert fd.mean_mrr <= hs.mean_mrr + 0.06
        # mrr_k decreases with k by definition; sanity check levels.
        assert fd.mean_mrr < 0.3


class TestSpeedShape:
    def test_fdrms_update_cheaper_than_static_recompute(self):
        """Directional version of the paper's speedup claim on a
        large-skyline (AntiCor) input where static baselines hurt."""
        pts = anticorrelated_points(800, 4, seed=41)
        wl = make_paper_workload(pts, seed=42)
        ad = FDRMSAdapter(wl.initial, 1, 10, 0.02, m_max=256, seed=3)
        ev = RegretEvaluator(4, n_samples=2000, seed=43)
        fd = run_workload(ad, wl, ev, 1)

        # One static Sphere recompute on the same data.
        from repro.baselines.sphere import sphere
        from repro.skyline import skyline_indices
        sky = pts[skyline_indices(pts)]
        t0 = time.perf_counter()
        sphere(sky, 10, seed=3)
        one_recompute = time.perf_counter() - t0

        per_update = fd.total_seconds / fd.n_operations
        assert per_update < one_recompute * 5, (
            f"FD-RMS per-update {per_update * 1e3:.2f}ms vs one static "
            f"recompute {one_recompute * 1e3:.2f}ms")


class TestPaperExample3:
    """Example 3 / Fig. 3: FD-RMS on the Fig. 1 database, k=1, r=3."""

    def test_initial_and_updates(self, paper_points):
        from repro.core.fdrms import FDRMS
        from repro.data import Database
        db = Database(paper_points)
        algo = FDRMS(db, 1, 3, 0.002, m_max=16, seed=0)
        q0 = set(algo.result())
        # Q0 must be a subset of the skyline {p1, p2, p3, p4, p7} and
        # must contain both extreme tuples p1 (y-best) and p4 (x-best).
        assert q0 <= {0, 1, 2, 3, 6}
        assert {0, 3} <= q0
        # Δ1 = insert p9 = (0.9, 0.6): a strong tuple that enters Q.
        pid9 = algo.insert(np.array([0.9, 0.6]))
        assert pid9 in algo.result()
        # Δ2 = delete p1: result must drop p1 and stay feasible.
        algo.delete(0)
        q2 = set(algo.result())
        assert 0 not in q2
        assert len(q2) <= 3
        # p1 gone: the best remaining y-tuple is p7 = (0.3, 0.9).
        ev = RegretEvaluator(2, n_samples=5000, seed=1)
        mrr = ev.evaluate(db.points(), algo.result_points())
        assert mrr < 0.25
