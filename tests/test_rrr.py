"""Tests for the rank-regret representative extension."""

import numpy as np
import pytest

from repro.baselines.rrr import rank_regret, rrr_greedy


class TestRankRegret:
    def test_full_set_rank_one(self, small_cloud):
        assert rank_regret(small_cloud, small_cloud, seed=0) == 1

    def test_rank_bounded_by_n(self, small_cloud):
        worst = rank_regret(small_cloud, small_cloud[:1], seed=0)
        assert 1 <= worst <= small_cloud.shape[0]

    def test_score_close_but_rank_far(self):
        """The RRR motivation: tiny score gaps can hide many ranks."""
        # 50 near-identical strong tuples and one slightly weaker one.
        strong = np.full((50, 2), 0.90) + \
            np.random.default_rng(0).random((50, 2)) * 1e-4
        weak = np.array([[0.899, 0.899]])
        p = np.vstack([strong, weak])
        q = weak
        from repro.core.regret import max_k_regret_ratio_sampled
        mrr = max_k_regret_ratio_sampled(p, q, 1, n_samples=2000, seed=1)
        rank = rank_regret(p, q, n_samples=2000, seed=1)
        assert mrr < 0.01          # score regret says "fine"
        assert rank == 51          # rank regret says "worst tuple"

    def test_monotone_in_q(self, small_cloud):
        rng = np.random.default_rng(2)
        utils = rng.random((1500, 4)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        small = rank_regret(small_cloud, small_cloud[:2], utilities=utils)
        large = rank_regret(small_cloud, small_cloud[:20], utilities=utils)
        assert large <= small


class TestRrrGreedy:
    def test_contract(self, small_cloud):
        idx = rrr_greedy(small_cloud, 10, k=3, seed=0)
        assert len(idx) <= 10
        assert len(set(idx.tolist())) == len(idx)

    def test_achieves_rank_k_when_feasible(self, small_cloud):
        rng = np.random.default_rng(3)
        utils = rng.random((1200, 4)) + 1e-9
        utils /= np.linalg.norm(utils, axis=1, keepdims=True)
        idx = rrr_greedy(small_cloud, 40, k=5, seed=3, n_samples=1200)
        # Certified on its own sample; verify on a fresh one with slack.
        rank = rank_regret(small_cloud, small_cloud[idx], utilities=utils)
        assert rank <= 12

    def test_larger_k_needs_fewer(self, small_cloud):
        tight = rrr_greedy(small_cloud, 100, k=1, seed=0, n_samples=1500)
        loose = rrr_greedy(small_cloud, 100, k=10, seed=0, n_samples=1500)
        assert len(loose) <= len(tight)

    def test_validation(self, small_cloud):
        with pytest.raises(ValueError):
            rrr_greedy(small_cloud, 0)
        with pytest.raises(ValueError):
            rrr_greedy(small_cloud, 5, k=0)

    def test_r_at_least_n(self):
        pts = np.random.default_rng(1).random((5, 2))
        assert rrr_greedy(pts, 10).tolist() == [0, 1, 2, 3, 4]
