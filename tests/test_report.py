"""Tests for the markdown report generator."""

import numpy as np
import pytest

from repro.bench import FDRMSAdapter, adapter_for, run_workload
from repro.bench.report import comparison_table, full_report, quality_trace
from repro.core.regret import RegretEvaluator
from repro.data import make_paper_workload


@pytest.fixture(scope="module")
def two_results():
    rng = np.random.default_rng(44)
    pts = rng.random((150, 3))
    wl = make_paper_workload(pts, seed=45)
    ev = RegretEvaluator(3, n_samples=1000, seed=46)
    fd = run_workload(FDRMSAdapter(wl.initial, 1, 5, 0.05, m_max=32, seed=0),
                      wl, ev, 1)
    sp = run_workload(adapter_for("Sphere", wl.initial, 1, 5, seed=0),
                      wl, ev, 1)
    return [fd, sp]


class TestComparisonTable:
    def test_contains_all_algorithms(self, two_results):
        table = comparison_table(two_results)
        assert "FD-RMS" in table and "Sphere" in table
        assert table.count("|") > 10

    def test_reference_speedup_is_one(self, two_results):
        table = comparison_table(two_results, reference="FD-RMS")
        ref_line = next(line for line in table.splitlines()
                        if "| FD-RMS |" in line)
        assert "| 1.0x |" in ref_line

    def test_unknown_reference(self, two_results):
        with pytest.raises(KeyError):
            comparison_table(two_results, reference="nope")

    def test_empty_results(self):
        with pytest.raises(ValueError):
            comparison_table([])

    def test_sorted_fastest_first(self, two_results):
        table = comparison_table(two_results)
        lines = [ln for ln in table.splitlines() if ln.startswith("| ")]
        values = [float(ln.split("|")[2]) for ln in lines[1:]]
        assert values == sorted(values)


class TestQualityTrace:
    def test_rows_match_snapshots(self, two_results):
        trace = quality_trace(two_results[0])
        data_rows = [ln for ln in trace.splitlines()
                     if ln.startswith("| ") and "after op" not in ln
                     and "---" not in ln]
        assert len(data_rows) == len(two_results[0].snapshots)


class TestFullReport:
    def test_structure(self, two_results):
        report = full_report(two_results, title="Test run",
                             context={"dataset": "Indep", "n": 150})
        assert report.startswith("# Test run")
        assert "## Setup" in report
        assert "**dataset**: Indep" in report
        assert "## Comparison" in report
        assert "## Quality traces" in report

    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.md"
        rc = main(["compare", "Indep", "--n", "150", "--r", "8",
                   "--m-max", "32", "--eval-samples", "500",
                   "--snapshots", "2", "--algorithms", "FD-RMS",
                   "--report", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# k-RMS comparison on Indep" in text
        assert "FD-RMS" in text
