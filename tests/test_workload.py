"""Tests for the dynamic workload protocol."""

import numpy as np
import pytest

from repro.data import Database, make_paper_workload
from repro.data.database import DELETE, INSERT


class TestMakePaperWorkload:
    def test_split_and_counts(self, rng):
        pts = rng.random((200, 3))
        wl = make_paper_workload(pts, seed=0)
        assert wl.initial.shape == (100, 3)
        inserts = [op for op in wl.operations if op.kind == INSERT]
        deletes = [op for op in wl.operations if op.kind == DELETE]
        assert len(inserts) == 100
        assert len(deletes) == 100

    def test_snapshots_cover_range(self, rng):
        wl = make_paper_workload(rng.random((200, 3)), seed=0)
        assert len(wl.snapshots) == 10
        assert wl.snapshots[-1] == wl.n_operations

    def test_ids_replay_correctly(self, rng):
        """Pre-assigned insert ids must match Database's id sequence and
        every deletion must target an alive tuple."""
        pts = rng.random((120, 3))
        wl = make_paper_workload(pts, seed=5)
        db = Database(wl.initial)
        for idx, op, _ in wl.replay():
            if op.kind == INSERT:
                pid = db.insert(op.point)
                assert pid == op.tuple_id
            else:
                assert op.tuple_id in db
                assert np.allclose(db.point(op.tuple_id), op.point)
                db.delete(op.tuple_id)
        # 50% of all tuples deleted.
        assert len(db) == 60

    def test_operations_cover_all_points(self, rng):
        pts = rng.random((50, 2))
        wl = make_paper_workload(pts, seed=1)
        seen = {tuple(np.round(row, 12)) for row in wl.initial}
        for op in wl.operations:
            if op.kind == INSERT:
                seen.add(tuple(np.round(op.point, 12)))
        assert len(seen) == 50

    def test_custom_fractions(self, rng):
        pts = rng.random((100, 2))
        wl = make_paper_workload(pts, seed=0, initial_fraction=0.2,
                                 delete_fraction=1.0, n_snapshots=4)
        assert wl.initial.shape[0] == 20
        deletes = [op for op in wl.operations if op.kind == DELETE]
        assert len(deletes) == 100
        assert len(wl.snapshots) == 4

    def test_validation(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(ValueError):
            make_paper_workload(pts, initial_fraction=0.0)
        with pytest.raises(ValueError):
            make_paper_workload(pts, delete_fraction=0.0)
        with pytest.raises(ValueError):
            make_paper_workload(pts, n_snapshots=0)

    def test_deterministic(self, rng):
        pts = rng.random((60, 2))
        a = make_paper_workload(pts, seed=3)
        b = make_paper_workload(pts, seed=3)
        assert np.array_equal(a.initial, b.initial)
        assert [(o.kind, o.tuple_id) for o in a.operations] == \
            [(o.kind, o.tuple_id) for o in b.operations]
