"""The streaming ``Session`` protocol: parity with FDRMS, recompute
wrappers, and registry dispatch."""

import numpy as np
import pytest

import repro
from repro.api.registry import CapabilityError
from repro.api.session import FDRMSSession, RecomputeSession, open_session
from repro.baselines.sphere import sphere
from repro.core.fdrms import FDRMS
from repro.data import Database, make_paper_workload


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(9).random((240, 3))


class TestFDRMSParity:
    def test_session_matches_direct_engine_on_dynamic_workload(self, points):
        """Replaying the same workload through a Session and through the
        raw FDRMS engine must give identical results at every step."""
        from repro.data.database import INSERT
        workload = make_paper_workload(points, seed=10, n_snapshots=4)
        session = open_session(workload.initial, r=8, algo="FD-RMS",
                               eps=0.05, m_max=64, seed=4)
        engine = FDRMS(Database(workload.initial), 1, 8, 0.05, m_max=64,
                       seed=4)
        assert session.result() == engine.result()
        for _, op, _ in workload.replay():
            session.apply(op)
            if op.kind == INSERT:
                engine.insert(op.point)
            else:
                engine.delete(op.tuple_id)
            assert session.result() == engine.result()

    def test_insert_delete_roundtrip(self, points):
        session = FDRMSSession(points, 8, 1, eps=0.05, m_max=64, seed=0)
        pid = session.insert([0.99, 0.99, 0.99])
        assert pid in session.result()
        session.delete(pid)
        assert pid not in session.result()
        # The healed result is a valid cover again (not necessarily the
        # identical set — the stable cover may settle elsewhere).
        assert all(i in session.db for i in session.result())
        session.engine.verify()
        stats = session.stats()
        assert stats["inserts"] == 1 and stats["deletes"] == 1
        assert stats["algo_seconds"] > 0

    def test_update_is_delete_plus_insert(self, points):
        session = FDRMSSession(points, 6, 1, eps=0.05, m_max=64, seed=0)
        victim = session.result()[0]
        new_id = session.update(victim, [0.5, 0.5, 0.5])
        assert new_id != victim
        assert victim not in session.result()

    def test_m_max_widened_when_too_small(self, points):
        session = FDRMSSession(points, 8, 1, eps=0.05, m_max=4, seed=0)
        assert session.engine.m_max == 16


class TestRecomputeSession:
    def test_lazy_recompute_only_on_skyline_change(self, points):
        session = open_session(points, r=6, algo="sphere", seed=0)
        session.result()
        assert session.recomputes == 1
        # A dominated point cannot change the skyline: no recompute.
        dominated = session.insert([1e-6, 1e-6, 1e-6])
        session.result()
        assert session.recomputes == 1
        session.delete(dominated)
        session.result()
        assert session.recomputes == 1
        # A dominating point must trigger one.
        session.insert([0.999, 0.999, 0.999])
        session.result()
        assert session.recomputes == 2

    def test_result_matches_direct_solver_on_current_skyline(self, points):
        session = open_session(points, r=6, algo="sphere", seed=7)
        session.insert([0.98, 0.97, 0.99])
        ids, pool = session.pool()
        expected = sorted(int(i) for i in ids[sphere(pool, 6, seed=7)])
        assert session.result() == expected

    def test_full_database_pool_for_k_algorithms(self, points):
        session = open_session(points, r=6, k=2, algo="hs", seed=0,
                               n_samples=500)
        ids, pool = session.pool()
        assert pool.shape[0] == len(session.db)
        assert "skyline_size" not in session.stats()

    def test_stats_counters(self, points):
        session = open_session(points, r=5, algo="cube")
        session.insert([0.9, 0.9, 0.9])
        stats = session.stats()
        assert stats["inserts"] == 1 and stats["deletes"] == 0
        session.result()
        assert session.stats()["recomputes"] >= 1

    def test_session_len_tracks_db(self, points):
        session = open_session(points, r=5, algo="cube")
        n0 = len(session)
        session.insert([0.5, 0.5, 0.5])
        assert len(session) == n0 + 1


class TestDispatch:
    def test_open_session_capability_validation(self, points):
        with pytest.raises(CapabilityError, match="k > 1"):
            open_session(points, r=5, k=2, algo="greedy")
        with pytest.raises(KeyError):
            open_session(points, r=5, algo="nope")

    def test_open_session_exported_from_repro(self, points):
        session = repro.open_session(points, r=5, algo="eps-kernel", seed=0)
        assert isinstance(session, RecomputeSession)
        assert isinstance(session, repro.Session)
        assert len(session.result()) <= 5
