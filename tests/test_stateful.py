"""Stateful property testing (hypothesis RuleBasedStateMachine).

Drives the full FD-RMS stack and the dynamic skyline with random
interleavings of operations while continuously checking the system
invariants against reference models. This is the strongest correctness
net in the suite: it explores operation orders unit tests never write
down.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.fdrms import FDRMS
from repro.data import Database
from repro.skyline import DynamicSkyline, skyline_mask

_COORD = st.floats(0.0, 1.0, allow_nan=False, width=32)
_POINT = st.tuples(_COORD, _COORD, _COORD)


class FDRMSMachine(RuleBasedStateMachine):
    """Random op streams against FD-RMS + dynamic skyline + reference."""

    def __init__(self):
        super().__init__()
        self.reference: dict[int, np.ndarray] = {}
        self.db: Database | None = None
        self.algo: FDRMS | None = None
        self.sky: DynamicSkyline | None = None
        self.checks = 0

    @initialize(points=st.lists(_POINT, min_size=4, max_size=12))
    def setup(self, points):
        pts = np.asarray(points, dtype=np.float64)
        self.db = Database(pts)
        self.algo = FDRMS(self.db, 1, 3, 0.08, m_max=24, seed=0)
        self.sky = DynamicSkyline(self.db)
        self.reference = {int(i): pts[i] for i in range(pts.shape[0])}

    @rule(point=_POINT)
    def insert(self, point):
        vec = np.asarray(point, dtype=np.float64)
        pid = self.algo.insert(vec)
        self.sky.insert(pid)
        self.reference[pid] = vec

    @rule(which=st.integers(0, 10_000))
    def delete(self, which):
        if len(self.reference) <= 1:
            return
        victims = sorted(self.reference)
        victim = victims[which % len(victims)]
        self.algo.delete(victim)
        self.sky.delete(victim)
        del self.reference[victim]

    @invariant()
    def db_matches_reference(self):
        if self.db is None:
            return
        assert len(self.db) == len(self.reference)
        assert self.db.ids().tolist() == sorted(self.reference)

    @invariant()
    def result_is_valid(self):
        if self.algo is None:
            return
        result = self.algo.result()
        assert len(result) == len(set(result))
        for pid in result:
            assert pid in self.reference

    @invariant()
    def cover_is_stable(self):
        if self.algo is None:
            return
        cover = self.algo._cover
        assert cover.is_cover()
        assert cover.is_stable()

    @invariant()
    def skyline_matches_recompute(self):
        if self.sky is None or not self.reference:
            return
        ids = sorted(self.reference)
        pts = np.asarray([self.reference[i] for i in ids])
        expect = {ids[row] for row in np.flatnonzero(skyline_mask(pts))}
        assert set(self.sky.ids) == expect

    @invariant()
    def every_active_utility_covered(self):
        """Theorem 2's feasibility core: the result hits every Φ_{k,ε}."""
        if self.algo is None or not self.reference:
            return
        q = set(self.algo.result())
        topk = self.algo._topk
        for u_idx in range(self.algo.m):
            members = set(topk.members_of(u_idx))
            assert not members or members & q


TestFDRMSStateful = FDRMSMachine.TestCase
TestFDRMSStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
