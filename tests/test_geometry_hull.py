"""Unit + property tests for extreme-point computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.hull import (
    directional_argmax,
    eps_kernel_directions,
    extreme_points,
)
from repro.geometry.sampling import sample_utilities


class TestDirectionalArgmax:
    def test_single_direction(self):
        pts = np.array([[0.1, 0.9], [0.9, 0.1]])
        assert directional_argmax(pts, np.array([1.0, 0.0]))[0] == 1
        assert directional_argmax(pts, np.array([0.0, 1.0]))[0] == 0

    def test_tie_breaks_to_lowest_index(self):
        pts = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert directional_argmax(pts, np.eye(2)).tolist() == [0, 0]

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            directional_argmax(np.ones((2, 3)), np.ones((1, 2)))


class TestExtremePoints:
    def test_square_corners(self):
        pts = np.array([
            [0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.5],
        ])
        ext = set(extreme_points(pts).tolist())
        assert 3 in ext                 # the dominating corner
        assert 4 not in ext             # interior point
        assert 0 not in ext             # dominated origin

    def test_single_point(self):
        assert extreme_points(np.array([[0.3, 0.7]])).tolist() == [0]

    def test_extremes_cover_all_directions(self, rng):
        pts = rng.random((120, 4))
        ext = set(extreme_points(pts).tolist())
        dirs = sample_utilities(500, 4, seed=7)
        winners = set(directional_argmax(pts, dirs).tolist())
        assert winners <= ext

    def test_high_d_fallback(self, rng):
        pts = rng.random((60, 9))       # d > 7 triggers the probe path
        ext = set(extreme_points(pts, seed=1).tolist())
        winners = set(directional_argmax(pts, np.eye(9)).tolist())
        assert winners <= ext


class TestEpsKernelDirections:
    def test_unit_rows(self):
        dirs = eps_kernel_directions(3, 0.1)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_finer_eps_gives_more_directions(self):
        coarse = eps_kernel_directions(3, 0.5)
        fine = eps_kernel_directions(3, 0.01)
        assert fine.shape[0] > coarse.shape[0]

    def test_rejects_bad_eps(self):
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                eps_kernel_directions(3, bad)


@settings(max_examples=20, deadline=None)
@given(pts=arrays(np.float64, (12, 3),
                  elements=st.floats(0.01, 1.0, allow_nan=False)))
def test_axis_winners_always_extreme(pts):
    ext = set(extreme_points(pts).tolist())
    for axis in range(3):
        assert int(np.argmax(pts[:, axis])) in ext
