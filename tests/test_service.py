"""Supervised session runtime: admission, failure policy, chaos parity.

The contract under test (docs/ROBUSTNESS.md): supervision and chaos may
change *when* work happens — wave boundaries, latency, retry counts,
staleness of shed reads — but never *what* the engine computes. Every
section below ends in a digest comparison against an unsupervised,
fault-free run of the same operation sequence.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.blocks as blocks
from repro.api.session import BatchValidationError, open_session
from repro.data.database import DELETE, INSERT, Operation
from repro.service import (
    ChaosConfig,
    ChaosInjector,
    RetryExhaustedError,
    RetryPolicy,
    ServiceOptions,
    SessionSupervisor,
    SupervisedDriver,
    SupervisorConfig,
    TransientServiceError,
    VirtualClock,
    parse_chaos,
    simulate_service,
)
from repro.scenarios.replay import batch_slices
from repro.service.policy import CircuitBreaker, CostModel


def _mixed_ops(seed, n_insert=40, delete_ids=range(0, 30, 2), d=4):
    rng = np.random.default_rng(seed)
    ops = [Operation(INSERT, rng.random(d), None) for _ in range(n_insert)]
    ops += [Operation(DELETE, None, int(i)) for i in delete_ids]
    return ops


def _session(seed=0, n=120, d=4, **kwargs):
    rng = np.random.default_rng(seed)
    return open_session(rng.random((n, d)), r=6, algo="fd-rms", seed=0,
                        m_max=32, **kwargs)


def _reference_digest(ops, **kwargs):
    session = _session(**kwargs)
    try:
        session.apply_batch(ops)
        return session.engine.state_digest()
    finally:
        session.close()


# ----------------------------------------------------------------------
# Policy primitives
# ----------------------------------------------------------------------

class TestPolicy:
    def test_retry_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01,
                             factor=3.0, max_delay_s=0.05)
        assert list(policy.delays()) == [0.01, 0.03, 0.05, 0.05]
        assert list(policy.delays()) == list(policy.delays())
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_breaker_opens_probes_and_recovers(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=2,
                                 reset_after_s=1.0)
        breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open and breaker.trips == 1
        assert not breaker.should_probe()  # cool-down not elapsed
        clock.advance(1.0)
        assert breaker.should_probe() and breaker.probes == 1
        assert not breaker.should_probe()  # one probe per interval
        breaker.record_success()
        assert not breaker.is_open and breaker.recoveries == 1

    def test_breaker_trip_opens_immediately(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.trip()
        assert breaker.is_open and breaker.trips == 1
        breaker.trip()  # idempotent while open
        assert breaker.trips == 1

    def test_cost_model_prior_then_ewma(self):
        model = CostModel(prior_s=0.5, alpha=0.5)
        assert model.estimate("+") == 0.5
        model.observe("+", 0.2)
        assert model.estimate("+") == 0.2  # first observation replaces
        model.observe("+", 0.4)
        assert model.estimate("+") == pytest.approx(0.3)
        assert model.estimate_ops(["+", "-"]) == pytest.approx(0.8)


# ----------------------------------------------------------------------
# Admission, coalescing, backpressure
# ----------------------------------------------------------------------

class TestAdmission:
    def test_coalesced_waves_match_direct_apply(self):
        ops = _mixed_ops(1)
        session = _session()
        try:
            sup = SessionSupervisor(
                session, SupervisorConfig(max_wave=7),
                clock=VirtualClock())
            for i in range(0, len(ops), 13):
                sup.submit(ops[i:i + 13])
            sup.drain()
            assert sup.report.applied_ops == len(ops)
            assert sup.report.waves >= len(ops) // 7
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()

    def test_result_digest_is_wave_boundary_invariant(self):
        # max_wave=1 forces singleton apply_batch calls, whose scoring
        # takes the vector path instead of the batch GEMM — the engine
        # state_digest may differ from the giant-batch reference in the
        # last ulp of member_scores/tau, but the observable state
        # (database content + result ids) must be bit-identical.
        ops = _mixed_ops(1)
        singleton = _session()
        reference = _session()
        try:
            sup = SessionSupervisor(
                singleton, SupervisorConfig(max_wave=1),
                clock=VirtualClock())
            sup.submit(ops)
            sup.drain()
            reference.apply_batch(ops)
            ref = SessionSupervisor(reference, clock=VirtualClock())
            assert sup.result_digest() == ref.result_digest()
            assert list(singleton.result()) == list(reference.result())
        finally:
            singleton.close()
            reference.close()

    def test_backpressure_drains_instead_of_dropping(self):
        ops = _mixed_ops(2, n_insert=60, delete_ids=())
        session = _session()
        try:
            sup = SessionSupervisor(
                session, SupervisorConfig(queue_limit=8, max_wave=4),
                clock=VirtualClock())
            for op in ops:
                sup.submit([op])
            sup.drain()
            assert sup.report.backpressure_events > 0
            assert sup.report.applied_ops == len(ops)
            assert sup.report.max_queue_depth <= 8
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()

    def test_malformed_request_rejected_atomically(self):
        session = _session()
        try:
            sup = SessionSupervisor(session, clock=VirtualClock())
            sup.submit(_mixed_ops(3, n_insert=10, delete_ids=()))
            sup.drain()
            before = sup.state_digest()
            # One good op riding with one bad op: the *whole* request
            # must be rejected and nothing queued.
            good = Operation(INSERT, np.full(4, 0.5), None)
            for bad in ({"kind": "mutate", "id": 0},
                        {"kind": "insert"},
                        {"kind": "insert", "point": [np.nan] * 4},
                        {"kind": "insert", "point": [0.1, 0.2]},
                        {"kind": "delete"},
                        {"kind": "delete", "id": -1},
                        object()):
                with pytest.raises(BatchValidationError):
                    sup.submit([good, bad])
            with pytest.raises(BatchValidationError):
                sup.submit([{"kind": "delete", "id": 3},
                            {"kind": "delete", "id": 3}])
            assert sup.pending_ops == 0
            assert sup.report.rejected_requests == 8
            assert sup.state_digest() == before
        finally:
            session.close()

    def test_session_apply_batch_rejects_before_any_mutation(self):
        # The same boundary guards direct Session.apply_batch calls —
        # including the recompute protocol — and the WAL never sees a
        # rejected wave.
        for algo in ("fd-rms", "greedy"):
            session = _session(n=60) if algo == "fd-rms" else open_session(
                np.random.default_rng(0).random((60, 4)), r=6, algo=algo)
            try:
                size = len(session.db)
                results = session.result()
                with pytest.raises(BatchValidationError) as err:
                    session.apply_batch([
                        Operation(INSERT, np.full(4, 0.9), None),
                        {"kind": "delete", "id": 1},
                        {"kind": "delete", "id": 1}])
                assert err.value.index == 2
                assert len(session.db) == size
                assert session.result() == results
            finally:
                closer = getattr(session, "close", None)
                if callable(closer):
                    closer()


# ----------------------------------------------------------------------
# Deadlines, time-boxed pumps, leftover resume
# ----------------------------------------------------------------------

class TestScheduling:
    def test_pump_time_box_resumes_leftover(self):
        clock = VirtualClock()
        session = _session()
        try:
            sup = SessionSupervisor(
                session,
                SupervisorConfig(max_wave=5, pump_budget_s=0.015),
                clock=clock,
                transport=lambda ops: (clock.advance(0.01),
                                       session.apply_batch(ops))[1])
            ops = _mixed_ops(4, n_insert=30, delete_ids=())
            sup.submit(ops)
            applied = sup.pump()
            # 0.01 virtual seconds per wave against a 0.015 budget:
            # exactly two waves fit, the rest resumes later.
            assert applied == 10
            assert sup.report.resumed_pumps == 1
            assert sup.pending_ops == len(ops) - applied
            sup.drain()
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()

    def test_wave_sizing_follows_cost_estimates(self):
        clock = VirtualClock()
        session = _session()
        try:
            sup = SessionSupervisor(
                session,
                SupervisorConfig(max_wave=64, wave_budget_s=0.03,
                                 cost_prior_s=0.01),
                clock=clock)
            sup.submit(_mixed_ops(5, n_insert=12, delete_ids=()))
            assert len(sup._next_wave()) == 3  # 3 * prior fits the box
        finally:
            session.close()


# ----------------------------------------------------------------------
# Retry, witness, breaker, inline fallback
# ----------------------------------------------------------------------

class TestFailurePolicy:
    def test_transient_fault_retries_on_schedule(self):
        clock = VirtualClock()
        session = _session()
        try:
            failures = [TransientServiceError("flaky")] * 2

            def transport(ops):
                if failures:
                    raise failures.pop()
                return session.apply_batch(ops)

            sup = SessionSupervisor(
                session,
                SupervisorConfig(retry=RetryPolicy(
                    max_attempts=4, base_delay_s=0.005, factor=2.0,
                    max_delay_s=0.05)),
                clock=clock, transport=transport)
            ops = _mixed_ops(6, n_insert=8, delete_ids=())
            sup.submit(ops)
            sup.drain()
            assert sup.report.retries == 2
            assert clock.sleeps == [0.005, 0.01]  # the exact schedule
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()

    def test_exhaustion_falls_back_inline_bit_exact(self):
        session = _session()
        try:
            def transport(ops):
                raise TransientServiceError("always down")

            sup = SessionSupervisor(session, clock=VirtualClock(),
                                    transport=transport)
            ops = _mixed_ops(7, n_insert=10, delete_ids=())
            sup.submit(ops)
            sup.drain()
            assert sup.report.retry_exhausted >= 1
            assert sup.report.inline_fallbacks >= 1
            assert sup.report.applied_ops == len(ops)
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()

    def test_partial_mutation_is_never_retried(self):
        session = _session()
        try:
            calls = []

            def transport(ops):
                calls.append(len(ops))
                session.apply_batch(ops)  # mutates...
                raise TransientServiceError("fault after apply")

            sup = SessionSupervisor(session, clock=VirtualClock(),
                                    transport=transport)
            sup.submit(_mixed_ops(8, n_insert=4, delete_ids=()))
            # The witness sees the mutation: no retry, the fault
            # propagates (recovery is the WAL's job, not a re-apply).
            with pytest.raises(TransientServiceError):
                sup.drain()
            assert len(calls) == 1
            assert sup.report.retries == 0
        finally:
            session.close()

    def test_permanent_faults_propagate_unretried(self):
        session = _session()
        try:
            def transport(ops):
                raise KeyError("not transient")

            sup = SessionSupervisor(session, clock=VirtualClock(),
                                    transport=transport)
            sup.submit(_mixed_ops(9, n_insert=3, delete_ids=()))
            with pytest.raises(KeyError):
                sup.drain()
            assert sup.report.retries == 0
        finally:
            session.close()

    def test_breaker_degrades_then_recovers_transport(self):
        clock = VirtualClock()
        session = _session()
        try:
            state = {"down": True, "attempts": 0}

            def transport(ops):
                state["attempts"] += 1
                if state["down"]:
                    raise TransientServiceError("transport down")
                return session.apply_batch(ops)

            sup = SessionSupervisor(
                session,
                SupervisorConfig(
                    max_wave=4,
                    retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                    breaker_threshold=2, breaker_reset_s=1.0),
                clock=clock, transport=transport)
            ops = _mixed_ops(10, n_insert=40, delete_ids=())
            sup.submit(ops)
            sup.pump(budget_s=1e9)  # drains: breaker opens along the way
            assert sup.breaker.trips >= 1
            attempts_while_open = state["attempts"]
            # While open, waves take the inline path: no new attempts.
            sup.submit(_mixed_ops(11, n_insert=8, delete_ids=()))
            sup.drain()
            assert state["attempts"] == attempts_while_open
            assert sup.report.inline_fallbacks > 0
            # Transport heals; after the cool-down a half-open probe
            # routes a wave through it again and the breaker closes.
            state["down"] = False
            clock.advance(1.0)
            sup.submit(_mixed_ops(12, n_insert=4, delete_ids=()))
            sup.drain()
            assert state["attempts"] > attempts_while_open
            assert sup.breaker.state == "closed"
            assert sup.breaker.recoveries == 1
        finally:
            session.close()


# ----------------------------------------------------------------------
# Reads: deadlines, staleness markers, cost order
# ----------------------------------------------------------------------

class TestReads:
    def test_first_read_materializes_then_deadline_sheds(self):
        session = _session()
        try:
            sup = SessionSupervisor(session)  # monotonic clock
            sup.submit(_mixed_ops(13, n_insert=10, delete_ids=()))
            fresh = sup.read(tag="a")
            assert not fresh.stale and fresh.lag_ops == 0
            assert sup.report.forced_materializations == 1
            pending = _mixed_ops(14, n_insert=10, delete_ids=())
            sup.submit(pending)
            shed = sup.read(deadline_s=0.0, tag="b")
            assert shed.stale and shed.tag == "b"
            assert shed.lag_ops == len(pending)
            assert shed.ids == fresh.ids  # last materialized result
            assert sup.report.stale_serves == 1
            # A later unconstrained read catches up and is fresh again.
            assert not sup.read(tag="c").stale
        finally:
            session.close()

    def test_first_timeout_marks_costlier_reads_stale(self):
        from repro.service.supervisor import ReadRequest
        session = _session()
        try:
            sup = SessionSupervisor(session)
            sup.submit(_mixed_ops(15, n_insert=6, delete_ids=()))
            sup.read()  # materialize once
            sup.submit(_mixed_ops(16, n_insert=6, delete_ids=()))
            views = sup.serve_reads([
                ReadRequest(tag="t0", deadline_s=0.0),
                ReadRequest(tag="t1", deadline_s=1e9)])
            assert [v.tag for v in views] == ["t0", "t1"]
            assert all(v.stale for v in views)
        finally:
            session.close()


# ----------------------------------------------------------------------
# Checkpoint watchdog
# ----------------------------------------------------------------------

class TestCheckpointWatchdog:
    def test_watchdog_checkpoints_every_n_ops(self, tmp_path):
        session = _session()
        try:
            sup = SessionSupervisor(
                session,
                SupervisorConfig(max_wave=8, checkpoint_every_ops=16),
                clock=VirtualClock(), checkpoint_dir=tmp_path / "ckpt")
            # 32 ops in waves of 8: checkpoints at ops 16 and 32, so the
            # last checkpoint captures the final state exactly.
            sup.submit(_mixed_ops(17, n_insert=32, delete_ids=()))
            sup.drain()
            assert sup.report.checkpoints == 2
            from repro.persist.recovery import restore_engine
            restored, info = restore_engine(tmp_path / "ckpt")
            assert info["state_digest"] == sup.state_digest()
            restored.close()
        finally:
            session.close()

    def test_failing_checkpoint_is_skipped_never_fatal(self, tmp_path):
        session = _session()
        try:
            def hook():
                raise OSError("disk full")

            sup = SessionSupervisor(
                session,
                SupervisorConfig(max_wave=8, checkpoint_every_ops=16,
                                 retry=RetryPolicy(max_attempts=2,
                                                   base_delay_s=0.0)),
                clock=VirtualClock(), checkpoint_dir=tmp_path / "ckpt",
                checkpoint_hook=hook)
            ops = _mixed_ops(18, n_insert=40, delete_ids=())
            sup.submit(ops)
            sup.drain()
            assert sup.report.checkpoints == 0
            assert sup.report.checkpoint_failures >= 2
            assert sup.report.applied_ops == len(ops)
            assert sup.state_digest() == _reference_digest(ops)
        finally:
            session.close()


# ----------------------------------------------------------------------
# Chaos: every injector, digest parity against a fault-free run
# ----------------------------------------------------------------------

CHAOS_CONFIGS = {
    "latency": ChaosConfig(seed=7, latency_rate=1.0, latency_s=0.001),
    "transient": ChaosConfig(seed=7, transient_rate=0.5,
                             transient_burst=2),
    "transient-exhausting": ChaosConfig(seed=7, transient_rate=0.4,
                                        transient_burst=9),
    "malformed": ChaosConfig(seed=7, malformed_rate=1.0),
    "checkpoint": ChaosConfig(seed=7, checkpoint_fail_rate=1.0),
    "everything": ChaosConfig(seed=7, latency_rate=0.3, latency_s=0.001,
                              transient_rate=0.2, malformed_rate=0.5,
                              checkpoint_fail_rate=0.5),
}

CHAOS_COUNTER = {
    "latency": "latency_spikes",
    "transient": "transient_faults",
    "transient-exhausting": "transient_faults",
    "malformed": "malformed_injected",
    "checkpoint": "checkpoint_faults",
    "everything": "latency_spikes",
}


class TestChaos:
    @pytest.mark.parametrize("name", sorted(CHAOS_CONFIGS))
    def test_injector_preserves_final_digest(self, name, tmp_path):
        ops = _mixed_ops(20)
        session = _session()
        try:
            driver = SupervisedDriver(session, ServiceOptions(
                config=SupervisorConfig(
                    max_wave=6, checkpoint_every_ops=16,
                    retry=RetryPolicy(max_attempts=3, base_delay_s=0.0)),
                chaos=CHAOS_CONFIGS[name], clock=VirtualClock(),
                checkpoint_dir=tmp_path / "ckpt", read_every=2))
            for i in range(0, len(ops), 9):
                driver.feed(ops[i:i + 9])
            driver.barrier()
            report = driver.service_report()
            assert report["chaos"][CHAOS_COUNTER[name]] > 0
            assert report["final_state_digest"] == _reference_digest(ops)
        finally:
            session.close()

    def test_pool_kill_degrades_trips_and_repools(self, monkeypatch):
        # Force tiny problems onto the pool so the killed workers are
        # actually dispatched to (test_parallel.py's sharding idiom).
        monkeypatch.setattr(blocks, "SCORE_BLOCK_ROWS", 7)
        monkeypatch.setattr(blocks, "SCORE_PAR_MIN_ELEMS", 1)
        monkeypatch.setattr(blocks, "REPAIR_BLOCK_COLS", 3)
        monkeypatch.setattr(blocks, "REPAIR_PAR_MIN_ELEMS", 1)
        ops = _mixed_ops(21)
        session = _session(parallel=2)
        try:
            backend = session.engine.backend
            driver = SupervisedDriver(session, ServiceOptions(
                config=SupervisorConfig(max_wave=6,
                                        breaker_reset_s=0.0),
                chaos=ChaosConfig(seed=3, pool_kill_waves=(2,))))
            for i in range(0, len(ops), 9):
                driver.feed(ops[i:i + 9])
            driver.barrier()
            report = driver.service_report()
            assert report["chaos"]["pool_kills"] == 1
            assert report["backend_degrades"] == 1
            assert report["breaker"]["trips"] >= 1
            # The half-open probe re-established the pool.
            assert report["repools"] >= 1
            assert backend.restores >= 1 and not backend.degraded
            assert report["final_state_digest"] == _reference_digest(ops)
        finally:
            session.close()

    def test_parse_chaos_specs(self):
        config = parse_chaos("latency:rate=0.5:dur=0.01,pool-kill:at=4+12",
                             seed=9)
        assert config.seed == 9
        assert config.latency_rate == 0.5 and config.latency_s == 0.01
        assert config.pool_kill_waves == (4, 12)
        assert parse_chaos("all").active == (
            "latency", "transient", "pool-kill", "malformed", "checkpoint")
        for bad in ("", "warp-core", "latency:speed=3"):
            with pytest.raises(ValueError):
                parse_chaos(bad)


# ----------------------------------------------------------------------
# Replay / simulation integration
# ----------------------------------------------------------------------

class TestReplayIntegration:
    def test_supervised_replay_digest_matches_plain(self):
        from repro.scenarios.replay import replay_trace
        from repro.scenarios.spec import get_scenario
        trace = get_scenario("chaos-churn").compile(seed=0, n=200)
        plain = replay_trace(trace, r=6, eval_samples=200,
                             options={"m_max": 32})
        supervised = replay_trace(
            trace, r=6, eval_samples=200, options={"m_max": 32},
            service=ServiceOptions(config=SupervisorConfig(max_wave=5),
                                   read_every=3))
        assert supervised.determinism_digest() == plain.determinism_digest()
        assert supervised.service["waves"] > 0
        assert "final_state_digest" in supervised.service

    def test_simulate_service_sheds_under_overload(self):
        from repro.scenarios.spec import get_scenario
        scenario = get_scenario("overload-flashcrowd")
        trace = scenario.compile(seed=0, n=400)
        hints = dict(scenario.service)
        read_every = hints.pop("read_every", 0)
        tenants = hints.pop("tenants", 4)
        # Tighten the scenario's budgets to zero so the flash-crowd
        # bursts overload *any* machine: a pump applies one wave and a
        # read with no budget must shed whenever the queue is non-empty.
        hints.update(pump_budget_s=0.0, read_deadline_s=0.0)
        summary = simulate_service(
            trace, r=6, options={"m_max": 32},
            service=ServiceOptions(config=SupervisorConfig(**hints),
                                   read_every=read_every,
                                   tenants=tenants))
        assert summary["ticks"] > 0
        assert summary["stale_tenant_serves"] > 0  # shed, never blocked
        report = summary["service"]
        assert report["stale_serves"] >= summary["stale_tenant_serves"]
        assert report["admission_latency_ms"]["p99"] >= 0.0
        # Shedding is presentation-only: the drained final state matches
        # an unsupervised replay of the same trace. The reference feeds
        # the trace's batch plan (not one giant batch): the engine's
        # state_digest hashes member_scores/tau bytes, and batch-GEMM vs
        # singleton scoring differ in the last ulp, so the bit-exact
        # digest is only comparable along the same batch boundaries.
        session = open_session(trace.workload.initial, 6, algo="fd-rms",
                               seed=0, m_max=32)
        try:
            ops = trace.workload.operations
            for s, e in batch_slices(trace):
                session.apply_batch(ops[s:e])
            assert report["final_state_digest"] == \
                session.engine.state_digest()
        finally:
            session.close()

    def test_simulate_service_reports_per_tenant_tallies(self):
        from repro.scenarios.spec import get_scenario
        trace = get_scenario("mixed-batch").compile(seed=0, n=200)
        summary = simulate_service(
            trace, r=6, options={"m_max": 32},
            service=ServiceOptions(
                config=SupervisorConfig(read_deadline_s=0.0),
                read_every=2, tenants=3))
        per_tenant = summary["service"]["per_tenant"]
        # One tally per simulated read tenant, keyed by tenant id, plus
        # the replay loop's own reads under "driver".
        assert set(per_tenant) == {"driver", "tenant0", "tenant1",
                                   "tenant2"}
        for key, tally in per_tenant.items():
            assert tally["reads"] == tally["fresh"] + tally["stale"]
            assert tally["reads"] > 0
        total_stale = sum(t["stale"] for k, t in per_tenant.items()
                          if k != "driver")
        assert total_stale == summary["stale_tenant_serves"]
        # Service counters live outside the determinism digest: the
        # supervised replay of the same trace stays digest-identical to
        # a plain one regardless of per-tenant read traffic.
        session = open_session(trace.workload.initial, 6, algo="fd-rms",
                               seed=0, m_max=32)
        try:
            ops = trace.workload.operations
            for s, e in batch_slices(trace):
                session.apply_batch(ops[s:e])
            assert summary["service"]["final_state_digest"] == \
                session.engine.state_digest()
        finally:
            session.close()


# ----------------------------------------------------------------------
# Chaos injector unit behavior
# ----------------------------------------------------------------------

class TestChaosInjector:
    def test_transient_burst_counts_and_raises_before_delegate(self):
        clock = VirtualClock()
        injector = ChaosInjector(
            ChaosConfig(seed=0, transient_rate=1.0, transient_burst=2),
            clock)
        applied = []

        class FakeSession:
            engine = None

            @staticmethod
            def apply_batch(ops):
                applied.append(list(ops))

        transport = injector.transport(FakeSession())
        for _ in range(2):
            with pytest.raises(TransientServiceError):
                transport([1])
        assert applied == []  # faults fire strictly before delegation
        assert injector.counters["transient_faults"] == 2

    def test_poison_requests_always_invalid(self):
        from repro.api.session import validate_batch
        injector = ChaosInjector(ChaosConfig(seed=5, malformed_rate=1.0),
                                 VirtualClock())
        for _ in range(20):
            poison = injector.poison_request()
            assert poison is not None
            with pytest.raises(BatchValidationError):
                validate_batch(poison, d=2)
