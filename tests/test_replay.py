"""Tests for the scenario replay driver and its metrics."""

import dataclasses

import pytest

from repro.core.regret import RegretEvaluator
from repro.scenarios import (
    batch_slices,
    get_scenario,
    replay_trace,
    run_scenario,
)
from repro.scenarios.replay import EVAL_SEED

OPTIONS = {"eps": 0.1, "m_max": 32}


@pytest.fixture(scope="module")
def paper_trace():
    return get_scenario("paper").compile(seed=0, n=120)


class TestBatchSlices:
    def test_singleton_plan_covers_every_op(self, paper_trace):
        slices = list(batch_slices(paper_trace))
        assert slices == [(i, i + 1)
                          for i in range(paper_trace.n_operations)]

    def test_plan_split_at_snapshot_marks(self):
        trace = get_scenario("mixed-batch").compile(seed=1, n=150)
        marks = set(trace.workload.snapshots)
        slices = list(batch_slices(trace))
        # Slices tile [0, n_ops) in order ...
        cursor = 0
        for start, stop in slices:
            assert start == cursor
            assert stop > start
            cursor = stop
        assert cursor == trace.n_operations
        # ... and every snapshot mark lands on a slice boundary.
        boundaries = {stop for _, stop in slices}
        assert marks <= boundaries

    def test_burst_plan_preserved_between_marks(self):
        trace = get_scenario("insert-burst").compile(seed=1, n=150)
        sizes = [stop - start for start, stop in batch_slices(trace)]
        assert max(sizes) > 1
        assert sum(sizes) == trace.n_operations


class TestReplayMetrics:
    def test_fdrms_replay_shape(self, paper_trace):
        res = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        workload = paper_trace.workload
        assert res.algorithm == "FD-RMS"
        assert res.trace_hash == paper_trace.content_hash
        assert res.n_operations == workload.n_operations
        assert len(res.snapshots) == len(workload.snapshots)
        assert [s.op_index for s in res.snapshots] == \
            list(workload.snapshots)
        assert res.op_latencies_ms.shape == (workload.n_operations,)
        assert (res.op_latencies_ms >= 0).all()
        assert res.counters["inserts"] + res.counters["deletes"] == \
            workload.n_operations
        for snap in res.snapshots:
            assert 0.0 <= snap.mrr <= 1.0
            assert snap.result_size == len(snap.result_ids)

    def test_latency_percentiles_ordered(self, paper_trace):
        res = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        lat = res.latency_percentiles()
        assert lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert lat["mean"] > 0

    def test_to_dict_is_json_ready(self, paper_trace):
        import json
        res = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        blob = json.dumps(res.to_dict())
        assert "sha256:" in blob

    def test_replay_determinism(self, paper_trace):
        a = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                         eval_samples=300, options=OPTIONS)
        b = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                         eval_samples=300, options=OPTIONS)
        assert a.determinism_digest() == b.determinism_digest()

    def test_digest_ignores_timings_but_not_results(self, paper_trace):
        res = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        twin = dataclasses.replace(
            res, update_seconds=res.update_seconds * 10,
            op_latencies_ms=res.op_latencies_ms * 10)
        assert twin.determinism_digest() == res.determinism_digest()
        mutated = dataclasses.replace(
            res, snapshots=res.snapshots[:-1])
        assert mutated.determinism_digest() != res.determinism_digest()

    def test_static_baseline_sees_same_database_evolution(self,
                                                          paper_trace):
        fdrms = replay_trace(paper_trace, "fd-rms", r=6, seed=0,
                             eval_samples=300, options=OPTIONS)
        greedy = replay_trace(paper_trace, "greedy", r=6, seed=0,
                              eval_samples=300, options=OPTIONS)
        assert greedy.trace_hash == fdrms.trace_hash
        assert [s.op_index for s in greedy.snapshots] == \
            [s.op_index for s in fdrms.snapshots]
        assert [s.db_size for s in greedy.snapshots] == \
            [s.db_size for s in fdrms.snapshots]

    def test_options_routed_per_algorithm(self, paper_trace):
        # eps/m_max are FD-RMS options; Greedy must silently drop them.
        res = replay_trace(paper_trace, "greedy", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        assert res.counters["recomputes"] >= 1


class TestBatchPlanSemantics:
    def test_batched_replay_matches_sequential(self):
        # Replaying with the trace's batch plan must yield exactly the
        # same results as replaying the same operations one at a time —
        # the scenario-level view of the apply_batch parity guarantee.
        trace = get_scenario("mixed-batch").compile(seed=3, n=120)
        sequential = dataclasses.replace(trace, batch_plan=None)
        evaluator = RegretEvaluator(trace.d, n_samples=300, seed=EVAL_SEED)
        a = replay_trace(trace, "fd-rms", r=6, seed=0,
                         evaluator=evaluator, options=OPTIONS)
        b = replay_trace(sequential, "fd-rms", r=6, seed=0,
                         evaluator=evaluator, options=OPTIONS)
        assert a.n_batches < b.n_batches
        assert [s.result_ids for s in a.snapshots] == \
            [s.result_ids for s in b.snapshots]
        assert [s.mrr for s in a.snapshots] == \
            [s.mrr for s in b.snapshots]

    def test_burst_replay_uses_batches(self):
        trace = get_scenario("insert-burst").compile(seed=3, n=150)
        res = replay_trace(trace, "fd-rms", r=6, seed=0,
                           eval_samples=300, options=OPTIONS)
        assert res.n_batches < res.n_operations


class TestRunScenario:
    def test_shared_trace_and_evaluator(self):
        trace, results = run_scenario("paper", ["fd-rms", "greedy"],
                                      r=6, seed=0, n=100,
                                      eval_samples=300, options=OPTIONS)
        assert len(results) == 2
        assert {res.trace_hash for res in results} == \
            {trace.content_hash}

    def test_accepts_scenario_instance(self):
        scenario = get_scenario("paper")
        trace, results = run_scenario(scenario, ["fd-rms"], r=6, seed=0,
                                      n=80, eval_samples=300,
                                      options=OPTIONS)
        assert results[0].scenario == "paper"

    def test_every_builtin_replays_with_fdrms(self):
        from repro.scenarios import scenario_names
        for name in scenario_names():
            trace, results = run_scenario(name, ["fd-rms"], r=12, seed=0,
                                          n=60, eval_samples=200,
                                          options=OPTIONS)
            assert results[0].n_operations == trace.n_operations
            assert results[0].snapshots
