"""Unit + property tests for ε-approximate top-k maintenance.

The central invariant (§II-A):

    members[i] = { p alive : <u_i, p> >= (1-ε)·ω_k(u_i, P) }

must hold after every insertion and deletion, with τ = 0 while |P| <= k.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import ADD, REMOVE, ApproxTopKIndex
from repro.data.database import Database
from repro.geometry.sampling import sample_utilities_with_basis


def check_invariant(index: ApproxTopKIndex, db: Database) -> None:
    ids, pts = db.snapshot()
    for i in range(index.pool_size):
        u = index.utility(i)
        members = set(index.members_of(i))
        if ids.size == 0:
            assert members == set()
            continue
        scores = pts @ u
        if ids.size <= index.k:
            tau = 0.0
        else:
            tau = (1.0 - index.eps) * float(
                np.partition(scores, ids.size - index.k)[ids.size - index.k])
        expect = {int(ids[j]) for j in np.flatnonzero(scores >= tau - 1e-12)}
        # Allow boundary tuples to differ only by floating error.
        sym = members ^ expect
        for pid in sym:
            score = float(db.point(pid) @ u)
            assert abs(score - tau) < 1e-9, (i, pid, score, tau)


def make_index(points, m=24, k=1, eps=0.05, seed=0):
    db = Database(points)
    utils = sample_utilities_with_basis(m, points.shape[1], seed=seed)
    return db, ApproxTopKIndex(db, utils, k, eps)


class TestBootstrap:
    def test_invariant_after_build(self, small_cloud):
        db, index = make_index(small_cloud)
        check_invariant(index, db)

    def test_inverted_index_consistency(self, small_cloud):
        db, index = make_index(small_cloud)
        for i in range(index.pool_size):
            for pid in index.members_of(i):
                assert i in index.sets_containing(pid)

    def test_small_db_all_members(self, rng):
        pts = rng.random((3, 3))
        db, index = make_index(pts, k=5)
        for i in range(index.pool_size):
            assert set(index.members_of(i)) == {0, 1, 2}

    def test_k_and_eps_validation(self, small_cloud):
        db = Database(small_cloud)
        utils = sample_utilities_with_basis(8, 4, seed=0)
        with pytest.raises(ValueError):
            ApproxTopKIndex(db, utils, 0, 0.05)
        with pytest.raises(ValueError):
            ApproxTopKIndex(db, utils, 1, 0.0)


class TestInsert:
    def test_dominating_insert_joins_every_set(self, small_cloud):
        db, index = make_index(small_cloud)
        pid, deltas = index.insert(np.array([1.0, 1.0, 1.0, 1.0]))
        added_everywhere = {d.u_index for d in deltas
                            if d.kind == ADD and d.tuple_id == pid}
        assert added_everywhere == set(range(index.pool_size))
        check_invariant(index, db)

    def test_weak_insert_changes_nothing(self, small_cloud):
        db, index = make_index(small_cloud)
        _, deltas = index.insert(np.array([0.001, 0.001, 0.001, 0.001]))
        assert deltas == []
        check_invariant(index, db)

    def test_insert_can_evict(self, rng):
        # Points near the threshold get evicted when a strong point
        # raises ω_k.
        pts = rng.random((100, 3)) * 0.5
        db, index = make_index(pts, eps=0.02)
        _, deltas = index.insert(np.array([1.0, 1.0, 1.0]))
        assert any(d.kind == REMOVE for d in deltas)
        check_invariant(index, db)


class TestDelete:
    def test_delete_topk_tuple_rebuilds(self, small_cloud, rng):
        db, index = make_index(small_cloud)
        u0 = index.utility(4)  # a sampled (non-basis) utility
        ids, _ = db.top_k(u0, 1)
        deltas = index.delete(int(ids[0]))
        assert any(d.kind == REMOVE and d.tuple_id == int(ids[0])
                   for d in deltas)
        check_invariant(index, db)

    def test_delete_margin_tuple_cheap(self, small_cloud):
        db, index = make_index(small_cloud, eps=0.2)
        # Find a member that is not in the exact top-1 of any utility.
        all_top = set()
        for i in range(index.pool_size):
            ids, _ = db.top_k(index.utility(i), 1)
            all_top.add(int(ids[0]))
        margin = None
        for pid in range(len(db)):
            if pid not in all_top and index.sets_containing(pid):
                margin = pid
                break
        if margin is None:
            pytest.skip("no margin member in this draw")
        index.delete(margin)
        check_invariant(index, db)

    def test_delete_to_empty(self, rng):
        pts = rng.random((3, 2))
        db, index = make_index(pts, m=6)
        for pid in range(3):
            index.delete(pid)
        assert len(db) == 0
        for i in range(index.pool_size):
            assert index.members_of(i) == []

    def test_deltas_describe_exact_membership_change(self, small_cloud):
        db, index = make_index(small_cloud)
        before = {i: set(index.members_of(i)) for i in range(index.pool_size)}
        ids, _ = db.top_k(index.utility(0), 1)
        deltas = index.delete(int(ids[0]))
        after = {i: set(index.members_of(i)) for i in range(index.pool_size)}
        replay = {i: set(before[i]) for i in before}
        for d in deltas:
            if d.kind == ADD:
                replay[d.u_index].add(d.tuple_id)
            else:
                replay[d.u_index].discard(d.tuple_id)
        assert replay == after


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300), k=st.integers(1, 3),
       n_ops=st.integers(1, 25))
def test_random_ops_preserve_invariant(seed, k, n_ops):
    rng = np.random.default_rng(seed)
    pts = rng.random((20, 3))
    db = Database(pts)
    utils = sample_utilities_with_basis(10, 3, seed=seed + 1)
    index = ApproxTopKIndex(db, utils, k, 0.08)
    for _ in range(n_ops):
        alive = db.ids()
        if alive.size <= k + 1 or rng.random() < 0.55:
            index.insert(rng.random(3))
        else:
            index.delete(int(alive[rng.integers(alive.size)]))
        check_invariant(index, db)
