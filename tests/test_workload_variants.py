"""Tests for the sliding-window and skewed workload generators."""

import pytest

from repro.core.fdrms import FDRMS
from repro.data import (
    Database,
    make_skewed_workload,
    make_sliding_window_workload,
)
from repro.data.database import DELETE, INSERT


class TestSlidingWindow:
    def test_window_size_invariant(self, rng):
        pts = rng.random((120, 3))
        wl = make_sliding_window_workload(pts, window=40)
        db = Database(wl.initial)
        for _, op, _ in wl.replay():
            if op.kind == INSERT:
                assert db.insert(op.point) == op.tuple_id
            else:
                db.delete(op.tuple_id)
            assert 40 <= len(db) <= 41   # insert then evict
        assert len(db) == 40

    def test_evicts_in_fifo_order(self, rng):
        pts = rng.random((10, 2))
        wl = make_sliding_window_workload(pts, window=4)
        deletes = [op.tuple_id for op in wl.operations if op.kind == DELETE]
        assert deletes == sorted(deletes)
        assert deletes[0] == 0

    def test_validation(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(ValueError):
            make_sliding_window_workload(pts, window=0)
        with pytest.raises(ValueError):
            make_sliding_window_workload(pts, window=10)

    def test_fdrms_survives_window(self, rng):
        pts = rng.random((150, 3))
        wl = make_sliding_window_workload(pts, window=50)
        db = Database(wl.initial)
        algo = FDRMS(db, 1, 4, 0.05, m_max=32, seed=0)
        for _, op, _ in wl.replay():
            if op.kind == INSERT:
                algo.insert(op.point)
            else:
                algo.delete(op.tuple_id)
        assert len(db) == 50
        assert algo._cover.is_cover() and algo._cover.is_stable()
        assert all(pid in db for pid in algo.result())


class TestSkewed:
    @pytest.mark.parametrize("frac", [0.1, 0.5, 0.9])
    def test_replayable(self, rng, frac):
        pts = rng.random((80, 3))
        wl = make_skewed_workload(pts, insert_fraction=frac,
                                  n_operations=200, seed=1)
        db = Database(wl.initial)
        for _, op, _ in wl.replay():
            if op.kind == INSERT:
                assert db.insert(op.point) == op.tuple_id
            else:
                assert op.tuple_id in db
                db.delete(op.tuple_id)
        assert len(db) >= 1

    def test_mix_matches_fraction(self, rng):
        pts = rng.random((100, 2))
        wl = make_skewed_workload(pts, insert_fraction=0.8,
                                  n_operations=600, seed=2)
        inserts = sum(1 for op in wl.operations if op.kind == INSERT)
        assert 0.72 < inserts / 600 < 0.88

    def test_ids_never_reused(self, rng):
        pts = rng.random((30, 2))
        wl = make_skewed_workload(pts, insert_fraction=0.6,
                                  n_operations=300, seed=3)
        insert_ids = [op.tuple_id for op in wl.operations
                      if op.kind == INSERT]
        assert len(insert_ids) == len(set(insert_ids))
        assert insert_ids == sorted(insert_ids)

    def test_validation(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(ValueError):
            make_skewed_workload(pts, insert_fraction=1.5, n_operations=10)
        with pytest.raises(ValueError):
            make_skewed_workload(pts, insert_fraction=0.5, n_operations=0)
        with pytest.raises(ValueError):
            make_skewed_workload(pts, insert_fraction=0.5, n_operations=10,
                                 initial_fraction=1.0)
