"""Crash-safety tests: checkpoints, WAL roll-forward, fault injection.

The contract under test (README "Persistence & crash recovery"):

* a restored engine is digest-for-digest identical to one that never
  went down, and stays identical under further updates;
* every injected fault — torn write, bit flip, missing file, version
  skew, partial WAL tail — is *detected* (typed error), never loaded
  silently;
* the session layer degrades any detected fault to a cold start and
  records it under ``stats()["recovery"]``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro.persist.atomic as atomic_mod
import repro.persist.wal as wal_mod
from repro.api import open_session
from repro.core.fdrms import FDRMS
from repro.data.database import Database
from repro.data.workload import make_skewed_workload
from repro.persist import (
    CheckpointError,
    WALError,
    WriteAheadLog,
    load_checkpoint,
    read_wal,
    restore_engine,
    save_checkpoint,
    verify_checkpoint,
)
from repro.persist import faults
from repro.persist.checkpoint import MANIFEST_NAME, STATE_NAME

R, K, EPS, M_MAX = 5, 1, 0.1, 64
N, D, OPS = 260, 4, 120
HALF = OPS // 2


@pytest.fixture
def workload(rng):
    pts = rng.random((N, D))
    return make_skewed_workload(pts, insert_fraction=0.5,
                                n_operations=OPS, seed=11)


def _engine(initial) -> FDRMS:
    return FDRMS(Database(initial), K, R, EPS, m_max=M_MAX, seed=0)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

class TestRoundTrip:
    def test_export_import_digest_parity(self, workload):
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        config, arrays = live.export_state()
        clone = FDRMS.from_state(config, arrays)
        assert clone.state_digest() == live.state_digest()
        assert clone.result() == live.result()

    def test_restored_engine_stays_in_lockstep(self, workload):
        """Exact parity: the same future ops take the same paths."""
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        config, arrays = live.export_state()
        clone = FDRMS.from_state(config, arrays)
        live.apply_batch(workload.operations[HALF:])
        clone.apply_batch(workload.operations[HALF:])
        assert clone.state_digest() == live.state_digest()
        assert clone.result() == live.result()

    def test_checkpoint_save_load(self, tmp_path, workload):
        live = _engine(workload.initial)
        live.apply_batch(workload.operations)
        manifest = save_checkpoint(live, tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / MANIFEST_NAME).exists()
        assert (tmp_path / "ckpt" / STATE_NAME).exists()
        restored, loaded = load_checkpoint(tmp_path / "ckpt")
        assert restored.state_digest() == live.state_digest()
        assert loaded["state_digest"] == manifest["state_digest"]
        assert verify_checkpoint(tmp_path / "ckpt") == loaded

    def test_checkpoint_overwrite_is_atomic_swap(self, tmp_path, workload):
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        save_checkpoint(live, tmp_path / "ckpt")
        live.apply_batch(workload.operations[HALF:])
        save_checkpoint(live, tmp_path / "ckpt")
        restored, _ = load_checkpoint(tmp_path / "ckpt")
        assert restored.state_digest() == live.state_digest()


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

class TestWAL:
    def test_roll_forward_from_checkpoint(self, tmp_path, workload):
        live = _engine(workload.initial)
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, fsync="never")
        wal.append(workload.operations[:HALF])
        live.apply_batch(workload.operations[:HALF])
        save_checkpoint(live, tmp_path / "ckpt", wal_position=wal.position)
        wal.append(workload.operations[HALF:])
        live.apply_batch(workload.operations[HALF:])
        wal.close()
        engine, info = restore_engine(tmp_path / "ckpt", wal=wal_dir)
        assert info["mode"] == "restored"
        assert info["replayed_ops"] == OPS - HALF
        assert info["wal_position"] == OPS
        assert engine.state_digest() == live.state_digest()

    def test_segment_rotation_and_resume(self, tmp_path, workload):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir, segment_ops=16, fsync="never") as wal:
            wal.append(workload.operations[:40])
        assert len(list(wal_dir.glob("wal-*.jsonl"))) == 3
        with WriteAheadLog(wal_dir, segment_ops=16, fsync="never") as wal:
            assert wal.position == 40
            wal.append(workload.operations[40:60])
        ops, head = read_wal(wal_dir)
        assert head == 60 and len(ops) == 60
        for got, want in zip(ops, workload.operations[:60]):
            assert got.kind == want.kind
            assert got.tuple_id == want.tuple_id

    def test_read_from_offset(self, tmp_path, workload):
        with WriteAheadLog(tmp_path / "wal", fsync="never") as wal:
            wal.append(workload.operations)
        tail, head = read_wal(tmp_path / "wal", start=OPS - 10)
        assert head == OPS and len(tail) == 10

    def test_checkpoint_ahead_of_wal_is_an_error(self, tmp_path, workload):
        with WriteAheadLog(tmp_path / "wal", fsync="never") as wal:
            wal.append(workload.operations[:10])
        with pytest.raises(WALError, match="claims position"):
            read_wal(tmp_path / "wal", start=50)

    def test_fresh_wipes_stale_segments(self, tmp_path, workload):
        with WriteAheadLog(tmp_path / "wal", fsync="never") as wal:
            wal.append(workload.operations[:20])
        with WriteAheadLog(tmp_path / "wal", fsync="never",
                           fresh=True) as wal:
            assert wal.position == 0
        assert read_wal(tmp_path / "wal") == ([], 0)


# ----------------------------------------------------------------------
# Process-kill simulation: only fsynced bytes survive
# ----------------------------------------------------------------------

class TestKillSim:
    """SIGKILL simulation for the ``fsync="batch"`` durability promise.

    The simulator tracks exactly what a crash preserves: file bytes up
    to the length at the last ``os.fsync`` of that file, and directory
    entries present at the last directory fsync. "Crashing" deletes
    every segment whose entry was never made durable and truncates the
    rest to their durable length — the on-disk state a kernel is
    allowed to leave after a power cut with no fsyncs beyond the ones
    the WAL actually issued.
    """

    @pytest.fixture
    def killsim(self, monkeypatch):
        durable_len: dict[str, int] = {}
        durable_entries: set[str] = set()
        real_fsync = os.fsync

        def tracked_fsync(fd: int) -> None:
            real_fsync(fd)
            path = os.path.realpath(f"/proc/self/fd/{fd}")
            durable_len[path] = os.fstat(fd).st_size

        def tracked_dir_fsync(directory) -> None:
            for path in Path(directory).iterdir():
                durable_entries.add(str(path))

        monkeypatch.setattr(os, "fsync", tracked_fsync)
        monkeypatch.setattr(wal_mod, "fsync_directory", tracked_dir_fsync)

        def crash(directory) -> None:
            for path in sorted(Path(directory).glob("wal-*.jsonl")):
                if str(path) not in durable_entries:
                    path.unlink()
                else:
                    with path.open("rb+") as handle:
                        handle.truncate(durable_len.get(str(path), 0))

        return crash

    def test_batch_close_makes_every_op_durable(self, tmp_path, workload,
                                                killsim):
        """append + close under "batch", then SIGKILL: nothing is lost.

        segment_ops=8 forces mid-stream rotations, so the test covers
        both durability paths — rotation (data fsync + directory-entry
        sync of finished segments) and close (the final open segment).
        """
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, segment_ops=8, fsync="batch")
        wal.append(workload.operations[:25])
        wal.append(workload.operations[25:40])
        wal.close()
        killsim(wal_dir)
        ops, head = read_wal(wal_dir)
        assert head == 40
        for got, want in zip(ops, workload.operations[:40]):
            assert got.kind == want.kind
            assert got.tuple_id == want.tuple_id

    def test_midrun_kill_loses_at_most_the_open_segment(self, tmp_path,
                                                        workload, killsim):
        """SIGKILL with no close(): rotated segments are already safe.

        20 ops at segment_ops=8 leave segments 0 and 1 rotated (16 ops,
        fully durable) and segment 2 open with 4 unsynced ops — the
        crash may only eat that open tail, and the survivor log must
        still read back clean (no torn chain, no typed error).
        """
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, segment_ops=8, fsync="batch")
        wal.append(workload.operations[:20])
        killsim(wal_dir)
        ops, head = read_wal(wal_dir)
        assert head == 16  # the open segment's entry was never durable
        for got, want in zip(ops, workload.operations[:16]):
            assert got.kind == want.kind
            assert got.tuple_id == want.tuple_id

    def test_restore_rolls_forward_over_the_kill(self, tmp_path, workload,
                                                 killsim):
        """End to end: checkpoint + WAL tail + SIGKILL + restore.

        The restored engine must be digest-identical to a live engine
        that applied exactly the durable prefix.
        """
        wal_dir = tmp_path / "wal"
        live = _engine(workload.initial)
        wal = WriteAheadLog(wal_dir, segment_ops=8, fsync="batch")
        wal.append(workload.operations[:HALF])
        live.apply_batch(workload.operations[:HALF])
        save_checkpoint(live, tmp_path / "ckpt", wal_position=wal.position)
        wal.append(workload.operations[HALF:])
        live.apply_batch(workload.operations[HALF:])
        wal.close()
        killsim(wal_dir)
        engine, info = restore_engine(tmp_path / "ckpt", wal=wal_dir)
        assert info["mode"] == "restored"
        assert info["replayed_ops"] == OPS - HALF
        assert engine.state_digest() == live.state_digest()


# ----------------------------------------------------------------------
# Fault-injection matrix: every fault detected, none loads silently
# ----------------------------------------------------------------------

def _state_size(directory):
    return (directory / STATE_NAME).stat().st_size


CHECKPOINT_FAULTS = {
    "torn_state_tail": lambda d: faults.truncate_last_bytes(
        d / STATE_NAME, 64),
    "torn_state_half": lambda d: faults.truncate_at(
        d / STATE_NAME, _state_size(d) // 2),
    "bit_flip_state": lambda d: faults.flip_bit(
        d / STATE_NAME, (2 * _state_size(d)) // 3),
    "missing_state": lambda d: faults.rename_away(d / STATE_NAME),
    "missing_manifest": lambda d: faults.rename_away(d / MANIFEST_NAME),
    "garbage_manifest": lambda d: (d / MANIFEST_NAME).write_text(
        "{not json", encoding="utf-8"),
    "future_version": lambda d: faults.bump_json_version(d / MANIFEST_NAME),
}

WAL_FAULTS = {
    "partial_tail": lambda segs: faults.truncate_last_bytes(segs[-1], 7),
    "garbage_tail": lambda segs: faults.append_garbage(segs[-1]),
    "future_version": lambda segs: faults.bump_json_version(segs[0]),
    "missing_segment": lambda segs: faults.rename_away(segs[0]),
}


class TestFaultMatrix:
    @pytest.fixture
    def checkpoint(self, tmp_path, workload):
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        save_checkpoint(live, tmp_path / "ckpt")
        return tmp_path / "ckpt"

    @pytest.mark.parametrize("fault", sorted(CHECKPOINT_FAULTS))
    def test_checkpoint_fault_detected(self, checkpoint, fault):
        CHECKPOINT_FAULTS[fault](checkpoint)
        with pytest.raises(CheckpointError):
            load_checkpoint(checkpoint)
        with pytest.raises(CheckpointError):
            verify_checkpoint(checkpoint)

    def test_intact_content_behind_trailing_garbage_still_loads(
            self, checkpoint, workload):
        """Garbage *after* the zip payload leaves every array intact
        (zipfile locates the directory by backward scan); verification
        is content-based, so this loads — with the right digest."""
        faults.append_garbage(checkpoint / STATE_NAME)
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        engine, _ = load_checkpoint(checkpoint)
        assert engine.state_digest() == live.state_digest()

    @pytest.mark.parametrize("fault", sorted(WAL_FAULTS))
    def test_wal_fault_detected(self, tmp_path, workload, fault):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir, segment_ops=32,
                           fsync="never") as wal:
            wal.append(workload.operations)
        WAL_FAULTS[fault](sorted(wal_dir.glob("wal-*.jsonl")))
        with pytest.raises(WALError):
            read_wal(wal_dir)

    def test_wal_fault_fails_the_restore(self, tmp_path, workload):
        live = _engine(workload.initial)
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, fsync="never")
        wal.append(workload.operations[:HALF])
        live.apply_batch(workload.operations[:HALF])
        save_checkpoint(live, tmp_path / "ckpt",
                        wal_position=wal.position)
        wal.append(workload.operations[HALF:])
        wal.close()
        seg = sorted(wal_dir.glob("wal-*.jsonl"))[-1]
        faults.truncate_last_bytes(seg, 5)
        with pytest.raises(WALError):
            restore_engine(tmp_path / "ckpt", wal=wal_dir)

    def test_restoration_after_uncorrupting(self, checkpoint, workload):
        moved = faults.rename_away(checkpoint / MANIFEST_NAME)
        with pytest.raises(CheckpointError):
            load_checkpoint(checkpoint)
        moved.rename(checkpoint / MANIFEST_NAME)
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        engine, _ = load_checkpoint(checkpoint)
        assert engine.state_digest() == live.state_digest()


# ----------------------------------------------------------------------
# Crash-point matrix: kill the save at each write stage
# ----------------------------------------------------------------------

class TestCrashPoints:
    def _prepared(self, tmp_path, workload):
        live = _engine(workload.initial)
        live.apply_batch(workload.operations[:HALF])
        ckpt = tmp_path / "ckpt"
        save_checkpoint(live, ckpt)  # checkpoint A, known good
        digest_a = live.state_digest()
        live.apply_batch(workload.operations[HALF:])
        return live, ckpt, digest_a, live.state_digest()

    def _assert_never_silently_corrupt(self, ckpt, digest_a, digest_b):
        try:
            engine, _ = load_checkpoint(ckpt)
        except CheckpointError:
            return  # clean detection -> callers degrade to cold start
        assert engine.state_digest() in {digest_a, digest_b}

    @pytest.mark.parametrize("crash_at_replace", [0, 1])
    def test_crash_between_replaces(self, tmp_path, workload, monkeypatch,
                                    crash_at_replace):
        """Crash before the state replace (0) or between the state and
        manifest replaces (1): either the old checkpoint still loads or
        the mismatch is detected — never a silently mixed load."""
        live, ckpt, digest_a, digest_b = self._prepared(tmp_path, workload)
        real = atomic_mod.replace_atomic
        calls = {"n": 0}

        def crashing(tmp, path):
            if calls["n"] == crash_at_replace:
                raise OSError("injected crash")
            calls["n"] += 1
            real(tmp, path)

        monkeypatch.setattr(atomic_mod, "replace_atomic", crashing)
        with pytest.raises(OSError, match="injected crash"):
            save_checkpoint(live, ckpt)
        monkeypatch.setattr(atomic_mod, "replace_atomic", real)
        if crash_at_replace == 0:
            # Nothing was replaced: checkpoint A must load unharmed.
            engine, _ = load_checkpoint(ckpt)
            assert engine.state_digest() == digest_a
        else:
            self._assert_never_silently_corrupt(ckpt, digest_a, digest_b)

    def test_crash_mid_tmp_write(self, tmp_path, workload, monkeypatch):
        """A crash while streaming the tmp state file leaves checkpoint
        A fully intact (the tmp file is never the live name)."""
        import numpy as np
        live, ckpt, digest_a, _ = self._prepared(tmp_path, workload)

        def torn_savez(handle, **arrays):
            handle.write(b"partial bytes")
            raise OSError("injected crash mid-write")

        monkeypatch.setattr(np, "savez", torn_savez)
        with pytest.raises(OSError, match="injected crash"):
            save_checkpoint(live, ckpt)
        monkeypatch.undo()
        engine, _ = load_checkpoint(ckpt)
        assert engine.state_digest() == digest_a


# ----------------------------------------------------------------------
# Session-level recovery: restore, roll forward, degrade to cold start
# ----------------------------------------------------------------------

class TestSessionRecovery:
    def _run_and_checkpoint(self, tmp_path, workload):
        session = open_session(workload.initial, R, K, eps=EPS,
                               m_max=M_MAX, seed=0, wal=tmp_path / "wal")
        session.apply_batch(list(workload.operations[:HALF]))
        session.checkpoint(tmp_path / "ckpt")
        session.apply_batch(list(workload.operations[HALF:]))
        session.close()
        return session

    def _reopen(self, tmp_path, workload, **overrides):
        kwargs = dict(eps=EPS, m_max=M_MAX, seed=0,
                      snapshot=tmp_path / "ckpt", wal=tmp_path / "wal")
        kwargs.update(overrides)
        r = kwargs.pop("r", R)
        return open_session(workload.initial, r, K, **kwargs)

    def test_restore_matches_continuous_session(self, tmp_path, workload):
        continuous = self._run_and_checkpoint(tmp_path, workload)
        restored = self._reopen(tmp_path, workload)
        stats = restored.stats()
        assert stats["recovery"]["mode"] == "restored"
        assert stats["recovery"]["cold_starts"] == 0
        assert stats["recovery"]["replayed_ops"] == OPS - HALF
        assert restored.result() == continuous.result()
        assert (restored.engine.state_digest()
                == continuous.engine.state_digest())
        restored.close()

    def test_corrupt_checkpoint_degrades_to_cold_start(self, tmp_path,
                                                       workload):
        self._run_and_checkpoint(tmp_path, workload)
        faults.flip_bit(tmp_path / "ckpt" / STATE_NAME, 4096)
        session = self._reopen(tmp_path, workload)
        rec = session.stats()["recovery"]
        assert rec["mode"] == "cold_start"
        assert rec["cold_starts"] == 1
        assert "CheckpointError" in rec["error"]
        # The cold-started session is fully usable.
        session.apply_batch(list(workload.operations[:10]))
        assert len(session.result()) >= 1
        session.close()

    def test_config_mismatch_degrades_to_cold_start(self, tmp_path,
                                                    workload):
        self._run_and_checkpoint(tmp_path, workload)
        session = self._reopen(tmp_path, workload, r=R + 2)
        rec = session.stats()["recovery"]
        assert rec["mode"] == "cold_start"
        assert "does not match" in rec["error"]
        session.close()

    def test_cold_start_discards_stale_wal(self, tmp_path, workload):
        self._run_and_checkpoint(tmp_path, workload)
        faults.rename_away(tmp_path / "ckpt" / MANIFEST_NAME)
        session = self._reopen(tmp_path, workload)
        assert session.stats()["recovery"]["mode"] == "cold_start"
        # The fresh engine never saw the logged ops; the log restarts.
        assert read_wal(tmp_path / "wal") == ([], 0)
        session.close()

    def test_plain_session_has_no_recovery_key(self, workload):
        session = open_session(workload.initial, R, K, eps=EPS,
                               m_max=M_MAX, seed=0)
        # Unconditional new stats keys would shift the pinned replay
        # determinism digests; "recovery" appears only when requested.
        assert "recovery" not in session.stats()
