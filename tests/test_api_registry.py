"""Registry round-trip: registration, resolution, capability metadata."""

import numpy as np
import pytest

from repro.api.registry import (
    Capabilities,
    CapabilityError,
    UnknownAlgorithmError,
    algorithm_names,
    get_algorithm,
    list_algorithms,
    register,
)

EXPECTED = {
    "arm", "cube", "dmm-greedy", "dmm-rrms", "dp2d", "eps-kernel",
    "fd-rms", "geogreedy", "greedy", "greedy*", "hs", "rrr", "sphere",
}


class TestRoundTrip:
    def test_every_builtin_registered_exactly_once(self):
        names = [spec.name for spec in list_algorithms()]
        assert len(names) == len(set(names))
        assert set(names) == EXPECTED

    def test_display_names_and_aliases_resolve_to_same_spec(self):
        for spec in list_algorithms():
            assert get_algorithm(spec.name) is spec
            assert get_algorithm(spec.display_name) is spec
            assert get_algorithm(spec.name.upper()) is spec
            for alias in spec.aliases:
                assert get_algorithm(alias) is spec

    def test_paper_spellings(self):
        assert get_algorithm("FD-RMS").name == "fd-rms"
        assert get_algorithm("Greedy*").name == "greedy*"
        assert get_algorithm("eps-Kernel").name == "eps-kernel"
        assert get_algorithm("hitting_set").name == "hs"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            get_algorithm("nope")
        message = str(excinfo.value)
        assert "greedy" in message and "fd-rms" in message
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("greedy")(lambda points, r: [])

    def test_idempotent_reregistration_of_same_func(self):
        spec = get_algorithm("greedy")
        register("greedy")(spec.func)  # re-import scenario: no error
        assert get_algorithm("greedy") is spec


class TestCapabilities:
    def test_fdrms_is_the_only_dynamic_algorithm(self):
        dynamic = list_algorithms(dynamic=True)
        assert [spec.name for spec in dynamic] == ["fd-rms"]
        assert dynamic[0].session_factory is not None

    def test_k_support_matches_signatures(self):
        for spec in list_algorithms():
            if spec.capabilities.supports_k:
                assert "k" in spec.accepts, spec.name

    def test_capability_filters(self):
        assert {s.name for s in list_algorithms(d2_only=True)} == {"dp2d"}
        assert "hs" in {s.name for s in list_algorithms(min_size=True)}
        with pytest.raises(TypeError):
            list_algorithms(not_a_flag=True)

    def test_check_request_enforces_k(self):
        with pytest.raises(CapabilityError, match="k > 1"):
            get_algorithm("greedy").check_request(k=2)
        get_algorithm("hs").check_request(k=3)  # must not raise

    def test_check_request_enforces_d2(self):
        with pytest.raises(CapabilityError, match="d = 2"):
            get_algorithm("dp2d").check_request(k=1, d=4)
        get_algorithm("dp2d").check_request(k=1, d=2)

    def test_flags_table(self):
        flags = get_algorithm("fd-rms").capabilities.flags()
        assert flags["dynamic"] and flags["supports_k"]
        assert set(flags) == set(Capabilities().flags())


class TestOptionRouting:
    def test_build_kwargs_drops_foreign_options(self):
        spec = get_algorithm("sphere")
        kwargs = spec.build_kwargs(r=5, k=1, seed=3,
                                   options={"eps": 0.1, "n_samples": 700})
        assert kwargs["r"] == 5 and kwargs["seed"] == 3
        assert kwargs["n_samples"] == 700
        assert "eps" not in kwargs and "k" not in kwargs

    def test_run_returns_row_indices(self):
        pts = np.random.default_rng(0).random((60, 3))
        idx = get_algorithm("cube").run(pts, r=4)
        idx = np.asarray(idx)
        assert idx.ndim == 1 and idx.size <= 4
        assert np.all((0 <= idx) & (idx < 60))

    def test_algorithm_names_display(self):
        display = algorithm_names(display=True)
        assert "FD-RMS" in display and "eps-Kernel" in display
        assert algorithm_names(dynamic=False, supports_k=True) == \
            ["arm", "greedy*", "hs", "rrr"]
