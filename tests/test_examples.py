"""Smoke tests: the shipped examples must run end to end.

Examples are the first thing a new user executes; this guards them
against API drift. The two fastest examples run as-is; the heavier ones
are executed with reduced input where they support it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    res = subprocess.run([sys.executable, str(EXAMPLES / script), *args],
                         capture_output=True, text=True, timeout=timeout)
    assert res.returncode == 0, res.stderr[-2000:]
    return res.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "initial result" in out
    assert "after 500 random updates" in out


def test_compare_algorithms_small():
    out = _run("compare_algorithms.py", "400")
    assert "FD-RMS" in out
    assert "quality gap" in out


@pytest.mark.slow
def test_hotel_recommendation():
    out = _run("hotel_recommendation.py", timeout=420)
    assert "worst of 10 visitors" in out


@pytest.mark.slow
def test_iot_sensor_fleet():
    out = _run("iot_sensor_fleet.py", timeout=420)
    assert "dashboard set" in out


@pytest.mark.slow
def test_minsize_tradeoff():
    out = _run("minsize_tradeoff.py", timeout=420)
    assert "tuples needed" in out
