"""Unit tests for the Stopwatch helper."""

import time

from repro.utils import Stopwatch


def test_measure_accumulates():
    sw = Stopwatch()
    with sw.measure("a"):
        time.sleep(0.002)
    with sw.measure("a"):
        time.sleep(0.002)
    assert sw.total("a") >= 0.004
    assert sw.count("a") == 2
    assert sw.mean("a") >= 0.002


def test_manual_add_and_segments():
    sw = Stopwatch()
    sw.add("x", 1.5)
    sw.add("x", 0.5)
    sw.add("y", 2.0)
    assert sw.total("x") == 2.0
    assert sw.segments() == {"x": 2.0, "y": 2.0}


def test_unknown_segment_is_zero():
    sw = Stopwatch()
    assert sw.total("nope") == 0.0
    assert sw.count("nope") == 0
    assert sw.mean("nope") == 0.0


def test_reset():
    sw = Stopwatch()
    sw.add("x", 1.0)
    sw.reset()
    assert sw.segments() == {}


def test_measure_records_on_exception():
    sw = Stopwatch()
    try:
        with sw.measure("boom"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert sw.count("boom") == 1
