"""Unit + property tests for the stable dynamic set cover (Algorithm 1).

Invariants after *every* operation (Definition 2 + cover feasibility):

1. every universe element is assigned to a containing set;
2. every solution set sits at the level matching its cover size;
3. no candidate set has ``|S ∩ A_j| >= 2^{j+1}`` at any level ``j``.

Theorem 1 gives the quality bound |C| <= (2 + 2·log2 m)·OPT, which we
check against the exact LP lower bound on random systems.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.set_cover import StableSetCover, _level_of
from repro.geometry.lp import min_size_cover_lp_bound


def assert_valid(cover: StableSetCover) -> None:
    assert cover.is_cover(), "solution is not a cover"
    assert cover.is_stable(), "solution violates Definition 2"


def random_system(rng, n_elems, n_sets, density=0.3):
    membership = {s: set() for s in range(n_sets)}
    for e in range(n_elems):
        owners = np.flatnonzero(rng.random(n_sets) < density)
        if owners.size == 0:
            owners = [int(rng.integers(n_sets))]
        for s in owners:
            membership[int(s)].add(e)
    return {s: m for s, m in membership.items() if m}


class TestLevelOf:
    def test_powers(self):
        assert _level_of(1) == 0
        assert _level_of(2) == 1
        assert _level_of(3) == 1
        assert _level_of(4) == 2
        assert _level_of(1023) == 9
        assert _level_of(1024) == 10


class TestGreedyBuild:
    def test_tiny_exact(self):
        cover = StableSetCover()
        cover.build({100: {1, 2, 3}, 101: {3, 4}, 102: {4}})
        assert_valid(cover)
        assert cover.solution_size() == 2
        assert 100 in cover.solution()

    def test_greedy_is_stable(self, rng):
        cover = StableSetCover()
        cover.build(random_system(rng, 60, 20))
        assert_valid(cover)

    def test_empty_sets_are_harmless(self):
        # Elements are derived from memberships, so an "uncoverable
        # element" cannot be expressed through build(); empty sets are
        # simply never selected.
        cover = StableSetCover()
        cover.build({100: set(), 101: {1}})
        assert cover.solution() == frozenset({101})
        assert_valid(cover)

    def test_theorem1_bound_vs_lp(self, rng):
        for trial in range(5):
            membership = random_system(rng, 50, 25, density=0.2)
            cover = StableSetCover()
            cover.build(membership)
            assert_valid(cover)
            sets = sorted(membership)
            mat = np.zeros((50, len(sets)))
            for col, sid in enumerate(sets):
                for e in membership[sid]:
                    mat[e, col] = 1.0
            opt_lb = min_size_cover_lp_bound(mat)
            m = 50
            assert cover.solution_size() <= (2 + 2 * np.log2(m)) * max(1.0, opt_lb)


class TestDynamicOps:
    def _base(self, rng):
        cover = StableSetCover()
        cover.build(random_system(rng, 40, 15))
        return cover

    def test_add_element(self, rng):
        cover = self._base(rng)
        cover.add_element(1000, [0, 1])
        assert_valid(cover)
        assert cover.assignment(1000) in (0, 1)

    def test_add_element_twice_raises(self, rng):
        cover = self._base(rng)
        cover.add_element(1000, [0])
        with pytest.raises(KeyError):
            cover.add_element(1000, [0])

    def test_add_element_without_sets_raises(self, rng):
        cover = self._base(rng)
        with pytest.raises(ValueError):
            cover.add_element(1000, [])

    def test_remove_element(self, rng):
        cover = self._base(rng)
        cover.remove_element(5)
        assert 5 not in cover.universe
        assert_valid(cover)

    def test_remove_unknown_element_raises(self, rng):
        cover = self._base(rng)
        with pytest.raises(KeyError):
            cover.remove_element(999)

    def test_add_to_set(self, rng):
        cover = self._base(rng)
        sid = next(iter(cover.solution()))
        cover.add_to_set(3, sid)
        assert sid in cover.sets_of(3)
        assert_valid(cover)

    def test_remove_from_set_reassigns(self, rng):
        cover = self._base(rng)
        # Pick an element with >= 2 containing sets and remove its
        # assigned one.
        for elem in list(cover.universe):
            if len(cover.sets_of(elem)) >= 2:
                owner = cover.assignment(elem)
                cover.remove_from_set(elem, owner)
                assert cover.assignment(elem) != owner
                assert_valid(cover)
                return
        pytest.skip("no multi-set element in this draw")

    def test_remove_last_containing_set_raises(self):
        cover = StableSetCover()
        cover.build({100: {1}})
        with pytest.raises(ValueError):
            cover.remove_from_set(1, 100)

    def test_remove_set_reassigns_all(self, rng):
        cover = self._base(rng)
        # Remove a solution set whose elements all have alternatives.
        for sid in list(cover.solution()):
            if all(len(cover.sets_of(e)) >= 2 for e in cover.cover_of(sid)):
                cover.remove_set(sid)
                assert sid not in cover.solution()
                assert_valid(cover)
                return
        pytest.skip("no removable set in this draw")

    def test_remove_absent_set_is_noop(self, rng):
        cover = self._base(rng)
        size = cover.solution_size()
        cover.remove_set(999)
        assert cover.solution_size() == size

    def test_non_int_ids_rejected(self):
        cover = StableSetCover()
        with pytest.raises(TypeError):
            cover.build({"a": {1}})
        cover.build({0: {1}})
        with pytest.raises(TypeError):
            cover.add_to_set(1, "b")
        with pytest.raises(ValueError):
            cover.add_element(-3, [0])

    def test_bulk_add_rejects_invalid_elements(self):
        # Both the scalar (<=8) and vectorized (>8) group paths must
        # reject negative / unknown element ids instead of silently
        # corrupting the adjacency state.
        cover = StableSetCover()
        cover.build({0: set(range(12))})
        with pytest.raises(KeyError):
            cover.add_elems_to_set([1, -1], 5)
        with pytest.raises(KeyError):
            cover.add_elems_to_set(list(range(1, 10)) + [-1], 5)
        with pytest.raises(KeyError):
            cover.add_elems_to_set(list(range(1, 10)) + [10_000], 5)
        assert cover.members(5) == frozenset()
        assert cover.is_cover() and cover.is_stable()


class TestStabilizeBehaviour:
    def test_level0_merge(self):
        """Many singleton covers sharing one big set must collapse."""
        # Elements 0..7; sets 100+i with {i}, plus one set 200
        # containing all. Build greedy picks the big set first, so start
        # from a degenerate assignment instead: force singletons via
        # dynamic ops.
        cover = StableSetCover()
        cover.build({100 + i: {i} for i in range(8)})
        assert cover.solution_size() == 8
        # Now a big set arrives: elements join it one by one. Stability
        # forces absorption once |B ∩ A_0| >= 2.
        for i in range(8):
            cover.add_to_set(i, 200)
        assert_valid(cover)
        assert cover.solution_size() < 8
        assert 200 in cover.solution()

    def test_stabilize_counts_steps(self):
        cover = StableSetCover()
        cover.build({100 + i: {i} for i in range(8)})
        before = cover.stabilize_steps
        for i in range(8):
            cover.add_to_set(i, 200)
        assert cover.stabilize_steps > before

    def test_batch_defers_stabilize_to_exit(self):
        cover = StableSetCover()
        cover.build({100 + i: {i} for i in range(8)})
        with cover.batch():
            for i in range(8):
                cover.add_to_set(i, 200)
            # Violations are queued but not yet drained inside a batch.
            assert cover.solution_size() == 8
        assert_valid(cover)
        assert 200 in cover.solution()
        assert cover.solution_size() < 8


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 400), n_ops=st.integers(1, 30))
def test_random_operation_stream_property(seed, n_ops):
    """Arbitrary op streams keep the solution a stable cover."""
    rng = np.random.default_rng(seed)
    cover = StableSetCover()
    cover.build(random_system(rng, 25, 10, density=0.35))
    next_elem = 1000
    for _ in range(n_ops):
        roll = rng.random()
        elems = list(cover.universe)
        if roll < 0.3:
            sids = [int(rng.integers(10)) for _ in range(1 + int(rng.integers(3)))]
            cover.add_element(next_elem, sids)
            next_elem += 1
        elif roll < 0.5 and len(elems) > 1:
            cover.remove_element(elems[int(rng.integers(len(elems)))])
        elif roll < 0.75 and elems:
            e = elems[int(rng.integers(len(elems)))]
            cover.add_to_set(e, int(rng.integers(10)))
        elif elems:
            e = elems[int(rng.integers(len(elems)))]
            owners = list(cover.sets_of(e))
            if len(owners) >= 2:
                cover.remove_from_set(e, owners[int(rng.integers(len(owners)))])
        assert cover.is_cover()
        assert cover.is_stable()
