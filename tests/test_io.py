"""Tests for persistence (save/load of databases, workloads, results)."""

import numpy as np
import pytest

from repro.bench import FDRMSAdapter, run_workload
from repro.core.regret import RegretEvaluator
from repro.data import Database, make_paper_workload
from repro.data.database import INSERT
from repro.io import (
    FileFormatError,
    load_database,
    load_run_result,
    load_workload,
    save_database,
    save_run_result,
    save_workload,
)


class TestDatabaseRoundtrip:
    def test_simple(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == len(db)
        assert loaded.ids().tolist() == db.ids().tolist()
        assert np.allclose(loaded.points(), db.points())

    def test_preserves_id_gaps(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        db.delete(5)
        db.delete(17)
        new_id = db.insert(np.full(4, 0.5))
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert 5 not in loaded and 17 not in loaded
        assert new_id in loaded
        # A fresh insert continues the id sequence, not reusing gaps.
        assert loaded.insert(np.full(4, 0.1)) == db.capacity

    def test_kind_mismatch(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        path = tmp_path / "db.npz"
        save_database(db, path)
        with pytest.raises(ValueError, match="expected 'workload'"):
            load_workload(path)


class TestWorkloadRoundtrip:
    def test_replays_identically(self, tmp_path, rng):
        pts = rng.random((80, 3))
        wl = make_paper_workload(pts, seed=3)
        path = tmp_path / "wl.npz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert np.allclose(loaded.initial, wl.initial)
        assert loaded.snapshots == wl.snapshots
        assert len(loaded.operations) == len(wl.operations)
        for a, b in zip(loaded.operations, wl.operations):
            assert a.kind == b.kind
            assert a.tuple_id == b.tuple_id
            assert np.allclose(a.point, b.point)

    def test_loaded_workload_runs(self, tmp_path, rng):
        pts = rng.random((60, 3))
        wl = make_paper_workload(pts, seed=4)
        path = tmp_path / "wl.npz"
        save_workload(wl, path)
        loaded = load_workload(path)
        db = Database(loaded.initial)
        for _, op, _ in loaded.replay():
            if op.kind == INSERT:
                assert db.insert(op.point) == op.tuple_id
            else:
                db.delete(op.tuple_id)


class TestRunResultRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        pts = rng.random((120, 3))
        wl = make_paper_workload(pts, seed=5)
        adapter = FDRMSAdapter(wl.initial, 1, 5, 0.05, m_max=32, seed=0)
        ev = RegretEvaluator(3, n_samples=1000, seed=6)
        res = run_workload(adapter, wl, ev, 1)
        path = tmp_path / "run.json"
        save_run_result(res, path)
        loaded = load_run_result(path)
        assert loaded.algorithm == res.algorithm
        assert loaded.total_seconds == res.total_seconds
        assert loaded.mean_mrr == pytest.approx(res.mean_mrr)
        assert [s.op_index for s in loaded.snapshots] == \
            [s.op_index for s in res.snapshots]

    def test_wrong_kind(self, tmp_path):
        (tmp_path / "x.json").write_text('{"kind": "other"}')
        with pytest.raises(ValueError):
            load_run_result(tmp_path / "x.json")


class TestErrorPaths:
    """Corrupt, truncated, or future-version files raise FileFormatError
    (a ValueError), never a bare zipfile/json/unicode exception."""

    @pytest.fixture
    def db_file(self, tmp_path, small_cloud):
        path = tmp_path / "db.npz"
        save_database(Database(small_cloud), path)
        return path

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path / "absent.npz")

    def test_truncated_npz(self, db_file):
        data = db_file.read_bytes()
        db_file.write_bytes(data[: len(data) // 2])
        with pytest.raises(FileFormatError):
            load_database(db_file)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00\xff\x80 not a zip archive")
        with pytest.raises(FileFormatError):
            load_database(path)
        with pytest.raises(FileFormatError):
            load_workload(path)

    def test_future_version_rejected(self, tmp_path, small_cloud, rng):
        db_path = tmp_path / "db.npz"
        db = Database(small_cloud)
        np.savez_compressed(db_path, version=999, kind="database",
                            ids=db.ids(), points=db.points(),
                            d=db.d, capacity=db.capacity)
        with pytest.raises(FileFormatError, match="newer"):
            load_database(db_path)
        wl = make_paper_workload(rng.random((50, 3)), seed=2)
        wl_path = tmp_path / "wl.npz"
        save_workload(wl, wl_path)
        data = dict(np.load(wl_path))
        data["version"] = np.int64(999)
        np.savez_compressed(wl_path, **data)
        with pytest.raises(FileFormatError, match="newer"):
            load_workload(wl_path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "db.npz"
        np.savez_compressed(path, version=1, kind="database")
        with pytest.raises(FileFormatError, match="missing field"):
            load_database(path)

    def test_run_result_garbage(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_bytes(b"\x80\x81 not json")
        with pytest.raises(FileFormatError):
            load_run_result(path)
