"""Tests for persistence (save/load of databases, workloads, results)."""

import numpy as np
import pytest

from repro.bench import FDRMSAdapter, run_workload
from repro.core.regret import RegretEvaluator
from repro.data import Database, make_paper_workload
from repro.data.database import INSERT
from repro.io import (
    load_database,
    load_run_result,
    load_workload,
    save_database,
    save_run_result,
    save_workload,
)


class TestDatabaseRoundtrip:
    def test_simple(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == len(db)
        assert loaded.ids().tolist() == db.ids().tolist()
        assert np.allclose(loaded.points(), db.points())

    def test_preserves_id_gaps(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        db.delete(5)
        db.delete(17)
        new_id = db.insert(np.full(4, 0.5))
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert 5 not in loaded and 17 not in loaded
        assert new_id in loaded
        # A fresh insert continues the id sequence, not reusing gaps.
        assert loaded.insert(np.full(4, 0.1)) == db.capacity

    def test_kind_mismatch(self, tmp_path, small_cloud):
        db = Database(small_cloud)
        path = tmp_path / "db.npz"
        save_database(db, path)
        with pytest.raises(ValueError, match="expected 'workload'"):
            load_workload(path)


class TestWorkloadRoundtrip:
    def test_replays_identically(self, tmp_path, rng):
        pts = rng.random((80, 3))
        wl = make_paper_workload(pts, seed=3)
        path = tmp_path / "wl.npz"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert np.allclose(loaded.initial, wl.initial)
        assert loaded.snapshots == wl.snapshots
        assert len(loaded.operations) == len(wl.operations)
        for a, b in zip(loaded.operations, wl.operations):
            assert a.kind == b.kind
            assert a.tuple_id == b.tuple_id
            assert np.allclose(a.point, b.point)

    def test_loaded_workload_runs(self, tmp_path, rng):
        pts = rng.random((60, 3))
        wl = make_paper_workload(pts, seed=4)
        path = tmp_path / "wl.npz"
        save_workload(wl, path)
        loaded = load_workload(path)
        db = Database(loaded.initial)
        for _, op, _ in loaded.replay():
            if op.kind == INSERT:
                assert db.insert(op.point) == op.tuple_id
            else:
                db.delete(op.tuple_id)


class TestRunResultRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        pts = rng.random((120, 3))
        wl = make_paper_workload(pts, seed=5)
        adapter = FDRMSAdapter(wl.initial, 1, 5, 0.05, m_max=32, seed=0)
        ev = RegretEvaluator(3, n_samples=1000, seed=6)
        res = run_workload(adapter, wl, ev, 1)
        path = tmp_path / "run.json"
        save_run_result(res, path)
        loaded = load_run_result(path)
        assert loaded.algorithm == res.algorithm
        assert loaded.total_seconds == res.total_seconds
        assert loaded.mean_mrr == pytest.approx(res.mean_mrr)
        assert [s.op_index for s in loaded.snapshots] == \
            [s.op_index for s in res.snapshots]

    def test_wrong_kind(self, tmp_path):
        (tmp_path / "x.json").write_text('{"kind": "other"}')
        with pytest.raises(ValueError):
            load_run_result(tmp_path / "x.json")
