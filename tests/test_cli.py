"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "Indep"])
        assert args.dataset == "Indep"
        assert args.n == 2000


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "Indep", "--n", "300", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "n=300" in out and "#skyline=" in out

    def test_run_fdrms(self, capsys):
        rc = main(["run", "Indep", "--n", "200", "--r", "6",
                   "--m-max", "64", "--eval-samples", "500",
                   "--snapshots", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "mean mrr" in out

    def test_run_static(self, capsys):
        rc = main(["run", "Indep", "--n", "200", "--r", "6",
                   "--algorithm", "Sphere", "--eval-samples", "500",
                   "--snapshots", "2"])
        assert rc == 0
        assert "Sphere" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "AntiCor", "--n", "200", "--r", "6",
                   "--m-max", "64", "--eval-samples", "500",
                   "--snapshots", "2",
                   "--algorithms", "FD-RMS", "DMM-Greedy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "DMM-Greedy" in out

    def test_minsize(self, capsys):
        rc = main(["minsize", "Indep", "--n", "300",
                   "--eps-values", "0.3,0.1", "--eval-samples", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.3000" in out and "0.1000" in out

    def test_unknown_dataset_one_line_error(self, capsys):
        rc = main(["stats", "Nope", "--n", "100"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown dataset 'Nope'" in err and "Indep" in err

    def test_unknown_algorithm_one_line_error(self, capsys):
        rc = main(["run", "Indep", "--n", "100", "--algorithm", "Bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown algorithm 'Bogus'" in err and "fd-rms" in err

    def test_capability_error_one_line(self, capsys):
        # Greedy does not support k > 1; must fail cleanly, not traceback.
        rc = main(["run", "Indep", "--n", "100", "--k", "2",
                   "--algorithm", "Greedy"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "k > 1" in err

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "supports_k" in out

    def test_case_insensitive_algorithm_alias(self, capsys):
        rc = main(["run", "Indep", "--n", "150", "--r", "5",
                   "--algorithm", "HITTING_SET", "--eval-samples", "400",
                   "--snapshots", "2"])
        assert rc == 0
        assert "HS" in capsys.readouterr().out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "skyline-churn" in out
        assert "summary" in out

    def test_replay_fdrms(self, capsys):
        rc = main(["replay", "paper", "--n", "120", "--r", "6",
                   "--m-max", "32", "--eval-samples", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "sha256:" in out and "p50 ms" in out

    def test_replay_check_determinism_and_outputs(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        json_path = tmp_path / "metrics.json"
        rc = main(["replay", "mixed-batch", "--n", "100", "--r", "6",
                   "--m-max", "32", "--eval-samples", "300",
                   "--check-determinism",
                   "--trace-out", str(trace_path),
                   "--json", str(json_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "determinism OK" in out
        from repro.scenarios import load_trace
        assert load_trace(trace_path).scenario == "mixed-batch"
        import json as _json
        payload = _json.loads(json_path.read_text())
        assert payload[0]["scenario"] == "mixed-batch"
        assert payload[0]["trace_hash"].startswith("sha256:")

    def test_snapshot_save_verify_load_round_trip(self, capsys, tmp_path):
        ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"
        rc = main(["snapshot", "save", "delete-heavy", "--n", "200",
                   "--out", str(ckpt), "--wal", str(wal), "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoint written" in out and "state digest: " in out
        saved_digest = [ln for ln in out.splitlines()
                        if ln.startswith("state digest: ")][0]
        assert main(["snapshot", "verify", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint OK" in out and saved_digest in out
        assert main(["snapshot", "load", str(ckpt),
                     "--wal", str(wal)]) == 0
        out = capsys.readouterr().out
        assert "restored: " in out and saved_digest in out
        assert "replayed ops: 0" in out

    def test_snapshot_verify_detects_corruption(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(["snapshot", "save", "paper", "--n", "150",
                     "--out", str(ckpt), "--seed", "1"]) == 0
        capsys.readouterr()
        from repro.persist import faults
        from repro.persist.checkpoint import STATE_NAME
        faults.flip_bit(ckpt / STATE_NAME, 4096)
        assert main(["snapshot", "verify", str(ckpt)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1

    def test_snapshot_load_missing_directory_one_line_error(self, capsys,
                                                            tmp_path):
        rc = main(["snapshot", "load", str(tmp_path / "nope")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1 and "manifest" in err

    def test_replay_unknown_scenario_one_line_error(self, capsys):
        rc = main(["replay", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown scenario 'bogus'" in err and "paper" in err

    def test_replay_unknown_arrival_one_line_error(self, capsys):
        # A user-registered scenario naming a missing arrival pattern
        # must fail with the one-line exit-2 contract, not a traceback.
        from repro.scenarios import Scenario, register_scenario
        from repro.scenarios.spec import _SCENARIOS
        register_scenario(Scenario(name="cli-bad-arrival",
                                   summary="bad arrival",
                                   arrival="no-such-pattern"))
        try:
            rc = main(["replay", "cli-bad-arrival", "--n", "40"])
            assert rc == 2
            err = capsys.readouterr().err
            assert err.count("\n") == 1
            assert "arrival pattern" in err
        finally:
            _SCENARIOS.pop("cli-bad-arrival", None)

    def test_replay_expect_hashes_drift_fails(self, capsys, tmp_path):
        import json as _json
        hashes = tmp_path / "hashes.json"
        hashes.write_text(_json.dumps(
            {"paper:n=100:seed=0": "sha256:not-the-real-hash"}))
        rc = main(["replay", "paper", "--n", "100", "--r", "6",
                   "--m-max", "32", "--eval-samples", "300",
                   "--expect-hashes", str(hashes)])
        assert rc == 2
        assert "trace hash drift" in capsys.readouterr().err

    def test_replay_expect_hashes_drift_with_json_still_exits_nonzero(
            self, capsys, tmp_path):
        # Regression pin: requesting --json must not swallow the
        # trace-hash mismatch — the command still exits 2 and the
        # metrics file for the failed replay is not written.
        import json as _json
        hashes = tmp_path / "hashes.json"
        hashes.write_text(_json.dumps(
            {"paper:n=100:seed=0": "sha256:not-the-real-hash"}))
        json_path = tmp_path / "metrics.json"
        rc = main(["replay", "paper", "--n", "100", "--r", "6",
                   "--m-max", "32", "--eval-samples", "300",
                   "--expect-hashes", str(hashes),
                   "--json", str(json_path)])
        assert rc == 2
        assert "trace hash drift" in capsys.readouterr().err
        assert not json_path.exists()

    def test_replay_expect_hashes_missing_key_fails(self, capsys,
                                                    tmp_path):
        hashes = tmp_path / "hashes.json"
        hashes.write_text("{}")
        rc = main(["replay", "paper", "--n", "100", "--r", "6",
                   "--m-max", "32", "--eval-samples", "300",
                   "--expect-hashes", str(hashes)])
        assert rc == 2
        assert "no expected hash" in capsys.readouterr().err

    def test_nonzero_exit_code_via_module(self):
        import subprocess
        import sys
        res = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "Nope"],
            capture_output=True, text=True, timeout=120)
        assert res.returncode == 2
        assert "unknown dataset" in res.stderr

    def test_module_entrypoint(self):
        import subprocess
        import sys
        res = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "Indep", "--n", "200"],
            capture_output=True, text=True, timeout=120)
        assert res.returncode == 0
        assert "#skyline=" in res.stdout
