"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "Indep"])
        assert args.dataset == "Indep"
        assert args.n == 2000


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "Indep", "--n", "300", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "n=300" in out and "#skyline=" in out

    def test_run_fdrms(self, capsys):
        rc = main(["run", "Indep", "--n", "200", "--r", "6",
                   "--m-max", "64", "--eval-samples", "500",
                   "--snapshots", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "mean mrr" in out

    def test_run_static(self, capsys):
        rc = main(["run", "Indep", "--n", "200", "--r", "6",
                   "--algorithm", "Sphere", "--eval-samples", "500",
                   "--snapshots", "2"])
        assert rc == 0
        assert "Sphere" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "AntiCor", "--n", "200", "--r", "6",
                   "--m-max", "64", "--eval-samples", "500",
                   "--snapshots", "2",
                   "--algorithms", "FD-RMS", "DMM-Greedy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "DMM-Greedy" in out

    def test_minsize(self, capsys):
        rc = main(["minsize", "Indep", "--n", "300",
                   "--eps-values", "0.3,0.1", "--eval-samples", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.3000" in out and "0.1000" in out

    def test_unknown_dataset_one_line_error(self, capsys):
        rc = main(["stats", "Nope", "--n", "100"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown dataset 'Nope'" in err and "Indep" in err

    def test_unknown_algorithm_one_line_error(self, capsys):
        rc = main(["run", "Indep", "--n", "100", "--algorithm", "Bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown algorithm 'Bogus'" in err and "fd-rms" in err

    def test_capability_error_one_line(self, capsys):
        # Greedy does not support k > 1; must fail cleanly, not traceback.
        rc = main(["run", "Indep", "--n", "100", "--k", "2",
                   "--algorithm", "Greedy"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "k > 1" in err

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "FD-RMS" in out and "supports_k" in out

    def test_case_insensitive_algorithm_alias(self, capsys):
        rc = main(["run", "Indep", "--n", "150", "--r", "5",
                   "--algorithm", "HITTING_SET", "--eval-samples", "400",
                   "--snapshots", "2"])
        assert rc == 0
        assert "HS" in capsys.readouterr().out

    def test_nonzero_exit_code_via_module(self):
        import subprocess
        import sys
        res = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "Nope"],
            capture_output=True, text=True, timeout=120)
        assert res.returncode == 2
        assert "unknown dataset" in res.stderr

    def test_module_entrypoint(self):
        import subprocess
        import sys
        res = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "Indep", "--n", "200"],
            capture_output=True, text=True, timeout=120)
        assert res.returncode == 0
        assert "#skyline=" in res.stdout
