"""Tests for the min-size k-RMS interface."""

import numpy as np
import pytest

from repro.core.minsize import min_size_curve, min_size_rms
from repro.core.regret import max_k_regret_ratio_sampled


class TestMinSizeRms:
    def test_result_meets_eps_on_fresh_sample(self, small_cloud):
        idx = min_size_rms(small_cloud, 0.1, seed=0)
        mrr = max_k_regret_ratio_sampled(small_cloud, small_cloud[idx], 1,
                                         n_samples=20_000, seed=1)
        # Certified on a sampled net; allow the O(δ) slack of Thm. 2.
        assert mrr <= 0.1 + 0.03

    def test_smaller_eps_needs_more_tuples(self, small_cloud):
        tight = min_size_rms(small_cloud, 0.02, seed=0)
        loose = min_size_rms(small_cloud, 0.3, seed=0)
        assert len(tight) >= len(loose)

    def test_k2(self, small_cloud):
        idx = min_size_rms(small_cloud, 0.1, k=2, seed=0)
        mrr = max_k_regret_ratio_sampled(small_cloud, small_cloud[idx], 2,
                                         n_samples=20_000, seed=1)
        assert mrr <= 0.13

    def test_validation(self, small_cloud):
        with pytest.raises(ValueError):
            min_size_rms(small_cloud, 0.0)
        with pytest.raises(ValueError):
            min_size_rms(small_cloud, 0.1, k=0)

    def test_indices_sorted_unique(self, small_cloud):
        idx = min_size_rms(small_cloud, 0.05, seed=2)
        assert list(idx) == sorted(set(idx.tolist()))


class TestMinSizeCurve:
    def test_monotone_nonincreasing(self, small_cloud):
        curve = min_size_curve(small_cloud, [0.01, 0.05, 0.1, 0.3], seed=0)
        sizes = [curve[e] for e in sorted(curve)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_matches_single_calls(self, small_cloud):
        curve = min_size_curve(small_cloud, [0.1], seed=5)
        single = min_size_rms(small_cloud, 0.1, seed=5)
        assert curve[0.1] == len(single)


class TestFdrmsUpdateMethod:
    def test_update_is_delete_plus_insert(self, small_cloud):
        from repro.core.fdrms import FDRMS
        from repro.data import Database
        db = Database(small_cloud)
        algo = FDRMS(db, 1, 8, 0.05, m_max=64, seed=0)
        victim = int(db.ids()[0])
        new_id = algo.update(victim, np.array([0.99, 0.99, 0.99, 0.99]))
        assert victim not in db
        assert new_id in db
        assert new_id in algo.result()
