"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils import (
    as_point_matrix,
    as_unit_vector,
    check_dimension,
    check_epsilon,
    check_k,
    check_size_constraint,
)


class TestAsPointMatrix:
    def test_coerces_list_to_float64(self):
        arr = as_point_matrix([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_promotes_single_row(self):
        arr = as_point_matrix([1.0, 2.0, 3.0])
        assert arr.shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-d"):
            as_point_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_point_matrix(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_point_matrix([[np.nan, 1.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            as_point_matrix([[-0.1, 1.0]])

    def test_returns_contiguous_copy_semantics(self):
        src = np.asfortranarray(np.ones((3, 2)))
        arr = as_point_matrix(src)
        assert arr.flags["C_CONTIGUOUS"]


class TestAsUnitVector:
    def test_normalizes(self):
        v = as_unit_vector([3.0, 4.0])
        assert np.isclose(np.linalg.norm(v), 1.0)
        assert np.allclose(v, [0.6, 0.8])

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="nonzero"):
            as_unit_vector([0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            as_unit_vector([1.0, -1.0])

    def test_dimension_check(self):
        with pytest.raises(ValueError, match="dimension 3"):
            as_unit_vector([1.0, 0.0], d=3)


class TestScalarChecks:
    def test_dimension_lower_bound(self):
        assert check_dimension(1) == 1
        with pytest.raises(ValueError):
            check_dimension(0)

    def test_k_lower_bound(self):
        assert check_k(1) == 1
        with pytest.raises(ValueError):
            check_k(0)

    def test_r_lower_bound(self):
        assert check_size_constraint(1) == 1
        with pytest.raises(ValueError):
            check_size_constraint(0)

    def test_r_vs_d(self):
        assert check_size_constraint(5, 5) == 5
        with pytest.raises(ValueError, match="r must be >= d"):
            check_size_constraint(3, 4)

    def test_epsilon_open_interval(self):
        assert check_epsilon(0.5) == 0.5
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                check_epsilon(bad)
