"""Parity fuzz: the array-backed :class:`StableSetCover` vs a reference.

The dynamic set-cover maintenance (paper Algorithm 1) is a
structure-of-arrays implementation with **canonical** tie-breaks: every
choice — greedy selection, orphan reassignment, violation-queue drain,
bucket absorption — breaks ties toward the smallest id, so the
maintained solution is a pure function of the operation history.

``_ReferenceCover`` is the same algorithm written the obvious way —
dicts, sets, and materialized per-(set, level) buckets, iterated in
sorted order — and serves as the executable specification. The fuzz
drives both through seeded randomized interleavings of every dynamic
operation (element/set insertions and removals, whole-set removals,
the bulk group forms, deferred-stabilize batches) and demands, after
every step, identical assignments, solutions, and levels, plus the
cover/stability invariants on the array implementation.
"""

import heapq
from collections import defaultdict

import numpy as np
import pytest

from repro.core.set_cover import StableSetCover, _level_of


class _ReferenceCover:
    """Pure-Python canonical stable set cover (the parity oracle)."""

    def __init__(self):
        self._elem_sets = defaultdict(set)
        self._set_elems = defaultdict(set)
        self._phi = {}
        self._cov = defaultdict(set)
        self._level = {}
        self._elem_level = {}
        self._by_level = defaultdict(lambda: defaultdict(set))
        self._pending = []
        self._pending_keys = set()
        self._deferred = False

    # -- construction --------------------------------------------------
    def build(self, membership):
        self.__init__()
        for sid, elems in membership.items():
            for elem in elems:
                self._elem_sets[elem].add(sid)
                self._set_elems[sid].add(elem)
        self._greedy()

    def _greedy(self):
        self._phi = {}
        self._cov = defaultdict(set)
        self._level = {}
        self._elem_level = {}
        self._by_level = defaultdict(lambda: defaultdict(set))
        self._pending = []
        self._pending_keys = set()
        uncovered = set(self._elem_sets.keys())
        while uncovered:
            best, best_gain = None, 0
            for sid in sorted(self._set_elems):
                gain = len(self._set_elems[sid] & uncovered)
                if gain > best_gain:
                    best, best_gain = sid, gain
            if best is None:
                raise ValueError("greedy failed")
            won = sorted(self._set_elems[best] & uncovered)
            for elem in won:
                self._phi[elem] = best
                self._cov[best].add(elem)
            uncovered.difference_update(won)
            j = _level_of(len(won))
            self._level[best] = j
            for elem in won:
                self._set_elem_level(elem, j)
        self._stabilize()

    # -- dynamic ops ---------------------------------------------------
    def add_to_set(self, elem, sid):
        if elem not in self._elem_sets:
            raise KeyError(elem)
        if sid in self._elem_sets[elem]:
            return
        self._elem_sets[elem].add(sid)
        self._set_elems[sid].add(elem)
        lvl = self._elem_level.get(elem)
        if lvl is not None:
            self._by_level[sid][lvl].add(elem)
            self._queue_check(sid, lvl)
        self._stabilize()

    def add_elems_to_set(self, elems, sid):
        for elem in elems:
            if elem not in self._elem_sets:
                raise KeyError(elem)
            self._elem_sets[elem].add(sid)
            self._set_elems[sid].add(elem)
            lvl = self._elem_level.get(elem)
            if lvl is not None:
                self._by_level[sid][lvl].add(elem)
                self._queue_check(sid, lvl)
        self._stabilize()

    def add_elem_to_sets(self, elem, sids):
        if elem not in self._elem_sets:
            raise KeyError(elem)
        for sid in sids:
            self._elem_sets[elem].add(sid)
            self._set_elems[sid].add(elem)
            lvl = self._elem_level.get(elem)
            if lvl is not None:
                self._by_level[sid][lvl].add(elem)
                self._queue_check(sid, lvl)
        self._stabilize()

    def remove_from_set(self, elem, sid):
        self.remove_elem_from_sets(elem, [sid])

    def remove_elem_from_sets(self, elem, sids):
        """Group removal: memberships first, then one reassignment."""
        if elem not in self._elem_sets:
            return
        present = [s for s in sids if s in self._elem_sets[elem]]
        if not present:
            return
        lvl = self._elem_level.get(elem)
        for sid in present:
            self._elem_sets[elem].discard(sid)
            self._set_elems[sid].discard(elem)
            if not self._set_elems[sid]:
                del self._set_elems[sid]
            if lvl is not None:
                self._by_level[sid][lvl].discard(elem)
        if self._phi.get(elem) in present:
            self._unassign(elem, self._phi[elem])
            self._assign_somewhere(elem)
        self._stabilize()

    def add_element(self, elem, member_sids):
        sids = set(member_sids)
        if not sids:
            raise ValueError(elem)
        if elem in self._elem_sets:
            raise KeyError(elem)
        self._elem_sets[elem] = set(sids)
        for sid in sids:
            self._set_elems[sid].add(elem)
        self._assign_somewhere(elem)
        self._stabilize()

    def remove_element(self, elem):
        if elem not in self._elem_sets:
            raise KeyError(elem)
        sid = self._phi.get(elem)
        if sid is not None:
            self._unassign(elem, sid)
        for owner in self._elem_sets.pop(elem):
            self._set_elems[owner].discard(elem)
            if not self._set_elems[owner]:
                del self._set_elems[owner]
            for bucket in self._by_level[owner].values():
                bucket.discard(elem)
        self._elem_level.pop(elem, None)
        self._stabilize()

    def remove_set(self, sid):
        members = self._set_elems.pop(sid, None)
        if members is None:
            return
        for elem in members:
            self._elem_sets[elem].discard(sid)
        self._by_level.pop(sid, None)
        orphans = sorted(e for e, s in self._phi.items() if s == sid)
        self._cov.pop(sid, None)
        self._level.pop(sid, None)
        for elem in orphans:
            self._phi.pop(elem, None)
            old = self._elem_level.pop(elem, None)
            if old is not None:
                self._clear_elem_level(elem, old)
        for elem in orphans:
            self._assign_somewhere(elem)
        self._stabilize()

    def begin_batch(self):
        self._deferred = True

    def end_batch(self):
        self._deferred = False
        self._drain()

    # -- internals -----------------------------------------------------
    def _queue_check(self, sid, j):
        if len(self._by_level[sid][j]) >= 2 ** (j + 1):
            key = (j, sid)
            if key not in self._pending_keys:
                self._pending_keys.add(key)
                heapq.heappush(self._pending, key)

    def _set_elem_level(self, elem, new_j):
        old = self._elem_level.get(elem)
        if old == new_j:
            return
        for sid in self._elem_sets[elem]:
            if old is not None:
                self._by_level[sid][old].discard(elem)
            self._by_level[sid][new_j].add(elem)
            self._queue_check(sid, new_j)
        self._elem_level[elem] = new_j

    def _clear_elem_level(self, elem, old_j):
        for sid in self._elem_sets.get(elem, ()):
            self._by_level[sid][old_j].discard(elem)

    def _unassign(self, elem, sid):
        self._cov[sid].discard(elem)
        self._phi.pop(elem, None)
        old = self._elem_level.pop(elem, None)
        if old is not None:
            self._clear_elem_level(elem, old)
        self._relevel(sid)

    def _assign_somewhere(self, elem):
        candidates = self._elem_sets.get(elem)
        if not candidates:
            raise ValueError(f"element {elem!r} has no containing set")
        best_level = max(self._level.get(s, -1) for s in candidates)
        best = min(s for s in candidates
                   if self._level.get(s, -1) == best_level)
        self._phi[elem] = best
        self._cov[best].add(elem)
        self._relevel(best)

    def _relevel(self, sid):
        size = len(self._cov.get(sid, ()))
        if size == 0:
            self._cov.pop(sid, None)
            self._level.pop(sid, None)
            return
        new_j = _level_of(size)
        self._level[sid] = new_j
        for elem in sorted(self._cov[sid]):
            self._set_elem_level(elem, new_j)

    def _stabilize(self):
        if not self._deferred:
            self._drain()

    def _drain(self):
        while self._pending:
            key = heapq.heappop(self._pending)
            self._pending_keys.discard(key)
            j, sid = key
            if sid not in self._set_elems:
                continue
            bucket = self._by_level[sid][j]
            if len(bucket) < 2 ** (j + 1):
                continue
            for elem in sorted(bucket):
                owner = self._phi.get(elem)
                if owner == sid:
                    continue
                if owner is not None:
                    self._cov[owner].discard(elem)
                    old = self._elem_level.pop(elem, None)
                    if old is not None:
                        self._clear_elem_level(elem, old)
                    self._phi.pop(elem, None)
                    self._relevel(owner)
                self._phi[elem] = sid
                self._cov[sid].add(elem)
            self._relevel(sid)

    # -- views ---------------------------------------------------------
    def solution(self):
        return frozenset(self._level)

    def assignments(self):
        return dict(self._phi)

    def universe(self):
        return frozenset(self._elem_sets)


def _array_assignments(cover: StableSetCover):
    return {elem: cover.assignment(elem) for elem in cover.universe}


def _assert_same(cover: StableSetCover, ref: _ReferenceCover):
    assert cover.universe == ref.universe()
    assert cover.solution() == ref.solution()
    assert _array_assignments(cover) == ref.assignments()
    for sid in ref.solution():
        assert cover.cover_of(sid) == frozenset(ref._cov[sid])
    assert cover.is_cover()
    assert cover.is_stable()


def _random_system(rng, n_elems, n_sets, density):
    membership = {s: set() for s in range(100, 100 + n_sets)}
    for e in range(n_elems):
        owners = np.flatnonzero(rng.random(n_sets) < density)
        if owners.size == 0:
            owners = [int(rng.integers(n_sets))]
        for s in owners:
            membership[100 + int(s)].add(e)
    return {s: m for s, m in membership.items() if m}


def _alive_sids(ref):
    return sorted(ref._set_elems)


@pytest.mark.parametrize("seed", range(12))
def test_interleaved_dynamic_ops_parity(seed):
    """Random interleaved op streams: identical assignments throughout."""
    rng = np.random.default_rng(seed)
    n_sets = 12
    membership = _random_system(rng, 24, n_sets, density=0.3)
    cover, ref = StableSetCover(), _ReferenceCover()
    cover.build(membership)
    ref.build(membership)
    _assert_same(cover, ref)
    next_elem = 1000
    next_sid = 500
    for _ in range(120):
        roll = rng.random()
        elems = sorted(ref.universe())
        sids = _alive_sids(ref)
        if roll < 0.2:
            pool = sids + [next_sid + int(rng.integers(3))]
            chosen = [pool[int(rng.integers(len(pool)))]
                      for _ in range(1 + int(rng.integers(3)))]
            cover.add_element(next_elem, chosen)
            ref.add_element(next_elem, chosen)
            next_elem += 1
        elif roll < 0.3 and len(elems) > 2:
            victim = elems[int(rng.integers(len(elems)))]
            cover.remove_element(victim)
            ref.remove_element(victim)
        elif roll < 0.5 and elems:
            e = elems[int(rng.integers(len(elems)))]
            sid = (sids + [next_sid])[int(rng.integers(len(sids) + 1))]
            cover.add_to_set(e, sid)
            ref.add_to_set(e, sid)
            next_sid += 1
        elif roll < 0.7 and elems:
            e = elems[int(rng.integers(len(elems)))]
            owners = sorted(ref._elem_sets[e])
            if len(owners) >= 2:
                s = owners[int(rng.integers(len(owners)))]
                cover.remove_from_set(e, s)
                ref.remove_from_set(e, s)
        elif roll < 0.85 and sids:
            # Only remove a set whose orphans all have alternatives.
            for sid in sids:
                covered = {e for e, s in ref._phi.items() if s == sid}
                if all(len(ref._elem_sets[e]) >= 2 for e in covered):
                    cover.remove_set(sid)
                    ref.remove_set(sid)
                    break
        _assert_same(cover, ref)


@pytest.mark.parametrize("seed", range(6))
def test_bulk_group_ops_parity(seed):
    """The engine's bulk σ forms match the reference group semantics."""
    rng = np.random.default_rng(1000 + seed)
    membership = _random_system(rng, 20, 10, density=0.35)
    cover, ref = StableSetCover(), _ReferenceCover()
    cover.build(membership)
    ref.build(membership)
    next_sid = 700
    for _ in range(40):
        roll = rng.random()
        elems = sorted(ref.universe())
        if roll < 0.4 and elems:
            # A fresh set absorbs a random element group (insert shape).
            k = 1 + int(rng.integers(min(6, len(elems))))
            group = sorted(rng.choice(elems, size=k, replace=False)
                           .tolist())
            cover.add_elems_to_set(group, next_sid)
            ref.add_elems_to_set(group, next_sid)
            next_sid += 1
        elif roll < 0.7 and elems:
            # One element joins several sets (repair shape).
            e = elems[int(rng.integers(len(elems)))]
            sids = _alive_sids(ref)
            fresh = [s for s in sids if s not in ref._elem_sets[e]]
            if fresh:
                k = 1 + int(rng.integers(min(4, len(fresh))))
                group = sorted(rng.choice(fresh, size=k, replace=False)
                               .tolist())
                cover.add_elem_to_sets(e, group)
                ref.add_elem_to_sets(e, group)
        elif elems:
            # One element leaves several sets at once (eviction shape).
            e = elems[int(rng.integers(len(elems)))]
            owners = sorted(ref._elem_sets[e])
            if len(owners) >= 2:
                k = 1 + int(rng.integers(len(owners) - 1))
                group = sorted(rng.choice(owners, size=k, replace=False)
                               .tolist())
                cover.remove_elem_from_sets(e, group)
                ref.remove_elem_from_sets(e, group)
        _assert_same(cover, ref)


@pytest.mark.parametrize("seed", range(6))
def test_batched_stabilize_parity(seed):
    """Deferred-stabilize batches agree with the reference batches."""
    rng = np.random.default_rng(2000 + seed)
    membership = _random_system(rng, 18, 8, density=0.4)
    cover, ref = StableSetCover(), _ReferenceCover()
    cover.build(membership)
    ref.build(membership)
    next_sid = 800
    for _ in range(25):
        elems = sorted(ref.universe())
        with cover.batch():
            ref.begin_batch()
            for _ in range(1 + int(rng.integers(4))):
                e = elems[int(rng.integers(len(elems)))]
                cover.add_to_set(e, next_sid)
                ref.add_to_set(e, next_sid)
            ref.end_batch()
        next_sid += 1
        _assert_same(cover, ref)


def test_grouped_removal_reassigns_once():
    """The group form reassigns against the post-group membership."""
    cover = StableSetCover()
    cover.build({10: {0, 1}, 11: {0, 2}, 12: {0}})
    phi0 = cover.assignment(0)
    others = [s for s in (10, 11, 12) if s != phi0]
    cover.remove_elem_from_sets(0, [phi0] + others[:1])
    assert cover.assignment(0) == others[1]
    assert cover.is_cover() and cover.is_stable()
