"""Parity fuzz: the array-backed :class:`MemberStore` vs a reference.

The membership core of the FD-RMS hot path is a structure-of-arrays
store (`repro.core.topk.MemberStore`); its contract — arrival-order
member rows, admission scores returned on removal, (score, id)-ordered
eviction emission, O(1) ``ω_k`` reads, the inverted index ``S(p)`` —
was previously implemented with sorted Python lists and dict-of-sets.
These tests drive both implementations through seeded randomized
operation streams and demand exact agreement, then run the full engine
over random workloads (single ops and batches) and check
``verify(deep=True)`` plus batched/sequential solution equality.
"""

import bisect

import numpy as np
import pytest

from repro.core.fdrms import FDRMS
from repro.core.topk import MemberStore
from repro.data.database import DELETE, INSERT, Database, Operation


class _ReferenceStore:
    """The legacy pure-Python membership layer, kept small and slow.

    Sorted (score, id) entry lists plus an id -> score side map per
    utility, and a dict-of-sets inverted index — the implementation the
    array-backed store replaced, retained here as the parity oracle.
    """

    def __init__(self, m_total: int, k: int) -> None:
        self._k = k
        self._entries = [[] for _ in range(m_total)]
        self._score_by_id = [{} for _ in range(m_total)]
        self._inverted: dict[int, set[int]] = {}

    def add_one(self, i, score, pid):
        bisect.insort(self._entries[i], (score, pid))
        self._score_by_id[i][pid] = score
        self._inverted.setdefault(pid, set()).add(i)

    def add_members(self, idxs, scores, pid):
        for i, s in zip(idxs, scores):
            self.add_one(int(i), float(s), pid)

    def remove(self, i, pid):
        score = self._score_by_id[i].pop(pid)
        idx = bisect.bisect_left(self._entries[i], (score, pid))
        del self._entries[i][idx]
        self._inverted[pid].discard(i)
        return score

    def evict_below(self, i, tau):
        idx = bisect.bisect_left(self._entries[i], (tau, -1))
        evicted = self._entries[i][:idx]
        del self._entries[i][:idx]
        for score, pid in evicted:
            del self._score_by_id[i][pid]
            self._inverted[pid].discard(i)
        return ([s for s, _ in evicted], [p for _, p in evicted])

    def members_sorted(self, i):
        return [pid for _, pid in self._entries[i]]

    def kth_largest(self, i):
        entries = self._entries[i]
        if len(entries) < self._k:
            return entries[0][0] if entries else 0.0
        return entries[-self._k][0]

    def max_score(self, i):
        return self._entries[i][-1][0] if self._entries[i] else 0.0

    def sets_containing(self, pid):
        return frozenset(self._inverted.get(pid, frozenset()))


def _compare(store: MemberStore, ref: _ReferenceStore, m: int, pids) -> None:
    for i in range(m):
        assert store.members_sorted(i) == ref.members_sorted(i), i
        assert store.kth_largest(i) == ref.kth_largest(i), i
        assert store.max_score(i) == ref.max_score(i), i
    for pid in pids:
        assert store.sets_containing(pid) == ref.sets_containing(pid), pid


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("k", [1, 3])
def test_store_matches_reference_under_random_ops(seed, k):
    rng = np.random.default_rng(seed)
    m = 12
    store, ref = MemberStore(m, k), _ReferenceStore(m, k)
    live: dict[int, list[int]] = {}   # pid -> utilities holding it
    next_pid = 0
    for _ in range(300):
        roll = rng.random()
        if roll < 0.45 or not live:
            # A fresh tuple joins a random utility subset (batch add).
            count = 1 + int(rng.integers(m))
            idxs = np.sort(rng.choice(m, size=count, replace=False))
            scores = rng.random(count)
            store.add_members(idxs.astype(np.intp), scores, next_pid)
            ref.add_members(idxs, scores, next_pid)
            live[next_pid] = [int(i) for i in idxs]
            next_pid += 1
        elif roll < 0.75:
            # A random member is removed from every utility holding it.
            pid = int(rng.choice(list(live)))
            for i in live.pop(pid):
                got = store.remove(i, pid)
                want = ref.remove(i, pid)
                assert got == want, (pid, i)
        else:
            # A threshold rises on one utility; evictions must agree
            # value-for-value *and* in emission order.
            i = int(rng.integers(m))
            tau = float(rng.random())
            got_scores, got_ids = store.evict_below(i, tau)
            want_scores, want_ids = ref.evict_below(i, tau)
            assert got_ids.tolist() == want_ids, i
            assert got_scores.tolist() == want_scores, i
            for pid in got_ids.tolist():
                store.remove_owner(pid, i)
                owners = live.get(pid)
                if owners is not None and i in owners:
                    owners.remove(i)
        _compare(store, ref, m, range(next_pid))


def test_store_missing_member_raises():
    store = MemberStore(4, 1)
    store.add_one(2, 0.5, 7)
    with pytest.raises(KeyError):
        store.remove(2, 8)
    with pytest.raises(KeyError):
        store.score_of(1, 7)
    assert store.score_of(2, 7) == 0.5


def test_store_replace_row_recomputes_derived_state():
    store = MemberStore(2, 2)
    store.add_members(np.asarray([0], dtype=np.intp),
                      np.asarray([0.9]), 1)
    store.replace_row(0, np.asarray([5, 6, 7], dtype=np.intp),
                      np.asarray([0.3, 0.8, 0.5]))
    assert store.kth_largest(0) == 0.5
    assert store.max_score(0) == 0.8
    assert store.members_sorted(0) == [5, 7, 6]


@pytest.mark.parametrize("seed", range(4))
def test_engine_randomized_ops_verify_and_batch_parity(seed):
    """End-to-end: random op streams, deep verify + solution equality."""
    rng = np.random.default_rng(100 + seed)
    pts = rng.random((90, 3))
    ops = []
    alive = list(range(90))
    next_pid = 90
    for _ in range(120):
        if rng.random() < 0.6 or len(alive) < 5:
            ops.append(Operation(INSERT, rng.random(3)))
            alive.append(next_pid)
            next_pid += 1
        else:
            victim = alive.pop(int(rng.integers(len(alive))))
            ops.append(Operation(DELETE, pts[0], tuple_id=victim))

    single = FDRMS(Database(pts), 1, 6, 0.1, m_max=32, seed=seed)
    for op in ops:
        if op.kind == INSERT:
            single.insert(op.point)
        else:
            single.delete(op.tuple_id)
    batched = FDRMS(Database(pts), 1, 6, 0.1, m_max=32, seed=seed)
    batched.apply_batch(ops)

    single.verify(deep=True)
    batched.verify(deep=True)
    assert single.result() == batched.result()
    assert single.statistics() == batched.statistics()
