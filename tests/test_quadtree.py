"""Unit + property tests for the quadtree tuple index.

Contract: identical results to KDTree (and brute force) for top_k and
range_query under nonnegative utilities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kdtree import KDTree
from repro.index.quadtree import QuadTree


def _brute_top_k(points: dict[int, np.ndarray], u: np.ndarray, k: int):
    items = sorted(points.items(),
                   key=lambda kv: (-float(kv[1] @ u), kv[0]))[:k]
    return [pid for pid, _ in items]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuadTree(0)
        with pytest.raises(ValueError):
            QuadTree(2, bound=0.0)
        with pytest.raises(ValueError):
            QuadTree(2, leaf_capacity=0)

    def test_out_of_domain_rejected(self):
        tree = QuadTree(2, bound=1.0)
        with pytest.raises(ValueError):
            tree.insert(0, [1.5, 0.2])
        with pytest.raises(ValueError):
            tree.insert(0, [0.5])


class TestAgainstKDTree:
    def test_topk_parity(self, rng):
        pts = rng.random((300, 3))
        qt = QuadTree.build(range(300), pts)
        kd = KDTree.build(range(300), pts)
        for _ in range(10):
            u = rng.random(3)
            ids_q, sc_q = qt.top_k(u, 7)
            ids_k, sc_k = kd.top_k(u, 7)
            assert ids_q.tolist() == ids_k.tolist()
            assert np.allclose(sc_q, sc_k)

    def test_range_parity(self, rng):
        pts = rng.random((200, 2))
        qt = QuadTree.build(range(200), pts)
        kd = KDTree.build(range(200), pts)
        u = rng.random(2)
        tau = float(np.quantile(pts @ u, 0.85))
        ids_q, _ = qt.range_query(u, tau)
        ids_k, _ = kd.range_query(u, tau)
        assert ids_q.tolist() == ids_k.tolist()


class TestDynamics:
    def test_interleaved_ops(self, rng):
        tree = QuadTree(3, leaf_capacity=4)
        alive: dict[int, np.ndarray] = {}
        nid = 0
        for step in range(400):
            if not alive or rng.random() < 0.6:
                p = rng.random(3)
                tree.insert(nid, p)
                alive[nid] = p
                nid += 1
            else:
                victim = int(rng.choice(list(alive)))
                tree.delete(victim)
                del alive[victim]
            assert len(tree) == len(alive)
            if step % 80 == 0 and alive:
                u = rng.random(3)
                kk = min(5, len(alive))
                ids, _ = tree.top_k(u, kk)
                assert ids.tolist() == _brute_top_k(alive, u, kk)

    def test_duplicate_points_depth_capped(self):
        tree = QuadTree(2, leaf_capacity=2)
        for i in range(40):
            tree.insert(i, [0.5, 0.5])
        ids, _ = tree.top_k(np.array([1.0, 0.0]), 3)
        assert ids.tolist() == [0, 1, 2]

    def test_delete_unknown(self):
        tree = QuadTree(2)
        with pytest.raises(KeyError):
            tree.delete(0)

    def test_empty_queries(self):
        tree = QuadTree(2)
        ids, scores = tree.top_k(np.ones(2), 3)
        assert ids.size == 0
        ids, scores = tree.range_query(np.ones(2), 0.0)
        assert ids.size == 0


class TestAsTupleIndex:
    def test_topk_maintainer_with_quadtree(self, rng):
        """ApproxTopKIndex produces identical membership with either TI."""
        from repro.core.topk import ApproxTopKIndex
        from repro.data import Database
        from repro.geometry.sampling import sample_utilities_with_basis
        from repro.index.quadtree import QuadTree

        pts = rng.random((80, 3))
        utils = sample_utilities_with_basis(12, 3, seed=1)

        def qt_factory(ids, points, d):
            tree = QuadTree(d)
            for row, tid in enumerate(ids):
                tree.insert(int(tid), points[row])
            return tree

        db_a = Database(pts)
        idx_a = ApproxTopKIndex(db_a, utils, 2, 0.05)
        db_b = Database(pts)
        idx_b = ApproxTopKIndex(db_b, utils, 2, 0.05,
                                index_factory=qt_factory)
        ops = [("+", rng.random(3)) for _ in range(25)]
        victims = list(rng.choice(80, size=20, replace=False))
        for kind, payload in ops:
            idx_a.insert(payload)
            idx_b.insert(payload)
        for victim in victims:
            idx_a.delete(int(victim))
            idx_b.delete(int(victim))
        for i in range(12):
            assert set(idx_a.members_of(i)) == set(idx_b.members_of(i))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 50), k=st.integers(1, 6), seed=st.integers(0, 500))
def test_quadtree_topk_property(n, k, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tree = QuadTree.build(range(n), pts, leaf_capacity=3)
    u = rng.random(2) + 1e-3
    ids, scores = tree.top_k(u, k)
    ref = _brute_top_k({i: pts[i] for i in range(n)}, u, k)
    assert ids.tolist() == ref
