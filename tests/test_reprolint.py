"""Tests for the reprolint determinism/hot-path linter.

Three layers:

* the fixture corpus under ``tests/reprolint_fixtures/`` — one file per
  rule, linted under the repo-relative path declared on its first line
  and compared against a golden ``.expected`` diagnostics file;
* suppression semantics — trailing vs. standalone pragmas, mandatory
  justifications (RPL009), multi-code pragmas, and ``skip-file``;
* path scoping — scoped rules fire only inside their declared prefixes
  and ``respect_scope=False`` widens them everywhere.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.reprolint.cli import main
from tools.reprolint.engine import lint_source
from tools.reprolint.rules import RULES

FIXTURE_DIR = Path(__file__).parent / "reprolint_fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("rpl*.py"))


def _fixture_relpath(source: str) -> str:
    first = source.splitlines()[0]
    assert first.startswith("# fixture-relpath:"), first
    return first.split(":", 1)[1].strip()


# ----------------------------------------------------------------------
# Fixture corpus against golden diagnostics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_matches_golden(fixture: Path) -> None:
    source = fixture.read_text(encoding="utf-8")
    relpath = _fixture_relpath(source)
    result = lint_source(source, relpath)
    got = [d.render(with_hint=False) for d in result.active]
    expected = fixture.with_suffix(".expected").read_text(
        encoding="utf-8").splitlines()
    assert got == expected


def test_corpus_covers_every_rule() -> None:
    """Each RPL code appears in at least one golden file."""
    seen: set[str] = set()
    for fixture in FIXTURES:
        expected = fixture.with_suffix(".expected").read_text(
            encoding="utf-8")
        seen.update(code for code in RULES if f" {code} " in expected)
    assert seen == set(RULES)


def test_fixture_diagnostics_carry_fixit_hints() -> None:
    """Every rendered diagnostic can carry its rule's fix-it message."""
    source = FIXTURES[0].read_text(encoding="utf-8")
    result = lint_source(source, _fixture_relpath(source))
    assert result.active
    for diag in result.active:
        rendered = diag.render(with_hint=True)
        assert RULES[diag.code].fixit in rendered


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------

_RNG_LINE = "value = np.random.rand(3)"


def _codes(result, *, include_suppressed: bool = False) -> list[str]:
    diags = result.diagnostics if include_suppressed else result.active
    return [d.code for d in diags]


def test_trailing_pragma_suppresses_its_own_line() -> None:
    src = ("import numpy as np\n"
           f"{_RNG_LINE}  # reprolint: disable=RPL003 -- test fixture\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert _codes(result) == []
    assert _codes(result, include_suppressed=True) == ["RPL003"]


def test_standalone_pragma_suppresses_next_line_only() -> None:
    src = ("import numpy as np\n"
           "# reprolint: disable=RPL003 -- test fixture\n"
           f"{_RNG_LINE}\n"
           f"other = np.random.rand(2)\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert [(d.code, d.line) for d in result.active] == [("RPL003", 4)]


def test_unjustified_pragma_reports_rpl009_and_does_not_suppress() -> None:
    src = ("import numpy as np\n"
           f"{_RNG_LINE}  # reprolint: disable=RPL003\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert sorted(_codes(result)) == ["RPL003", "RPL009"]


def test_pragma_with_multiple_codes() -> None:
    src = ("import numpy as np\n"
           "import time\n"
           "t = time.time(); v = np.random.rand(1)"
           "  # reprolint: disable=RPL003,RPL005 -- test fixture\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert _codes(result) == []
    assert sorted(_codes(result, include_suppressed=True)) == \
        ["RPL003", "RPL005"]


def test_skip_file_pragma() -> None:
    src = ("# reprolint: skip-file -- generated test input\n"
           "import numpy as np\n"
           f"{_RNG_LINE}\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert result.skipped
    assert _codes(result) == []


def test_unknown_code_in_pragma_is_rpl009() -> None:
    src = ("import numpy as np\n"
           f"{_RNG_LINE}  # reprolint: disable=RPL999 -- no such rule\n")
    result = lint_source(src, "src/repro/core/x.py")
    assert "RPL009" in _codes(result)


# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------

_SET_LOOP = "for item in {3, 1, 2}:\n    print(item)\n"


def test_rpl001_scoped_to_deterministic_modules() -> None:
    in_scope = lint_source(_SET_LOOP, "src/repro/core/x.py")
    out_of_scope = lint_source(_SET_LOOP, "examples/demo.py")
    assert _codes(in_scope) == ["RPL001"]
    assert _codes(out_of_scope) == []


def test_no_scope_flag_widens_every_rule() -> None:
    widened = lint_source(_SET_LOOP, "examples/demo.py",
                          respect_scope=False)
    assert _codes(widened) == ["RPL001"]


def test_rpl005_excludes_timing_shim_and_replay() -> None:
    src = "import time\nnow = time.time()\n"
    assert _codes(lint_source(src, "src/repro/utils/timing.py")) == []
    assert _codes(lint_source(src, "src/repro/scenarios/replay.py")) == []
    assert _codes(lint_source(src, "src/repro/core/x.py")) == ["RPL005"]


def test_rpl008_only_in_hot_alloc_modules() -> None:
    src = ("import numpy as np\n"
           "for _ in range(3):\n"
           "    buf = np.zeros(4)\n")
    assert _codes(lint_source(src, "src/repro/core/topk.py")) == ["RPL008"]
    assert _codes(lint_source(src, "src/repro/baselines/greedy.py")) == []


def test_select_restricts_rules() -> None:
    src = ("import numpy as np\n"
           "import time\n"
           "t = time.time()\n"
           "v = np.random.rand(1)\n")
    result = lint_source(src, "src/repro/core/x.py", select=["RPL005"])
    assert _codes(result) == ["RPL005"]


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

def test_cli_exit_zero_on_clean_tree(capsys, tmp_path: Path) -> None:
    clean = tmp_path / "clean.py"
    clean.write_text("import numpy as np\n\n\ndef f(x: int) -> int:\n"
                     "    return x + 1\n", encoding="utf-8")
    assert main([str(clean)]) == 0
    capsys.readouterr()


def test_cli_exit_one_on_diagnostics(capsys, tmp_path: Path) -> None:
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(bucket=[]):\n    return bucket\n",
                     encoding="utf-8")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "RPL006" in out


def test_cli_exit_two_on_parse_error(capsys, tmp_path: Path) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    assert main([str(broken)]) == 2
    capsys.readouterr()


def test_cli_fixture_corpus_reports_correct_codes(capsys) -> None:
    """The on-disk corpus is only linted when explicitly included."""
    assert main([str(FIXTURE_DIR), "--include-fixtures"]) == 1
    out = capsys.readouterr().out
    # Scoped rules don't apply at tests/... paths, but the unscoped
    # determinism rules must fire at their fixture locations.
    assert "rpl003_global_rng.py:9:12: RPL003" in out
    assert "rpl005_wall_clock.py:8:14: RPL005" in out
    assert "rpl006_mutable_default.py:5:25: RPL006" in out
