"""Unit + property tests for the dynamic Database."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import DELETE, INSERT, Database, Operation


class TestConstruction:
    def test_from_points(self, small_cloud):
        db = Database(small_cloud)
        assert len(db) == 300
        assert db.d == 4
        assert db.capacity == 300

    def test_empty_with_d(self):
        db = Database(d=3)
        assert len(db) == 0
        assert db.d == 3

    def test_requires_points_or_d(self):
        with pytest.raises(ValueError):
            Database()

    def test_d_mismatch(self):
        with pytest.raises(ValueError):
            Database(np.ones((2, 3)), d=4)


class TestInsertDelete:
    def test_ids_are_sequential(self):
        db = Database(d=2)
        assert db.insert([0.1, 0.2]) == 0
        assert db.insert([0.3, 0.4]) == 1
        assert db.insert([0.5, 0.6]) == 2

    def test_delete_keeps_other_ids(self):
        db = Database(np.array([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]]))
        db.delete(1)
        assert 0 in db and 2 in db and 1 not in db
        assert db.ids().tolist() == [0, 2]
        # A new insert gets a fresh id, never reusing 1.
        assert db.insert([0.4, 0.4]) == 3

    def test_delete_returns_value(self):
        db = Database(np.array([[0.7, 0.3]]))
        assert np.allclose(db.delete(0), [0.7, 0.3])

    def test_double_delete_raises(self):
        db = Database(np.array([[0.7, 0.3]]))
        db.delete(0)
        with pytest.raises(KeyError):
            db.delete(0)

    def test_insert_validates(self):
        db = Database(d=2)
        with pytest.raises(ValueError):
            db.insert([0.1])           # wrong d
        with pytest.raises(ValueError):
            db.insert([-0.1, 0.2])     # negative
        with pytest.raises(ValueError):
            db.insert([np.nan, 0.2])   # non-finite

    def test_growth_beyond_initial_capacity(self):
        db = Database(d=2)
        for i in range(100):
            db.insert([i / 100.0, 1.0 - i / 100.0])
        assert len(db) == 100
        assert db.ids().tolist() == list(range(100))


class TestAccessors:
    def test_point_and_points(self, small_cloud):
        db = Database(small_cloud)
        assert np.allclose(db.point(5), small_cloud[5])
        assert np.allclose(db.points([2, 7]), small_cloud[[2, 7]])

    def test_point_dead_raises(self):
        db = Database(np.array([[0.1, 0.1]]))
        db.delete(0)
        with pytest.raises(KeyError):
            db.point(0)
        with pytest.raises(KeyError):
            db.points([0])

    def test_snapshot_alignment(self, small_cloud):
        db = Database(small_cloud)
        db.delete(10)
        ids, pts = db.snapshot()
        assert ids.shape[0] == pts.shape[0] == 299
        row = int(np.flatnonzero(ids == 11)[0])
        assert np.allclose(pts[row], small_cloud[11])


class TestScoring:
    def test_top_k_matches_bruteforce(self, small_cloud, rng):
        db = Database(small_cloud)
        u = rng.random(4)
        ids, scores = db.top_k(u, 5)
        brute = np.argsort(-(small_cloud @ u), kind="stable")[:5]
        assert ids.tolist() == brute.tolist()
        assert np.allclose(scores, (small_cloud @ u)[brute])

    def test_top_k_tie_break_by_id(self):
        db = Database(np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.9]]))
        ids, _ = db.top_k(np.array([1.0, 0.0]), 3)
        assert ids.tolist() == [2, 0, 1]

    def test_kth_score(self, small_cloud, rng):
        db = Database(small_cloud)
        u = rng.random(4)
        sc = np.sort(small_cloud @ u)[::-1]
        assert db.kth_score(u, 3) == pytest.approx(sc[2])

    def test_kth_score_small_db(self):
        db = Database(np.array([[0.5, 0.5]]))
        assert db.kth_score(np.array([1.0, 0.0]), 10) == pytest.approx(0.5)

    def test_empty_db_scores(self):
        db = Database(d=2)
        ids, sc = db.scores(np.array([1.0, 0.0]))
        assert ids.size == 0 and sc.size == 0
        assert db.kth_score(np.array([1.0, 0.0]), 1) == 0.0


class TestOperations:
    def test_apply_insert(self):
        db = Database(d=2)
        op = Operation(INSERT, np.array([0.2, 0.8]))
        assert db.apply(op) == 0

    def test_apply_delete(self):
        db = Database(np.array([[0.2, 0.8]]))
        op = Operation(DELETE, np.array([0.2, 0.8]), tuple_id=0)
        assert db.apply(op) == 0
        assert len(db) == 0

    def test_delete_requires_id(self):
        db = Database(np.array([[0.2, 0.8]]))
        with pytest.raises(ValueError):
            db.apply(Operation(DELETE, np.array([0.2, 0.8])))

    def test_operation_kind_validated(self):
        with pytest.raises(ValueError):
            Operation("x", np.zeros(2))


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(),
                              st.floats(0.0, 1.0, allow_nan=False),
                              st.floats(0.0, 1.0, allow_nan=False)),
                    min_size=1, max_size=60))
def test_database_matches_reference_dict(ops):
    """Random insert/delete sequence vs a plain dict reference model."""
    db = Database(d=2)
    ref: dict[int, np.ndarray] = {}
    for is_insert, x, y in ops:
        if is_insert or not ref:
            pid = db.insert([x, y])
            ref[pid] = np.array([x, y])
        else:
            victim = sorted(ref)[len(ref) // 2]
            db.delete(victim)
            del ref[victim]
    assert len(db) == len(ref)
    assert db.ids().tolist() == sorted(ref)
    for pid, vec in ref.items():
        assert np.allclose(db.point(pid), vec)


class TestBulkAndViews:
    def test_points_fast_path_is_a_view(self, rng):
        """No-deletion databases expose points() without any copy."""
        pts = rng.random((50, 3))
        db = Database(pts)
        view = db.points()
        assert np.shares_memory(view, db._data)
        assert view.flags.c_contiguous and view.dtype == np.float64
        assert not view.flags.writeable
        assert np.array_equal(view, pts)

    def test_points_view_survives_growth(self, rng):
        db = Database(rng.random((4, 2)))
        view = db.points()
        for _ in range(40):  # force several storage reallocations
            db.insert([0.5, 0.5])
        assert view.shape == (4, 2)
        assert np.array_equal(view, db.points()[:4])

    def test_points_copy_path_after_delete(self, rng):
        db = Database(rng.random((10, 2)))
        db.delete(4)
        pts = db.points()
        assert pts.shape == (9, 2)
        assert not np.shares_memory(pts, db._data)

    def test_insert_many_assigns_sequential_ids(self, rng):
        db = Database(rng.random((5, 3)))
        ids = db.insert_many(rng.random((7, 3)))
        assert ids.tolist() == list(range(5, 12))
        assert len(db) == 12


class TestDeleteMany:
    def test_matches_repeated_delete(self, rng):
        pts = rng.random((20, 3))
        a, b = Database(pts), Database(pts)
        victims = [3, 17, 4, 9, 11, 0]
        values = a.delete_many(victims)
        expect = [b.delete(t) for t in victims]
        assert np.array_equal(values, np.asarray(expect))
        assert len(a) == len(b)
        assert a.ids().tolist() == b.ids().tolist()
        assert np.array_equal(a.points(), b.points())

    def test_tiny_batch_matches_repeated_delete(self, rng):
        pts = rng.random((10, 2))
        a, b = Database(pts), Database(pts)
        assert np.array_equal(a.delete_many([7, 2]),
                              np.asarray([b.delete(7), b.delete(2)]))
        assert a.ids().tolist() == b.ids().tolist()

    def test_empty_batch_is_noop(self, rng):
        db = Database(rng.random((5, 2)))
        out = db.delete_many([])
        assert out.shape == (0, 2)
        assert len(db) == 5

    @pytest.mark.parametrize("victims", [[1, 99], [1, 1], [2, -1]])
    def test_invalid_batch_is_atomic(self, rng, victims):
        db = Database(rng.random((6, 2)))
        with pytest.raises(KeyError):
            db.delete_many(victims)
        assert len(db) == 6  # nothing was deleted

    def test_dead_id_in_large_batch_is_atomic(self, rng):
        db = Database(rng.random((12, 2)))
        db.delete(5)
        with pytest.raises(KeyError, match="5"):
            db.delete_many([0, 1, 2, 3, 5, 6])
        assert len(db) == 11
