"""Hypothesis contract properties shared by the static baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cube import cube
from repro.baselines.dmm import dmm_greedy
from repro.baselines.eps_kernel import eps_kernel
from repro.baselines.greedy import greedy
from repro.baselines.sphere import sphere
from repro.core.regret import max_k_regret_ratio_sampled

FAST_BASELINES = [
    ("greedy-sample", lambda pts, r, seed: greedy(pts, r, method="sample",
                                                  n_samples=800, seed=seed)),
    ("dmm-greedy", lambda pts, r, seed: dmm_greedy(pts, r, per_axis=4,
                                                   seed=seed)),
    ("sphere", lambda pts, r, seed: sphere(pts, r, seed=seed,
                                           n_samples=800, n_anchors=200)),
    ("cube", lambda pts, r, seed: cube(pts, r)),
]


@settings(max_examples=15, deadline=None)
@given(n=st.integers(3, 40), r=st.integers(1, 8), seed=st.integers(0, 200))
@pytest.mark.parametrize("name,fn", FAST_BASELINES,
                         ids=[n for n, _ in FAST_BASELINES])
def test_selection_contract(name, fn, n, r, seed):
    """Every baseline returns valid, unique, in-range indices of size <= r
    (or everything when r >= n) for arbitrary inputs."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3)) + 1e-6
    idx = fn(pts, r, seed)
    assert len(idx) <= max(r, min(r, n)) or r >= n
    assert len(set(int(i) for i in idx)) == len(idx)
    assert all(0 <= int(i) < n for i in idx)
    if r >= n and name != "geo":
        assert len(idx) == n


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100))
def test_greedy_monotone_quality_in_r(seed):
    """More budget never hurts the sampled greedy's measured regret."""
    rng = np.random.default_rng(seed)
    pts = rng.random((60, 3)) + 1e-6
    utils = rng.random((800, 3)) + 1e-9
    utils /= np.linalg.norm(utils, axis=1, keepdims=True)
    vals = []
    for r in (2, 4, 8):
        idx = greedy(pts, r, method="sample", n_samples=800, seed=seed)
        vals.append(max_k_regret_ratio_sampled(pts, pts[idx], 1,
                                               utilities=utils))
    assert vals[0] >= vals[1] - 1e-9 >= vals[2] - 2e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), r=st.integers(2, 6))
def test_selected_subset_regret_consistency(seed, r):
    """The regret of a selection equals the regret of its point set
    (index bookkeeping never drifts)."""
    rng = np.random.default_rng(seed)
    pts = rng.random((30, 3)) + 1e-6
    idx = eps_kernel(pts, r, seed=seed)
    utils = rng.random((500, 3)) + 1e-9
    utils /= np.linalg.norm(utils, axis=1, keepdims=True)
    direct = max_k_regret_ratio_sampled(pts, pts[idx], 1, utilities=utils)
    copied = max_k_regret_ratio_sampled(pts, pts[idx].copy(), 1,
                                        utilities=utils)
    assert direct == copied
