"""Unit tests for regret computation, incl. the paper's worked examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regret import (
    RegretEvaluator,
    k_regret_ratio,
    max_k_regret_ratio_sampled,
    max_regret_ratio_lp,
)


class TestPaperExample1:
    """Example 1 of §II-A on the Fig. 1 database."""

    def test_top2_of_u1(self, paper_points):
        u1 = np.array([0.42, 0.91])
        order = np.argsort(-(paper_points @ u1), kind="stable")
        assert set(order[:2].tolist()) == {0, 1}          # {p1, p2}

    def test_top2_of_u2(self, paper_points):
        u2 = np.array([0.91, 0.42])
        order = np.argsort(-(paper_points @ u2), kind="stable")
        assert set(order[:2].tolist()) == {1, 3}          # {p2, p4}

    def test_rr2_of_q1(self, paper_points):
        u1 = np.array([0.42, 0.91])
        q1 = paper_points[[2, 3]]                         # {p3, p4}
        rr = k_regret_ratio(u1, paper_points, q1, k=2)
        assert rr == pytest.approx(1 - 0.749 / 0.98, abs=1e-3)

    def test_mrr2_of_q1_attained_at_e_y(self, paper_points):
        q1 = paper_points[[2, 3]]
        rr_ey = k_regret_ratio(np.array([0.0, 1.0]), paper_points, q1, k=2)
        assert rr_ey == pytest.approx(1 - 5.0 / 9.0, abs=1e-9)
        mrr = max_k_regret_ratio_sampled(paper_points, q1, k=2,
                                         n_samples=40_000, seed=0)
        assert mrr == pytest.approx(rr_ey, abs=5e-3)

    def test_q2_is_2_0_regret_set(self, paper_points):
        q2 = paper_points[[0, 1, 3]]                      # {p1, p2, p4}
        mrr = max_k_regret_ratio_sampled(paper_points, q2, k=2,
                                         n_samples=40_000, seed=0)
        assert mrr == pytest.approx(0.0, abs=1e-9)


class TestPaperExample2:
    def test_rms_2_2_value_of_p1_p4(self, paper_points):
        """Example 2 reports mrr2({p1, p4}) = ε*_{2,2} ≈ 0.05."""
        val = max_k_regret_ratio_sampled(paper_points, paper_points[[0, 3]],
                                         k=2, n_samples=40_000, seed=1)
        assert val == pytest.approx(0.05, abs=0.015)

    def test_rms_2_2_optimum_at_most_paper_value(self, paper_points):
        """The true optimum is at most the paper's ≈0.05.

        (Exhaustive search actually finds {p4, p7} marginally better
        (~0.047) than the paper's {p1, p4}; Example 2 appears to round.
        We therefore assert the optimal value, not the argmin identity.)
        """
        from itertools import combinations
        best_val = 2.0
        for combo in combinations(range(8), 2):
            val = max_k_regret_ratio_sampled(paper_points,
                                             paper_points[list(combo)], k=2,
                                             n_samples=20_000, seed=1)
            best_val = min(best_val, val)
        assert best_val <= 0.055


class TestKRegretRatio:
    def test_zero_when_q_contains_top(self, paper_points):
        u = np.array([1.0, 0.0])
        assert k_regret_ratio(u, paper_points, paper_points[[3]]) == 0.0

    def test_k_larger_than_db(self, paper_points):
        u = np.array([1.0, 0.0])
        val = k_regret_ratio(u, paper_points, paper_points[[0]], k=100)
        # ω_100 degrades to the min score (0.2); Q scores 0.2 → regret 0.
        assert val == pytest.approx(0.0)

    def test_monotone_in_k(self, paper_points, rng):
        u = rng.random(2)
        q = paper_points[[4]]
        vals = [k_regret_ratio(u, paper_points, q, k=k) for k in (1, 2, 3, 4)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_zero_score_guard(self):
        p = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert k_regret_ratio(np.array([1.0, 0.0]), p, p[[0]]) == 0.0


class TestSampledVsLp:
    def test_sampled_lower_bounds_lp(self, tiny_cloud):
        q = tiny_cloud[:5]
        lp = max_regret_ratio_lp(tiny_cloud, q)
        mc = max_k_regret_ratio_sampled(tiny_cloud, q, 1,
                                        n_samples=50_000, seed=0)
        assert mc <= lp + 1e-9
        assert mc == pytest.approx(lp, abs=0.02)

    def test_lp_prefilter_matches_full_scan(self, tiny_cloud):
        q = tiny_cloud[:6]
        assert max_regret_ratio_lp(tiny_cloud, q, prefilter="hull") == \
            pytest.approx(max_regret_ratio_lp(tiny_cloud, q, prefilter="none"),
                          abs=1e-6)

    def test_unknown_prefilter(self, tiny_cloud):
        with pytest.raises(ValueError):
            max_regret_ratio_lp(tiny_cloud, tiny_cloud[:2], prefilter="x")

    def test_full_set_has_zero_regret(self, tiny_cloud):
        assert max_regret_ratio_lp(tiny_cloud, tiny_cloud) == \
            pytest.approx(0.0, abs=1e-9)


class TestEvaluator:
    def test_frozen_testset_reproducible(self, small_cloud):
        ev1 = RegretEvaluator(4, n_samples=2000, seed=5)
        ev2 = RegretEvaluator(4, n_samples=2000, seed=5)
        q = small_cloud[:8]
        assert ev1.evaluate(small_cloud, q) == ev2.evaluate(small_cloud, q)

    def test_includes_basis(self):
        ev = RegretEvaluator(3, n_samples=10, seed=0)
        assert np.allclose(ev.utilities[:3], np.eye(3))
        assert ev.n_samples == 10

    def test_monotone_in_q(self, small_cloud):
        ev = RegretEvaluator(4, n_samples=3000, seed=0)
        small = ev.evaluate(small_cloud, small_cloud[:3])
        large = ev.evaluate(small_cloud, small_cloud[:30])
        assert large <= small + 1e-12

    def test_n_samples_validation(self):
        with pytest.raises(ValueError):
            RegretEvaluator(5, n_samples=3)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), nq=st.integers(1, 8))
def test_regret_bounds_property(seed, nq):
    """mrr is in [0, 1] and adding tuples never increases it."""
    rng = np.random.default_rng(seed)
    pts = rng.random((30, 3))
    q1 = pts[:nq]
    q2 = pts[:nq + 3]
    utils = rng.random((200, 3)) + 1e-6
    utils /= np.linalg.norm(utils, axis=1, keepdims=True)
    m1 = max_k_regret_ratio_sampled(pts, q1, 1, utilities=utils)
    m2 = max_k_regret_ratio_sampled(pts, q2, 1, utilities=utils)
    assert 0.0 <= m2 <= m1 <= 1.0


class TestCachedTestSets:
    def test_default_sample_reused_across_calls(self, rng):
        from repro.core.regret import cached_test_utilities
        a = cached_test_utilities(500, 3, seed=7)
        b = cached_test_utilities(500, 3, seed=7)
        assert a is b
        assert not a.flags.writeable
        # Different shape/seed → different draw.
        c = cached_test_utilities(500, 3, seed=8)
        assert c is not a

    def test_generator_seed_bypasses_cache(self):
        from repro.core.regret import cached_test_utilities
        g = np.random.default_rng(0)
        a = cached_test_utilities(100, 3, seed=g)
        b = cached_test_utilities(100, 3, seed=g)
        assert a is not b

    def test_evaluators_share_one_frozen_sample(self):
        e1 = RegretEvaluator(4, n_samples=300, seed=11)
        e2 = RegretEvaluator(4, n_samples=300, seed=11)
        assert e1.utilities is e2.utilities
        assert np.allclose(e1.utilities[:4], np.eye(4))

    def test_sampled_estimator_stable_across_snapshots(self, rng):
        """Same implicit test set → identical estimates for equal inputs."""
        pts = rng.random((40, 3))
        a = max_k_regret_ratio_sampled(pts, pts[:5], n_samples=400, seed=3)
        b = max_k_regret_ratio_sampled(pts, pts[:5], n_samples=400, seed=3)
        assert a == b
