"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build. This shim
lets ``python setup.py develop`` (or ``pip install -e . --no-use-pep517``)
install the package the legacy way. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
