"""Quickstart: maintain a k-regret minimizing set under updates.

Uses the unified solver API: a one-shot ``repro.solve`` call for the
static answer, then a streaming ``repro.open_session`` that keeps the
result fresh across a burst of insertions and deletions.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A database of 2,000 tuples with 4 numeric attributes in [0, 1].
    points = rng.random((2000, 4))

    # 2. One-shot: any registered algorithm through the same facade.
    once = repro.solve(points, r=10, algo="fd-rms", seed=0, evaluate=True)
    print(once.summary())

    # 3. Streaming: FD-RMS maintains a size-10 representative subset
    #    under updates. eps controls the approximate-top-k slack.
    session = repro.open_session(points, r=10, algo="fd-rms", eps=0.02,
                                 m_max=1024, seed=0)
    evaluator = repro.RegretEvaluator(d=4, n_samples=50_000, seed=1)

    def report(label: str) -> None:
        mrr = evaluator.evaluate(session.db.points(),
                                 session.result_points())
        print(f"{label:<28} |Q| = {len(session.result()):2d}   "
              f"mrr_1 = {mrr:.4f}")

    report("initial result")

    # 4. Insert a spectacular new tuple: it must enter the result.
    star = session.insert(np.array([0.99, 0.98, 0.97, 0.99]))
    assert star in session.result()
    report(f"after inserting star #{star}")

    # 5. Delete it again: the result heals without recomputation.
    session.delete(star)
    assert star not in session.result()
    report("after deleting the star")

    # 6. A burst of random updates — steady-state maintenance.
    for _ in range(500):
        if rng.random() < 0.5:
            session.insert(rng.random(4))
        else:
            alive = session.db.ids()
            session.delete(int(alive[rng.integers(alive.size)]))
    report("after 500 random updates")

    print("\nresult ids:", session.result())
    print("maintenance stats:", {k: v for k, v in session.stats().items()
                                 if k in ("inserts", "deletes", "m",
                                          "stabilize_steps")})


if __name__ == "__main__":
    main()
