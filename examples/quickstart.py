"""Quickstart: maintain a k-regret minimizing set under updates.

Builds a random database, constructs FD-RMS for RMS(k=1, r=10), applies
a handful of insertions and deletions, and evaluates the maximum regret
ratio after each step.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, FDRMS, RegretEvaluator


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A database of 2,000 tuples with 4 numeric attributes in [0, 1].
    points = rng.random((2000, 4))
    db = Database(points)

    # 2. FD-RMS maintains a size-10 representative subset. eps controls
    #    the approximate-top-k slack; m_max caps the utility sample.
    algo = FDRMS(db, k=1, r=10, eps=0.02, m_max=1024, seed=0)
    evaluator = RegretEvaluator(d=4, n_samples=50_000, seed=1)

    def report(label: str) -> None:
        mrr = evaluator.evaluate(db.points(), algo.result_points())
        print(f"{label:<28} |Q| = {len(algo.result()):2d}   "
              f"mrr_1 = {mrr:.4f}   (m = {algo.m})")

    report("initial result")

    # 3. Insert a spectacular new tuple: it must enter the result.
    star = algo.insert(np.array([0.99, 0.98, 0.97, 0.99]))
    assert star in algo.result()
    report(f"after inserting star #{star}")

    # 4. Delete it again: the result heals without recomputation.
    algo.delete(star)
    assert star not in algo.result()
    report("after deleting the star")

    # 5. A burst of random updates — steady-state maintenance.
    for _ in range(500):
        if rng.random() < 0.5:
            algo.insert(rng.random(4))
        else:
            alive = db.ids()
            algo.delete(int(alive[rng.integers(alive.size)]))
    report("after 500 random updates")

    print("\nresult ids:", algo.result())


if __name__ == "__main__":
    main()
