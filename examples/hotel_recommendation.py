"""Hotel shortlist: the paper's motivating scenario (§I).

A booking site holds thousands of hotels scored on price, rating, and
distance to destination. User preferences are unknown linear utilities,
so the site wants a *small shortlist* such that every user finds a hotel
close to her personal top-k — exactly the k-RMS problem. Prices and
availability change constantly (the fully dynamic part): rooms sell out
(deletions), new offers appear (insertions), and price updates are a
delete + insert.

The script simulates a day of inventory churn and shows that the
shortlist (a) stays small, (b) keeps the 2-regret ratio low for every
simulated visitor, and (c) is maintained in sub-millisecond time per
inventory event.

Run:  python examples/hotel_recommendation.py
"""

import time

import numpy as np

from repro import Database, FDRMS, k_regret_ratio


def make_hotels(n: int, rng: np.random.Generator) -> np.ndarray:
    """Hotels as (cheapness, rating, closeness) — higher is better."""
    price = rng.gamma(4.0, 60.0, n)                      # $ per night
    cheapness = 1.0 - np.clip(price / price.max(), 0, 1)
    rating = np.clip(rng.normal(3.9, 0.7, n), 1.0, 5.0) / 5.0
    distance_km = rng.exponential(4.0, n)
    closeness = np.exp(-distance_km / 5.0)
    # Better hotels cost more: couple rating and price mildly so the
    # skyline is realistic (nontrivial but not everything).
    rating = np.clip(0.7 * rating + 0.3 * (1.0 - cheapness), 0.0, 1.0)
    return np.column_stack([cheapness, rating, closeness])


def main() -> None:
    rng = np.random.default_rng(11)
    hotels = make_hotels(5000, rng)
    db = Database(hotels)

    # Shortlist of 8 hotels, robust against every user's top-2 choice.
    shortlist = FDRMS(db, k=2, r=8, eps=0.03, m_max=1024, seed=3)
    print(f"initial shortlist ({len(shortlist.result())} hotels): "
          f"{shortlist.result()}")

    # A day of churn: 2,000 inventory events.
    sold_out, new_offers, t_total = 0, 0, 0.0
    for _ in range(2000):
        t0 = time.perf_counter()
        if rng.random() < 0.5 and len(db) > 100:
            alive = db.ids()
            shortlist.delete(int(alive[rng.integers(alive.size)]))
            sold_out += 1
        else:
            shortlist.insert(make_hotels(1, rng)[0])
            new_offers += 1
        t_total += time.perf_counter() - t0
    print(f"processed {sold_out} sell-outs + {new_offers} new offers "
          f"at {1000 * t_total / 2000:.3f} ms/event")

    # Serve 10 visitors with random preference vectors; each should find
    # a shortlist hotel within a few percent of her true #2 hotel.
    print("\nvisitor check (2-regret ratio of the shortlist):")
    q = shortlist.result_points()
    worst = 0.0
    for visitor in range(10):
        u = rng.random(3)
        u /= np.linalg.norm(u)
        rr = k_regret_ratio(u, db.points(), q, k=2)
        worst = max(worst, rr)
        print(f"  visitor {visitor}: prefs={np.round(u, 2)}  "
              f"regret={rr:.4f}")
    print(f"worst of 10 visitors: {worst:.4f}")
    assert worst < 0.2, "shortlist quality degraded unexpectedly"


if __name__ == "__main__":
    main()
