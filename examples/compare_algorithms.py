"""Compare every k-RMS algorithm on one dynamic workload.

A miniature rendition of the paper's Fig. 6: replay the same
insert/delete workload against FD-RMS and all static baselines, print
average update time and mean maximum regret ratio side by side.

The algorithm list comes from the registry (`repro.list_algorithms`),
so a newly registered algorithm shows up here with zero edits.

Run:  python examples/compare_algorithms.py [n]
"""

import sys

from repro import list_algorithms
from repro.bench import adapter_for, run_workload
from repro.core.regret import RegretEvaluator
from repro.data import make_paper_workload
from repro.data.synthetic import anticorrelated_points


def main(n: int = 1500) -> None:
    points = anticorrelated_points(n, 4, seed=31)
    workload = make_paper_workload(points, seed=32, n_snapshots=5)
    evaluator = RegretEvaluator(d=4, n_samples=20_000, seed=33)
    r, k = 12, 1

    # LP-based greedy variants are excluded on anti-correlated data for
    # runtime reasons (the paper reports GREEDY exceeding a day there).
    names = [spec.display_name for spec in list_algorithms()
             if spec.bench
             and spec.display_name not in ("Greedy", "GeoGreedy", "Greedy*")]

    print(f"workload: n={n}, d=4 (AntiCor), {workload.n_operations} ops, "
          f"RMS(k={k}, r={r})\n")
    print(f"{'algorithm':>12} {'avg update (ms)':>16} {'mean mrr':>10} "
          f"{'final |Q|':>10}")
    rows = []
    for name in names:
        # Shared option bag: eps/m_max reach FD-RMS, others drop them.
        adapter = adapter_for(name, workload.initial, k, r, seed=34,
                              eps=0.02, m_max=1024)
        res = run_workload(adapter, workload, evaluator, k)
        rows.append((name, res))
        print(f"{name:>12} {res.avg_update_ms:>16.3f} {res.mean_mrr:>10.4f} "
              f"{res.snapshots[-1].result_size:>10}")

    fd = next(res for name, res in rows if name == "FD-RMS")
    best_static = min(res.mean_mrr for name, res in rows if name != "FD-RMS")
    print(f"\nFD-RMS quality gap to best static: "
          f"{fd.mean_mrr - best_static:+.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
