"""IoT fleet monitoring: the paper's second motivating scenario (§I).

An IoT gateway tracks thousands of sensors, each summarized by rolling
statistics (signal quality, battery, uptime, throughput, accuracy). The
operator dashboard can show only a handful of "representative" sensors,
but different operators weigh the statistics differently — again k-RMS.
Sensors connect and disconnect all the time, and every periodic stats
refresh is a delete + re-insert, so the representative set must be
maintained fully dynamically.

The script runs a simulated session with three event types (connect,
disconnect, stats refresh), comparing FD-RMS maintenance cost against
recomputing a static algorithm (SPHERE) from scratch at every change.

Run:  python examples/iot_sensor_fleet.py
"""

import time

import numpy as np

from repro import Database, FDRMS, RegretEvaluator
from repro.baselines.sphere import sphere
from repro.skyline import skyline_indices


def sensor_stats(n: int, rng: np.random.Generator) -> np.ndarray:
    """(signal, battery, uptime, throughput, accuracy) in [0, 1]."""
    base = rng.random((n, 5))
    # Weak anti-correlation: high throughput drains battery.
    base[:, 1] = np.clip(base[:, 1] - 0.3 * base[:, 3] + 0.15, 0, 1)
    return base


def main() -> None:
    rng = np.random.default_rng(23)
    db = Database(sensor_stats(3000, rng))
    dash = FDRMS(db, k=1, r=12, eps=0.02, m_max=1024, seed=5)
    evaluator = RegretEvaluator(d=5, n_samples=30_000, seed=6)

    events = {"connect": 0, "disconnect": 0, "refresh": 0}
    t_fdrms = 0.0
    for _ in range(1500):
        roll = rng.random()
        t0 = time.perf_counter()
        if roll < 0.3:
            dash.insert(sensor_stats(1, rng)[0])
            events["connect"] += 1
        elif roll < 0.55 and len(db) > 500:
            alive = db.ids()
            dash.delete(int(alive[rng.integers(alive.size)]))
            events["disconnect"] += 1
        else:
            # Stats refresh = delete + insert of the updated vector.
            alive = db.ids()
            victim = int(alive[rng.integers(alive.size)])
            old = db.point(victim)
            dash.delete(victim)
            drift = np.clip(old + rng.normal(0, 0.05, 5), 0, 1)
            dash.insert(drift)
            events["refresh"] += 1
        t_fdrms += time.perf_counter() - t0

    n_events = sum(events.values())
    print(f"events: {events}  ({n_events} total)")
    print(f"FD-RMS maintenance: {1000 * t_fdrms / n_events:.3f} ms/event")

    # What a static recompute costs on the same data, once.
    pts = db.points()
    sky = pts[skyline_indices(pts)]
    t0 = time.perf_counter()
    sphere(sky, 12, seed=5)
    t_static = time.perf_counter() - t0
    print(f"one static SPHERE recompute: {1000 * t_static:.1f} ms "
          f"(skyline size {sky.shape[0]})")

    mrr = evaluator.evaluate(pts, dash.result_points())
    print(f"dashboard set: {len(dash.result())} sensors, mrr = {mrr:.4f}")
    assert mrr < 0.15


if __name__ == "__main__":
    main()
