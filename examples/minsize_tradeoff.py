"""Size-vs-regret trade-off: how many tuples does x% regret cost?

Uses the min-size interface (the dual regime of ε-KERNEL/HS, §IV-A) to
print the ε ↦ |Q| curve for a dataset, then cross-checks one point of
the curve against FD-RMS run with that budget.

Run:  python examples/minsize_tradeoff.py
"""


from repro import Database, FDRMS, RegretEvaluator
from repro.core.minsize import min_size_curve, min_size_rms
from repro.data.synthetic import anticorrelated_points


def main() -> None:
    points = anticorrelated_points(3000, 4, seed=17)
    eps_values = [0.20, 0.10, 0.05, 0.02, 0.01]

    print("regret budget -> tuples needed (greedy hitting-set certificate)")
    curve = min_size_curve(points, eps_values, k=1, n_samples=3000, seed=18)
    for eps in eps_values:
        print(f"  mrr <= {eps:4.2f}  ->  |Q| = {curve[eps]}")

    # Pick the 5% point and sanity-check it end to end.
    target_eps = 0.05
    idx = min_size_rms(points, target_eps, k=1, n_samples=3000, seed=18)
    evaluator = RegretEvaluator(d=4, n_samples=50_000, seed=19)
    achieved = evaluator.evaluate(points, points[idx])
    print(f"\nmin-size at eps={target_eps}: {len(idx)} tuples, "
          f"measured mrr = {achieved:.4f}")

    # Give FD-RMS the same budget: it should land in the same regret
    # ballpark while staying maintainable under updates.
    r = max(4, len(idx))
    db = Database(points)
    algo = FDRMS(db, k=1, r=r, eps=0.02, m_max=2048, seed=20)
    fd = evaluator.evaluate(points, algo.result_points())
    print(f"FD-RMS with r={r}: |Q| = {len(algo.result())}, mrr = {fd:.4f}")
    print(f"maintenance stats: {algo.statistics()}")


if __name__ == "__main__":
    main()
