"""Fig. 7 — update time and maximum k-regret ratio vs k.

Only the k-capable algorithms compete: FD-RMS, GREEDY*, ε-KERNEL, HS.
Paper shapes to reproduce:

* every algorithm slows down as k grows (top-k maintenance for FD-RMS,
  full-database validation for HS/ε-KERNEL, more LP work for GREEDY*);
* the maximum k-regret ratio *drops* with k (by definition: ω_k shrinks);
* FD-RMS achieves the best efficiency and competitive quality.
"""

import pytest

from repro.bench.experiments import experiment_vary_k, format_series_table

from _common import CFG, emit, fig5_datasets

ALGOS = ["FD-RMS", "Greedy*", "eps-Kernel", "HS"]


@pytest.mark.parametrize("dataset", ["Indep", "AntiCor"])
def test_fig7_vary_k(benchmark, dataset):
    points = fig5_datasets()[dataset]
    k_values = CFG["k_values"]
    r = 10  # paper: r=10 for BB and Indep

    def sweep():
        return experiment_vary_k(points, ALGOS, k_values=k_values, r=r,
                                 seed=8, eval_samples=CFG["n_eval"],
                                 fdrms_eps="auto", m_max=CFG["m_max"],
                                 n_snapshots=CFG["snapshots"])

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_t = format_series_table(results, x_label="k",
                                  metric="avg_update_ms")
    table_q = format_series_table(results, x_label="k", metric="mean_mrr",
                                  fmt="{:>10.4f}")
    emit(f"fig7_vary_k_{dataset}",
         f"[update time, ms]\n{table_t}\n[mean mrr]\n{table_q}")

    k_lo, k_hi = min(k_values), max(k_values)
    for name in ALGOS:
        # mrr_k decreases with k by definition.
        assert results[name][k_hi].mean_mrr <= \
            results[name][k_lo].mean_mrr + 0.02, name
    # FD-RMS quality within a modest gap of HS (the strongest baseline).
    for k in k_values:
        assert results["FD-RMS"][k].mean_mrr <= \
            results["HS"][k].mean_mrr + 0.08
