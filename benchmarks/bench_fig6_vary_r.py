"""Fig. 6 — update time and maximum regret ratio vs result size r (k=1).

All eight algorithms of the paper compete on a dynamic workload. Paper
shapes to reproduce:

* GREEDY is the slowest algorithm by orders of magnitude;
* SPHERE and FD-RMS achieve the best overall quality/efficiency mix;
* FD-RMS's advantage over static algorithms is largest on large-skyline
  data (AntiCor/CT-like);
* mrr decreases as r grows for every algorithm.
"""

import pytest

from repro.bench.experiments import experiment_vary_r, format_series_table

from _common import CFG, emit, fig5_datasets

ALGOS = ["FD-RMS", "Sphere", "HS", "eps-Kernel", "DMM-RRMS", "DMM-Greedy",
         "GeoGreedy", "Greedy"]

# The paper reports GREEDY exceeding one day on large-skyline data
# (AQ/CT/AntiCor, r > 80) and GEOGREEDY failing past d ≈ 7; their LP
# loops are equally prohibitive on AntiCor's ~90% skyline at bench scale,
# so — like the paper's plots — those curves are omitted there.
ALGOS_BY_DATASET = {
    "Indep": ALGOS,
    "AntiCor": [a for a in ALGOS if a not in ("Greedy", "GeoGreedy")],
}


@pytest.mark.parametrize("dataset", ["Indep", "AntiCor"])
def test_fig6_vary_r(benchmark, dataset):
    points = fig5_datasets()[dataset]
    r_values = CFG["r_values"]
    algos = ALGOS_BY_DATASET[dataset]

    def sweep():
        return experiment_vary_r(points, algos, r_values=r_values, k=1,
                                 seed=6, eval_samples=CFG["n_eval"],
                                 fdrms_eps="auto", m_max=CFG["m_max"],
                                 n_snapshots=CFG["snapshots"])

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_t = format_series_table(results, x_label="r",
                                  metric="avg_update_ms")
    table_q = format_series_table(results, x_label="r", metric="mean_mrr",
                                  fmt="{:>10.4f}")
    emit(f"fig6_vary_r_{dataset}",
         f"[update time, ms]\n{table_t}\n[mean mrr]\n{table_q}")

    r_lo, r_hi = min(r_values), max(r_values)
    for name in algos:
        series = results[name]
        # Quality improves (weakly) with r.
        assert series[r_hi].mean_mrr <= series[r_lo].mean_mrr + 0.02, name
    # Headline: FD-RMS updates are cheaper than the LP greedy recompute
    # protocol at every r (where Greedy runs at all).
    if "Greedy" in algos:
        for r in r_values:
            assert results["FD-RMS"][r].avg_update_ms < \
                results["Greedy"][r].avg_update_ms
    # Quality parity: FD-RMS within a small gap of the best baseline.
    for r in r_values:
        best = min(results[n][r].mean_mrr for n in algos if n != "FD-RMS")
        assert results["FD-RMS"][r].mean_mrr <= best + 0.06
