"""Table I — dataset statistics (n, d, #skyline).

Regenerates the paper's dataset table on the simulated stand-ins: for
every dataset report n, d, and the skyline size, and benchmark the
skyline computation itself. At ``REPRO_BENCH_SCALE=paper`` the real
Table I sizes are generated; at smaller scales the *skyline fraction*
is the comparable quantity (Table I fractions: BB 0.9%, AQ 5.5%,
CT 13.3%, Movie 25.0%).
"""

import pytest

from repro.data import DATASET_SPECS, make_dataset
from repro.skyline import skyline_indices

from _common import CFG, SCALE, emit

DATASETS = ["BB", "AQ", "CT", "Movie", "Indep", "AntiCor"]


@pytest.fixture(scope="module")
def generated():
    n = None if SCALE == "paper" else CFG["n"]
    return {name: make_dataset(name, n=n, seed=7) for name in DATASETS}


def test_table1_statistics(benchmark, generated):
    rows = {}

    def compute_all():
        out = {}
        for name, pts in generated.items():
            out[name] = skyline_indices(pts).size
        return out

    rows = benchmark.pedantic(compute_all, rounds=1, iterations=1)
    lines = [f"{'dataset':>8} {'n':>9} {'d':>3} {'#skyline':>9} "
             f"{'fraction':>9} {'paper-frac':>10}"]
    for name in DATASETS:
        pts = generated[name]
        frac = rows[name] / pts.shape[0]
        if name in DATASET_SPECS:
            spec = DATASET_SPECS[name]
            paper_frac = f"{spec.skyline / spec.n:9.3%}"
        else:
            paper_frac = "   (fig.4)"
        lines.append(f"{name:>8} {pts.shape[0]:>9} {pts.shape[1]:>3} "
                     f"{rows[name]:>9} {frac:9.3%} {paper_frac:>10}")
    emit("table1_datasets", "\n".join(lines))
    # Shape check mirroring Table I's ordering of skyline fractions.
    frac = {name: rows[name] / generated[name].shape[0]
            for name in DATASETS}
    assert frac["BB"] < frac["AQ"] < frac["Movie"]
    assert frac["Indep"] < frac["AntiCor"]
