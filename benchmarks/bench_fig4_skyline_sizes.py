"""Fig. 4 — skyline sizes of the synthetic datasets.

Left panel: #skyline vs dimensionality d (n fixed).
Right panel: #skyline vs dataset size n (d fixed at 6).

Paper shape to reproduce: AntiCor skylines are 1-2 orders of magnitude
larger than Indep at equal (n, d); both grow steeply with d and mildly
with n.
"""


from repro.data.synthetic import anticorrelated_points, independent_points
from repro.skyline import skyline_indices

from _common import CFG, emit


def test_fig4_skyline_vs_dimension(benchmark):
    n = CFG["n"]
    d_values = CFG["d_sweep"]

    def sweep():
        out = {}
        for d in d_values:
            indep = independent_points(n, d, seed=40 + d)
            anti = anticorrelated_points(n, d, seed=40 + d)
            out[d] = (skyline_indices(indep).size, skyline_indices(anti).size)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'d':>4} {'Indep':>8} {'AntiCor':>8}"]
    for d, (si, sa) in result.items():
        lines.append(f"{d:>4} {si:>8} {sa:>8}")
    emit("fig4_skyline_vs_d", "\n".join(lines))
    d_lo, d_hi = min(d_values), max(d_values)
    assert result[d_hi][0] > result[d_lo][0], "Indep skyline must grow with d"
    assert result[d_hi][1] > result[d_lo][1], "AntiCor skyline must grow with d"
    for d in d_values:
        assert result[d][1] > result[d][0], "AntiCor skyline must exceed Indep"


def test_fig4_skyline_vs_size(benchmark):
    d = 6
    n_values = CFG["n_sweep"]

    def sweep():
        out = {}
        for n in n_values:
            indep = independent_points(n, d, seed=50)
            anti = anticorrelated_points(n, d, seed=50)
            out[n] = (skyline_indices(indep).size, skyline_indices(anti).size)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'n':>9} {'Indep':>8} {'AntiCor':>8}"]
    for n, (si, sa) in result.items():
        lines.append(f"{n:>9} {si:>8} {sa:>8}")
    emit("fig4_skyline_vs_n", "\n".join(lines))
    n_lo, n_hi = min(n_values), max(n_values)
    assert result[n_hi][0] >= result[n_lo][0]
    assert result[n_hi][1] > result[n_lo][1]
