"""Extension — comparing regret objectives (max / average / rank).

The paper's §V separates the k-RMS objective (maximum score regret)
from two related formulations: average regret minimization (ARM) and
the rank-regret representative (RRR). This extension bench builds one
result per objective on the same data and cross-scores all three, which
makes the trade-offs concrete: the max-regret set protects the worst
user, ARM the typical user, RRR the rank semantics.
"""


from repro.baselines.arm import arm_greedy, average_regret
from repro.baselines.greedy import greedy
from repro.baselines.rrr import rank_regret, rrr_greedy
from repro.core.regret import max_k_regret_ratio_sampled
from repro.data.synthetic import independent_points
from repro.skyline import skyline_indices

from _common import CFG, emit


def test_ext_objective_comparison(benchmark):
    n = min(CFG["n"], 1500)
    points = independent_points(n, 4, seed=120)
    sky = points[skyline_indices(points)]
    r = 15

    def run():
        sel = {
            "max-regret (GREEDY)": sky[greedy(sky, r, method="sample",
                                              n_samples=8000, seed=121)],
            "avg-regret (ARM)": sky[arm_greedy(sky, r, seed=121,
                                               n_samples=8000)],
            "rank-regret (RRR)": sky[rrr_greedy(sky, r, k=1, seed=121,
                                                n_samples=8000)],
        }
        out = {}
        for name, q in sel.items():
            out[name] = (
                max_k_regret_ratio_sampled(points, q, 1, n_samples=20_000,
                                           seed=122),
                average_regret(points, q, n_samples=20_000, seed=122),
                rank_regret(points, q, n_samples=5_000, seed=122),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'objective':>22} {'max rr':>8} {'avg rr':>8} {'max rank':>9}"]
    for name, (mx, avg, rank) in results.items():
        lines.append(f"{name:>22} {mx:>8.4f} {avg:>8.5f} {rank:>9}")
    emit("ext_objectives", "\n".join(lines))

    # Each specialist should win (or tie) its own metric.
    assert results["max-regret (GREEDY)"][0] <= \
        results["rank-regret (RRR)"][0] + 0.03
    assert results["avg-regret (ARM)"][1] <= \
        results["max-regret (GREEDY)"][1] + 0.005
    assert results["rank-regret (RRR)"][2] <= \
        results["avg-regret (ARM)"][2] + max(3, n // 100)
