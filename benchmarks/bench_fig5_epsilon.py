"""Fig. 5 — effect of the parameter ε on FD-RMS.

For each dataset, sweep ε and report FD-RMS's average update time and
maximum regret ratio (k = 1). Paper shape to reproduce: update time
*increases* with ε (denser top-k sets, larger m), while quality first
improves with ε (larger m → smaller δ) and then flattens/degrades once
ε exceeds the optimal regret ε*_{k,r}.
"""

import pytest

from repro.bench.experiments import experiment_epsilon_sweep, format_series_table

from _common import CFG, emit, fig5_datasets

EPS_VALUES = (0.0001, 0.0016, 0.0064, 0.0256, 0.1024)


@pytest.mark.parametrize("dataset", ["BB-like", "Indep", "AntiCor"])
def test_fig5_epsilon_sweep(benchmark, dataset):
    points = fig5_datasets()[dataset]
    r = 20 if dataset == "BB-like" else 30  # paper: r=20 on BB, 50 elsewhere

    def sweep():
        return experiment_epsilon_sweep(
            points, k=1, r=r, eps_values=EPS_VALUES,
            m_max=CFG["m_max"], seed=5, eval_samples=CFG["n_eval"],
            n_snapshots=CFG["snapshots"])

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_t = format_series_table({"FD-RMS": results}, x_label="eps",
                                  metric="avg_update_ms")
    table_q = format_series_table({"FD-RMS": results}, x_label="eps",
                                  metric="mean_mrr", fmt="{:>10.4f}")
    emit(f"fig5_eps_{dataset}",
         f"[update time, ms]\n{table_t}\n[mean mrr]\n{table_q}")

    # Shape assertions: larger ε must not be dramatically faster, and the
    # best quality must not be at the smallest ε (the paper's "quality
    # first improves with ε").
    eps_sorted = sorted(results)
    t_small = results[eps_sorted[0]].avg_update_ms
    t_large = results[eps_sorted[-1]].avg_update_ms
    assert t_large >= 0.3 * t_small
    q = {e: results[e].mean_mrr for e in eps_sorted}
    assert min(q, key=q.get) != eps_sorted[0] or \
        q[eps_sorted[0]] <= min(q.values()) + 5e-3
