"""Scenario benchmark: replay every built-in scenario, emit a trajectory.

For each scenario in the built-in catalogue this script

1. compiles the scenario twice and checks the trace content hashes
   match (determinism of the compiler itself);
2. replays the trace with each requested algorithm through the
   streaming Session API, collecting per-op latency percentiles,
   regret-over-time at the snapshot marks, and engine counters.

Results go to stdout and to ``BENCH_scenarios.json`` at the repo root
so future PRs can regress-check scenario throughput. The process exits
non-zero when any trace hash is unstable across compiles.

``--write-hashes PATH`` additionally writes the compiled trace hashes
as a ``{"<scenario>:n=<n>:seed=<seed>": "sha256:..."}`` golden file —
used to regenerate ``benchmarks/scenario_hashes.json``, which the CI
scenario-matrix job pins with ``repro replay --expect-hashes``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
    PYTHONPATH=src python benchmarks/bench_scenarios.py          # full
    PYTHONPATH=src python benchmarks/bench_scenarios.py --n 400 \
        --hashes-only --write-hashes benchmarks/scenario_hashes.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.core.regret import RegretEvaluator
from repro.scenarios import (
    get_scenario,
    hash_key,
    replay_trace,
    scenario_names,
)
from repro.scenarios.replay import EVAL_SEED, floor_r


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=800,
                    help="dataset size for every scenario")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--r", type=int, default=10)
    ap.add_argument("--k", type=int, default=1)
    ap.add_argument("--eps", type=float, default=0.1)
    ap.add_argument("--m-max", type=int, default=128, dest="m_max")
    ap.add_argument("--eval-samples", type=int, default=1000,
                    dest="eval_samples")
    ap.add_argument("--algorithms", nargs="+",
                    default=["FD-RMS", "Greedy"])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes for CI (n=300, 400 eval samples)")
    ap.add_argument("--hashes-only", action="store_true",
                    help="compile and hash only; skip the replays")
    ap.add_argument("--write-hashes", type=Path, default=None,
                    help="write a golden trace-hash JSON file here")
    ap.add_argument("--out", type=Path,
                    default=Path(__file__).resolve().parents[1]
                    / "BENCH_scenarios.json")
    args = ap.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 300)
        args.eval_samples = min(args.eval_samples, 400)

    report: dict = {
        "benchmark": "scenarios",
        "config": {"n": args.n, "seed": args.seed, "r": args.r,
                   "k": args.k, "eps": args.eps, "m_max": args.m_max,
                   "eval_samples": args.eval_samples,
                   "quick": bool(args.quick)},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scenarios": {},
    }
    options = {"eps": args.eps, "m_max": args.m_max}
    hashes: dict[str, str] = {}
    stable = True
    for name in scenario_names():
        scenario = get_scenario(name)
        trace = scenario.compile(seed=args.seed, n=args.n)
        again = scenario.compile(seed=args.seed, n=args.n)
        if trace.content_hash != again.content_hash:
            stable = False
            print(f"FAIL: {name} compiled to different traces "
                  f"({trace.content_hash} vs {again.content_hash})",
                  file=sys.stderr)
        hashes[hash_key(name, args.n, args.seed)] = trace.content_hash
        entry: dict = {
            "trace_hash": trace.content_hash,
            "n_ops": trace.n_operations,
            "d": trace.d,
            "dataset": scenario.dataset,
            "batched": trace.batch_plan is not None,
            "algorithms": {},
        }
        report["scenarios"][name] = entry
        print(f"\n--- scenario {name}: {trace.n_operations} ops on "
              f"{scenario.dataset} (d={trace.d}), {trace.content_hash[:23]}"
              f"... ---")
        if args.hashes_only:
            continue
        evaluator = RegretEvaluator(trace.d, n_samples=args.eval_samples,
                                    seed=EVAL_SEED)
        r_eff = floor_r(args.r, trace.d)
        if r_eff != args.r:
            print(f"(r raised to {r_eff} = d for this scenario)")
        for algo in args.algorithms:
            res = replay_trace(trace, algo, r=r_eff, k=args.k,
                               seed=args.seed, evaluator=evaluator,
                               options=options)
            entry["algorithms"][res.algorithm] = res.to_dict()
            lat = res.latency_percentiles()
            ops_s = (res.n_operations / res.update_seconds
                     if res.update_seconds > 0 else float("inf"))
            print(f"{res.algorithm:>12}: init {res.init_seconds:6.2f}s  "
                  f"updates {res.update_seconds:7.2f}s "
                  f"({ops_s:9.0f} op/s)  p50 {lat['p50']:7.3f} ms  "
                  f"p99 {lat['p99']:7.3f} ms  mean mrr {res.mean_mrr:.4f}")

    if args.write_hashes:
        args.write_hashes.write_text(json.dumps(hashes, indent=2,
                                                sort_keys=True) + "\n")
        print(f"\ngolden hashes written to {args.write_hashes}")
    if not args.hashes_only:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.out}")
    if not stable:
        print("FAIL: scenario compilation is not deterministic",
              file=sys.stderr)
        return 1
    print("OK: every scenario compiled to a stable trace hash")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
