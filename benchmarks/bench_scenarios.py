"""Scenario benchmark: replay every built-in scenario, emit a trajectory.

For each scenario in the built-in catalogue this script

1. compiles the scenario twice and checks the trace content hashes
   match (determinism of the compiler itself);
2. replays the trace with each requested algorithm through the
   streaming Session API, collecting per-op latency percentiles,
   regret-over-time at the snapshot marks, and engine counters.

Results go to stdout and to ``BENCH_scenarios.json`` at the repo root
so future PRs can regress-check scenario throughput. The process exits
non-zero when any trace hash is unstable across compiles.

``--write-hashes PATH`` additionally writes the compiled trace hashes
as a ``{"<scenario>:n=<n>:seed=<seed>": "sha256:..."}`` golden file —
used to regenerate ``benchmarks/scenario_hashes.json``, which the CI
scenario-matrix job pins with ``repro replay --expect-hashes``.

``--baseline PATH`` reads a committed ``BENCH_scenarios.json`` before
this run overwrites it and records, per (scenario, algorithm), the
baseline's ops/second and the fresh-vs-baseline throughput ratio.
``--gate-scenarios`` turns that into a hard gate: the named scenarios'
gate algorithm must reach ``--min-speedup × (1 - --tolerance)`` of the
baseline throughput or the process exits non-zero (the perf-smoke CI
job runs this; the tolerance absorbs runner-to-runner wall-clock
noise, same philosophy as ``bench_hotpath.py --baseline``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick
    PYTHONPATH=src python benchmarks/bench_scenarios.py          # full
    PYTHONPATH=src python benchmarks/bench_scenarios.py --n 400 \
        --hashes-only --write-hashes benchmarks/scenario_hashes.json
    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick \
        --baseline BENCH_scenarios.json \
        --gate-scenarios delete-heavy mixed-batch \
        --min-speedup 1.3 --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

from repro.core.regret import RegretEvaluator
from repro.persist.atomic import write_json_atomic
from repro.scenarios import (
    get_scenario,
    hash_key,
    replay_trace,
    scenario_names,
)
from repro.scenarios.replay import EVAL_SEED, floor_r


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=800,
                    help="dataset size for every scenario")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--r", type=int, default=10)
    ap.add_argument("--k", type=int, default=1)
    ap.add_argument("--eps", type=float, default=0.1)
    ap.add_argument("--m-max", type=int, default=128, dest="m_max")
    ap.add_argument("--eval-samples", type=int, default=1000,
                    dest="eval_samples")
    ap.add_argument("--algorithms", nargs="+",
                    default=["FD-RMS", "Greedy"])
    ap.add_argument("--quick", action="store_true",
                    help="small sizes for CI (n=300, 400 eval samples)")
    ap.add_argument("--repeats", type=int, default=1,
                    help="replays per (scenario, algorithm); the "
                         "fastest wall time is recorded (one-shot "
                         "throughput numbers are noisy)")
    ap.add_argument("--hashes-only", action="store_true",
                    help="compile and hash only; skip the replays")
    ap.add_argument("--write-hashes", type=Path, default=None,
                    help="write a golden trace-hash JSON file here")
    ap.add_argument("--out", type=Path,
                    default=Path(__file__).resolve().parents[1]
                    / "BENCH_scenarios.json")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="committed BENCH_scenarios.json to compare "
                         "throughput against (read before --out "
                         "overwrites it)")
    ap.add_argument("--gate-scenarios", nargs="+", default=None,
                    dest="gate_scenarios", metavar="SCENARIO",
                    help="fail unless these scenarios reach the gated "
                         "speedup vs the baseline")
    ap.add_argument("--gate-algorithm", default="FD-RMS",
                    dest="gate_algorithm",
                    help="algorithm whose throughput the gate checks")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    dest="min_speedup",
                    help="required fresh/baseline ops-per-second ratio")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed relative shortfall of the required "
                         "ratio (absorbs machine differences)")
    args = ap.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 300)
        args.eval_samples = min(args.eval_samples, 400)

    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        base_cfg = baseline.get("config", {})
        if args.gate_scenarios and base_cfg.get("n") != args.n:
            # Ops/second scale with n; a cross-size comparison would
            # gate nothing meaningful.
            print(f"note: baseline measured at n={base_cfg.get('n')}, "
                  f"this run uses n={args.n}; throughput ratios are "
                  "approximate")

    report: dict = {
        "benchmark": "scenarios",
        "config": {"n": args.n, "seed": args.seed, "r": args.r,
                   "k": args.k, "eps": args.eps, "m_max": args.m_max,
                   "eval_samples": args.eval_samples,
                   "quick": bool(args.quick)},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scenarios": {},
    }
    options = {"eps": args.eps, "m_max": args.m_max}
    hashes: dict[str, str] = {}
    stable = True
    deterministic = True
    for name in scenario_names():
        scenario = get_scenario(name)
        trace = scenario.compile(seed=args.seed, n=args.n)
        again = scenario.compile(seed=args.seed, n=args.n)
        if trace.content_hash != again.content_hash:
            stable = False
            print(f"FAIL: {name} compiled to different traces "
                  f"({trace.content_hash} vs {again.content_hash})",
                  file=sys.stderr)
        hashes[hash_key(name, args.n, args.seed)] = trace.content_hash
        entry: dict = {
            "trace_hash": trace.content_hash,
            "n_ops": trace.n_operations,
            "d": trace.d,
            "dataset": scenario.dataset,
            "batched": trace.batch_plan is not None,
            "algorithms": {},
        }
        report["scenarios"][name] = entry
        print(f"\n--- scenario {name}: {trace.n_operations} ops on "
              f"{scenario.dataset} (d={trace.d}), {trace.content_hash[:23]}"
              f"... ---")
        if args.hashes_only:
            continue
        evaluator = RegretEvaluator(trace.d, n_samples=args.eval_samples,
                                    seed=EVAL_SEED)
        r_eff = floor_r(args.r, trace.d)
        if r_eff != args.r:
            print(f"(r raised to {r_eff} = d for this scenario)")
        for algo in args.algorithms:
            res = replay_trace(trace, algo, r=r_eff, k=args.k,
                               seed=args.seed, evaluator=evaluator,
                               options=options)
            for _ in range(max(0, args.repeats - 1)):
                again_res = replay_trace(trace, algo, r=r_eff, k=args.k,
                                         seed=args.seed,
                                         evaluator=evaluator,
                                         options=options)
                if (again_res.determinism_digest()
                        != res.determinism_digest()):
                    deterministic = False
                    print(f"FAIL: {name}/{algo} replays disagree "
                          "digest-for-digest", file=sys.stderr)
                if again_res.update_seconds < res.update_seconds:
                    res = again_res
            summary = res.to_dict()
            lat = res.latency_percentiles()
            ops_s = (res.ops_per_second if res.ops_per_second is not None
                     else float("inf"))
            speedup_note = ""
            if baseline is not None:
                prev = (baseline.get("scenarios", {}).get(name, {})
                        .get("algorithms", {}).get(res.algorithm, {})
                        .get("ops_per_second"))
                if prev:
                    summary["baseline_ops_per_second"] = prev
                    summary["speedup_vs_baseline"] = round(
                        ops_s / float(prev), 2)
                    speedup_note = (f"  ({summary['speedup_vs_baseline']:.2f}x "
                                    "vs baseline)")
            entry["algorithms"][res.algorithm] = summary
            print(f"{res.algorithm:>12}: init {res.init_seconds:6.2f}s  "
                  f"updates {res.update_seconds:7.2f}s "
                  f"({ops_s:9.0f} op/s)  p50 {lat['p50']:7.3f} ms  "
                  f"p99 {lat['p99']:7.3f} ms  mean mrr {res.mean_mrr:.4f}"
                  f"{speedup_note}")
        if scenario.service:
            entry["supervised"] = _supervised_leg(
                trace, scenario, evaluator, r_eff, args, options)

    if args.write_hashes:
        write_json_atomic(args.write_hashes, hashes, sort_keys=True)
        print(f"\ngolden hashes written to {args.write_hashes}")
    if not args.hashes_only:
        write_json_atomic(args.out, report)
        print(f"\nwrote {args.out}")
    if not stable:
        print("FAIL: scenario compilation is not deterministic",
              file=sys.stderr)
        return 1
    if not deterministic:
        print("FAIL: replays of the same trace disagree "
              "digest-for-digest", file=sys.stderr)
        return 1
    if args.gate_scenarios and not args.hashes_only:
        if not _check_gate(report, args):
            return 1
    print("OK: every scenario compiled to a stable trace hash")
    return 0


def _supervised_leg(trace, scenario, evaluator, r_eff, args,
                    options) -> dict:
    """Replay through the session supervisor; record SLO fields.

    Runs only for scenarios carrying service hints (the overload /
    chaos builtins). The recorded p99 admission latency is what the CI
    chaos-smoke job gates; the final state digest lets any consumer
    cross-check the supervised run against an unsupervised one.
    """
    from repro.service.driver import ServiceOptions
    from repro.service.policy import SupervisorConfig

    hints = dict(scenario.service)
    read_every = int(hints.pop("read_every", 0))
    tenants = int(hints.pop("tenants", 4))
    service = ServiceOptions(config=SupervisorConfig(**hints),
                             read_every=read_every, tenants=tenants)
    res = replay_trace(trace, "fd-rms", r=r_eff, k=args.k,
                       seed=args.seed, evaluator=evaluator,
                       options=options, service=service)
    srep = res.service
    adm = srep.get("admission_latency_ms", {})
    out = {
        "admission_latency_ms": adm,
        "waves": srep.get("waves", 0),
        "resumed_pumps": srep.get("resumed_pumps", 0),
        "stale_serves": srep.get("stale_serves", 0),
        "fresh_serves": srep.get("fresh_serves", 0),
        "backpressure_events": srep.get("backpressure_events", 0),
        "max_queue_depth": srep.get("max_queue_depth", 0),
        "final_state_digest": srep.get("final_state_digest"),
        "result_digest": srep.get("result_digest"),
    }
    print(f"{'supervised':>12}: admission p50 {adm.get('p50', 0.0):7.3f} "
          f"ms  p99 {adm.get('p99', 0.0):7.3f} ms  "
          f"waves {out['waves']}  stale {out['stale_serves']}  "
          f"fresh {out['fresh_serves']}")
    return out


def _check_gate(report: dict, args) -> bool:
    """Throughput gate against the committed scenario baseline.

    Every gated scenario's gate algorithm must reach ``min_speedup ×
    (1 - tolerance)`` of the baseline's recorded ops/second. A gated
    scenario without a comparable baseline entry fails loudly — a
    silently skipped gate reads as a pass.
    """
    ok = True
    for name in args.gate_scenarios:
        entry = (report.get("scenarios", {}).get(name, {})
                 .get("algorithms", {}).get(args.gate_algorithm))
        if not entry or "speedup_vs_baseline" not in entry:
            print(f"FAIL: perf gate for {name!r}/{args.gate_algorithm} "
                  "has no baseline to compare against (missing "
                  "--baseline entry?)", file=sys.stderr)
            ok = False
            continue
        got = float(entry["speedup_vs_baseline"])
        floor = args.min_speedup * (1.0 - args.tolerance)
        if got < floor:
            print(f"FAIL: {name}: {args.gate_algorithm} throughput "
                  f"{got:.2f}x of baseline fell below {floor:.2f}x "
                  f"(required {args.min_speedup:.2f}x, tolerance "
                  f"{args.tolerance:.0%})", file=sys.stderr)
            ok = False
        else:
            print(f"perf gate: {name}: {args.gate_algorithm} "
                  f"{got:.2f}x of baseline >= {floor:.2f}x "
                  f"(required {args.min_speedup:.2f}x, tolerance "
                  f"{args.tolerance:.0%})")
    if ok:
        print("OK: scenario throughput gate passed")
    return ok


if __name__ == "__main__":
    raise SystemExit(main())
