"""Extension — where does an FD-RMS update spend its time?

§III-B's complexity analysis splits the update cost into top-k
maintenance (``O(u(Δ_t)·n_t)``) and set-cover maintenance
(``O(m² log m)``). This bench measures the split empirically with the
component profiler, at two values of m (the cover share should grow
with m).

It also breaks down the **cold start** (engine build) into its phases —
bootstrap GEMM + partition, tree builds, membership fill, set-cover
greedy, and the dynamic-skyline build the recompute wrapper pays — the
same numbers ``bench_hotpath`` publishes to ``BENCH_hotpath.json``.
"""

import time

from repro.api.session import FDRMSSession, RecomputeSession
from repro.bench.profile import ProfiledFDRMS
from repro.data import Database, make_paper_workload
from repro.data.database import INSERT
from repro.data.synthetic import independent_points

from _common import CFG, emit


def _drive(points, workload, r, eps, m_max, seed):
    db = Database(workload.initial)
    algo = ProfiledFDRMS(db, 1, r, eps, m_max=m_max, seed=seed)
    t0 = time.perf_counter()
    for _, op, _ in workload.replay():
        if op.kind == INSERT:
            algo.insert(op.point)
        else:
            algo.delete(op.tuple_id)
    total = time.perf_counter() - t0
    return algo, total


def test_profile_component_split(benchmark):
    n = min(CFG["n"], 1500)
    points = independent_points(n, 4, seed=95)
    workload = make_paper_workload(points, seed=96)

    def run():
        small = _drive(points, workload, 10, 0.02, 128, seed=97)
        large = _drive(points, workload, 10, 0.08, CFG["m_max"], seed=97)
        return small, large

    (algo_s, t_s), (algo_l, t_l) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    lines = [f"{'config':>22} {'topk ms':>9} {'cover ms':>9} "
             f"{'total s':>8} {'m':>6}"]
    for label, algo, total in [("m_max=128, eps=0.02", algo_s, t_s),
                               (f"m_max={CFG['m_max']}, eps=0.08", algo_l, t_l)]:
        parts = algo.breakdown()
        lines.append(f"{label:>22} {1000 * parts.get('topk', 0):>9.1f} "
                     f"{1000 * parts.get('cover', 0):>9.1f} "
                     f"{total:>8.2f} {algo.m:>6}")
    emit("profile_components", "\n".join(lines))
    # Both components must be visible, and raising m/eps must raise the
    # cover-side share (the m² log m term of §III-B).
    ps, pl = algo_s.breakdown(), algo_l.breakdown()
    assert ps.get("topk", 0) > 0 and ps.get("cover", 0) > 0
    share_s = ps["cover"] / (ps["cover"] + ps["topk"])
    share_l = pl["cover"] / (pl["cover"] + pl["topk"])
    assert share_l >= share_s * 0.5  # never collapses when m grows


def test_profile_cold_start(benchmark):
    """Phase breakdown of the engine build (and the skyline init)."""
    n = min(CFG["n"], 4000)
    points = independent_points(n, 5, seed=98)

    def run():
        fd = FDRMSSession(points, r=10, k=1, eps=0.05,
                          m_max=CFG["m_max"], seed=99)
        static = RecomputeSession(points, lambda pool: [0],
                                  name="probe", use_skyline=True)
        return fd, static

    fd, static = benchmark.pedantic(run, rounds=1, iterations=1)
    phases = dict(fd.init_profile)
    phases["skyline_init"] = static.init_profile["skyline_init"]
    width = max(len(k) for k in phases)
    lines = [f"cold start at n={n} (FD-RMS build {fd.init_seconds:.3f}s, "
             f"skyline {static.init_seconds:.3f}s)"]
    lines += [f"  {k:<{width}} {1e3 * v:8.1f} ms"
              for k, v in phases.items()]
    emit("profile_cold_start", "\n".join(lines))
    # Every phase must be present and account for most of the build.
    for key in ("kdtree_build", "conetree_build", "bootstrap_gemm",
                "membership_fill", "cover_greedy", "skyline_init"):
        assert key in phases and phases[key] >= 0.0
    covered = sum(fd.init_profile.values())
    assert covered <= fd.init_seconds * 1.05
    assert covered >= fd.init_seconds * 0.5
