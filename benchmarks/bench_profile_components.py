"""Extension — where does an FD-RMS update spend its time?

§III-B's complexity analysis splits the update cost into top-k
maintenance (``O(u(Δ_t)·n_t)``) and set-cover maintenance
(``O(m² log m)``). This bench measures the split empirically with the
component profiler, at two values of m (the cover share should grow
with m).
"""

import time


from repro.bench.profile import ProfiledFDRMS
from repro.data import Database, make_paper_workload
from repro.data.database import INSERT
from repro.data.synthetic import independent_points

from _common import CFG, emit


def _drive(points, workload, r, eps, m_max, seed):
    db = Database(workload.initial)
    algo = ProfiledFDRMS(db, 1, r, eps, m_max=m_max, seed=seed)
    t0 = time.perf_counter()
    for _, op, _ in workload.replay():
        if op.kind == INSERT:
            algo.insert(op.point)
        else:
            algo.delete(op.tuple_id)
    total = time.perf_counter() - t0
    return algo, total


def test_profile_component_split(benchmark):
    n = min(CFG["n"], 1500)
    points = independent_points(n, 4, seed=95)
    workload = make_paper_workload(points, seed=96)

    def run():
        small = _drive(points, workload, 10, 0.02, 128, seed=97)
        large = _drive(points, workload, 10, 0.08, CFG["m_max"], seed=97)
        return small, large

    (algo_s, t_s), (algo_l, t_l) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    lines = [f"{'config':>22} {'topk ms':>9} {'cover ms':>9} "
             f"{'total s':>8} {'m':>6}"]
    for label, algo, total in [("m_max=128, eps=0.02", algo_s, t_s),
                               (f"m_max={CFG['m_max']}, eps=0.08", algo_l, t_l)]:
        parts = algo.breakdown()
        lines.append(f"{label:>22} {1000 * parts.get('topk', 0):>9.1f} "
                     f"{1000 * parts.get('cover', 0):>9.1f} "
                     f"{total:>8.2f} {algo.m:>6}")
    emit("profile_components", "\n".join(lines))
    # Both components must be visible, and raising m/eps must raise the
    # cover-side share (the m² log m term of §III-B).
    ps, pl = algo_s.breakdown(), algo_l.breakdown()
    assert ps.get("topk", 0) > 0 and ps.get("cover", 0) > 0
    share_s = ps["cover"] / (ps["cover"] + ps["topk"])
    share_l = pl["cover"] / (pl["cover"] + pl["topk"])
    assert share_l >= share_s * 0.5  # never collapses when m grows
