"""Ablation — value of the stable dynamic set cover (Algorithm 1).

DESIGN.md calls out the stable-solution machinery as the paper's key
algorithmic idea. This ablation replaces it with the naive alternative:
re-running greedy set cover from scratch after every membership change,
holding everything else (top-k maintenance, set system, m) fixed.

Expected shape: per-update cost of the stable cover is far below a
greedy rebuild, while the solution sizes/quality stay comparable
(Theorem 1 vs the greedy log-bound).
"""

import time


from repro.core.fdrms import FDRMS
from repro.core.regret import RegretEvaluator
from repro.core.set_cover import StableSetCover
from repro.data import Database, make_paper_workload
from repro.data.database import INSERT
from repro.data.synthetic import independent_points

from _common import CFG, emit


class RebuildEveryTime(FDRMS):
    """FD-RMS variant that rebuilds the greedy cover on every update."""

    def _apply_deltas(self, deltas):
        if deltas:
            self._rebuild_cover()

    def delete(self, tuple_id):
        self._topk.delete(tuple_id)
        if len(self._db) == 0:
            self._cover = StableSetCover()
            return
        self._rebuild_cover()
        if self._cover.solution_size() != self._r:
            self._update_m()


def _drive(algo_cls, workload, r, seed):
    db = Database(workload.initial)
    algo = algo_cls(db, 1, r, 0.02, m_max=CFG["m_max"], seed=seed)
    start = time.perf_counter()
    for _, op, _ in workload.replay():
        if op.kind == INSERT:
            algo.insert(op.point)
        else:
            algo.delete(op.tuple_id)
    elapsed = time.perf_counter() - start
    return algo, elapsed


def test_ablation_stable_cover_vs_rebuild(benchmark):
    n = min(CFG["n"], 1500)
    points = independent_points(n, 4, seed=60)
    workload = make_paper_workload(points, seed=61,
                                   n_snapshots=CFG["snapshots"])
    r = 15

    def run():
        stable_algo, t_stable = _drive(FDRMS, workload, r, seed=62)
        rebuild_algo, t_rebuild = _drive(RebuildEveryTime, workload, r, seed=62)
        return stable_algo, t_stable, rebuild_algo, t_rebuild

    stable_algo, t_stable, rebuild_algo, t_rebuild = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    ev = RegretEvaluator(4, n_samples=CFG["n_eval"], seed=63)
    pts = stable_algo.database.points()
    mrr_stable = ev.evaluate(pts, stable_algo.result_points())
    mrr_rebuild = ev.evaluate(rebuild_algo.database.points(),
                              rebuild_algo.result_points())
    ops = workload.n_operations
    emit("ablation_setcover", "\n".join([
        f"stable cover : {1000 * t_stable / ops:9.3f} ms/op  "
        f"mrr={mrr_stable:.4f}  |Q|={len(stable_algo.result())}",
        f"greedy rebuild: {1000 * t_rebuild / ops:8.3f} ms/op  "
        f"mrr={mrr_rebuild:.4f}  |Q|={len(rebuild_algo.result())}",
        f"speedup: {t_rebuild / max(t_stable, 1e-9):.1f}x",
    ]))
    assert t_stable < t_rebuild, "stable cover must beat rebuild-per-update"
    assert mrr_stable <= mrr_rebuild + 0.05, "stability must not cost quality"
