"""Fig. 8 — scalability with dimensionality d and dataset size n.

Paper shapes to reproduce:

* update time rises steeply with d for every algorithm; FD-RMS stays
  ahead of the static field, especially at high d on AntiCor;
* with growing n, FD-RMS time grows mildly (top-k maintenance), while
  static algorithms track the skyline size;
* mrr is not strongly affected by n.
"""

import pytest

from repro.bench.experiments import experiment_scalability, format_series_table
from repro.data.synthetic import anticorrelated_points, independent_points

from _common import CFG, emit

ALGOS = ["FD-RMS", "Sphere", "HS", "DMM-Greedy"]
MAKERS = {"Indep": independent_points, "AntiCor": anticorrelated_points}


@pytest.mark.parametrize("dataset", ["Indep", "AntiCor"])
def test_fig8_vary_dimension(benchmark, dataset):
    n = CFG["n"]
    d_values = CFG["d_sweep"]
    make = MAKERS[dataset]

    def sweep():
        return experiment_scalability(
            lambda d: make(n, d, seed=80 + d), ALGOS, d_values, k=1,
            r=max(CFG["r_values"][0], max(d_values)),
            seed=9, eval_samples=CFG["n_eval"], fdrms_eps=0.02,
            m_max=CFG["m_max"], n_snapshots=CFG["snapshots"])

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"fig8_vary_d_{dataset}",
         "[update time, ms]\n"
         + format_series_table(results, x_label="d", metric="avg_update_ms")
         + "\n[mean mrr]\n"
         + format_series_table(results, x_label="d", metric="mean_mrr",
                               fmt="{:>10.4f}"))
    d_lo, d_hi = min(d_values), max(d_values)
    for name in ALGOS:
        # Quality degrades with d (curse of dimensionality, Fig. 8a-b).
        assert results[name][d_hi].mean_mrr >= \
            results[name][d_lo].mean_mrr - 0.02, name


@pytest.mark.parametrize("dataset", ["Indep", "AntiCor"])
def test_fig8_vary_size(benchmark, dataset):
    d = 6
    n_values = CFG["n_sweep"]
    make = MAKERS[dataset]

    def sweep():
        return experiment_scalability(
            lambda n: make(n, d, seed=90), ALGOS, n_values, k=1,
            r=CFG["r_values"][0], seed=10, eval_samples=CFG["n_eval"],
            fdrms_eps=0.02, m_max=CFG["m_max"],
            n_snapshots=CFG["snapshots"])

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(f"fig8_vary_n_{dataset}",
         "[update time, ms]\n"
         + format_series_table(results, x_label="n", metric="avg_update_ms")
         + "\n[mean mrr]\n"
         + format_series_table(results, x_label="n", metric="mean_mrr",
                               fmt="{:>10.4f}"))
    # mrr not strongly affected by n (paper's Fig. 8c-d observation).
    n_lo, n_hi = min(n_values), max(n_values)
    for name in ALGOS:
        assert abs(results[name][n_hi].mean_mrr
                   - results[name][n_lo].mean_mrr) < 0.08, name
