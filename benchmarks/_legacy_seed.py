"""Seed (PR-1) object-graph tuple/utility indexes, frozen for benchmarking.

``bench_hotpath.py`` measures the new flat-array dual-tree engine against
the *seed* single-op update loop. To keep that comparison honest across
future PRs, this module preserves the seed implementations verbatim:
per-node Python objects (``_Node``/``_ConeNode``), per-tuple recursion,
heap-driven best-first search. They are wired into the live
``ApproxTopKIndex``/``FDRMS`` via the ``index_factory`` / ``cone_factory``
injection points, so the surrounding maintenance logic is identical and
the measured delta is purely the index engine + batching.

Not part of the library API; imported only by benchmarks.
"""

# ---------------------------------------------------------------------------
# Seed k-d tree (verbatim from the seed src/repro/index/kdtree.py)
# ---------------------------------------------------------------------------

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.utils import as_point_matrix

_LEAF_CAPACITY = 16


class _Node:
    """One k-d tree node; a leaf when ``axis`` is None."""

    __slots__ = ("axis", "split", "left", "right", "parent",
                 "box_min", "box_max", "total", "alive", "bucket")

    def __init__(self, parent=None) -> None:
        self.axis: int | None = None
        self.split: float = 0.0
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.parent: _Node | None = parent
        self.box_min: np.ndarray | None = None
        self.box_max: np.ndarray | None = None
        self.total = 0
        self.alive = 0
        self.bucket: list[int] = []

    @property
    def is_leaf(self) -> bool:
        return self.axis is None


class LegacyKDTree:
    """Dynamic k-d tree over d-dimensional points keyed by integer ids.

    Parameters
    ----------
    d : int
        Dimensionality.
    leaf_capacity : int
        Maximum bucket size before a leaf splits.
    """

    def __init__(self, d: int, *, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {leaf_capacity}")
        self._d = int(d)
        self._leaf_capacity = int(leaf_capacity)
        self._points: dict[int, np.ndarray] = {}
        self._leaf_of: dict[int, _Node] = {}
        self._root = _Node()

    # ------------------------------------------------------------------
    # Construction / updates
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, ids, points, *, leaf_capacity: int = _LEAF_CAPACITY) -> "LegacyKDTree":
        """Bulk-build a tree from aligned ``ids`` and ``points`` arrays."""
        pts = as_point_matrix(points)
        ids = np.asarray(list(ids), dtype=np.intp)
        if ids.shape[0] != pts.shape[0]:
            raise ValueError("ids and points must have equal length")
        tree = cls(pts.shape[1], leaf_capacity=leaf_capacity)
        tree._points = {int(i): pts[row].copy() for row, i in enumerate(ids)}
        tree._root = tree._build_subtree(list(tree._points.keys()), None)
        return tree

    def __len__(self) -> int:
        return self._root.alive

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._points

    @property
    def d(self) -> int:
        return self._d

    def insert(self, tuple_id: int, point) -> None:
        """Insert a point under ``tuple_id`` (must be fresh)."""
        if tuple_id in self._points:
            raise KeyError(f"tuple id {tuple_id} already present")
        vec = np.asarray(point, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._d:
            raise ValueError(f"point has d={vec.shape[0]}, expected {self._d}")
        self._points[tuple_id] = vec.copy()
        node = self._root
        while True:
            self._absorb_box(node, vec)
            node.total += 1
            node.alive += 1
            if node.is_leaf:
                break
            node = node.left if vec[node.axis] <= node.split else node.right
        node.bucket.append(tuple_id)
        self._leaf_of[tuple_id] = node
        if len(node.bucket) > self._leaf_capacity:
            self._split_leaf(node)

    def delete(self, tuple_id: int) -> None:
        """Remove ``tuple_id``; rebuilds decayed subtrees opportunistically."""
        leaf = self._leaf_of.pop(tuple_id, None)
        if leaf is None:
            raise KeyError(f"tuple id {tuple_id} not present")
        del self._points[tuple_id]
        leaf.bucket.remove(tuple_id)
        # ``alive`` drops immediately; ``total`` only resets on rebuild, so
        # the ratio measures decay since the subtree was last built.
        rebuild_candidate: _Node | None = None
        node: _Node | None = leaf
        while node is not None:
            node.alive -= 1
            if node.alive * 2 < node.total and node.total > self._leaf_capacity:
                rebuild_candidate = node  # highest such node wins (found last)
            node = node.parent
        if rebuild_candidate is not None:
            self._rebuild(rebuild_candidate)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, u, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Best-first top-k by inner product with nonnegative ``u``.

        Returns ``(ids, scores)`` sorted best-first with ties broken
        toward smaller ids, matching ``Database.top_k``.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        if k < 1 or self._root.alive == 0:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        k = min(int(k), self._root.alive)
        counter = itertools.count()
        frontier = [(-self._node_bound(self._root, u), next(counter), self._root)]
        # Min-heap of (score, -id) keeps the current k best; its root is
        # the threshold for pruning.
        best: list[tuple[float, int]] = []
        while frontier:
            neg_bound, _, node = heapq.heappop(frontier)
            if len(best) == k and -neg_bound < best[0][0]:
                break
            if node.is_leaf:
                for tid in node.bucket:
                    score = float(self._points[tid] @ u)
                    entry = (score, -tid)
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for child in (node.left, node.right):
                    if child is not None and child.alive > 0:
                        bound = self._node_bound(child, u)
                        if len(best) < k or bound >= best[0][0]:
                            heapq.heappush(frontier, (-bound, next(counter), child))
        ordered = sorted(best, key=lambda e: (-e[0], -e[1]))
        ids = np.asarray([-tid for _, tid in ordered], dtype=np.intp)
        scores = np.asarray([s for s, _ in ordered])
        return ids, scores

    def range_query(self, u, threshold: float) -> tuple[np.ndarray, np.ndarray]:
        """All ids with ``<u, p> >= threshold``; returns ``(ids, scores)``.

        Output is sorted by descending score, ties toward smaller id.
        """
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if u.shape[0] != self._d:
            raise ValueError(f"u has d={u.shape[0]}, expected {self._d}")
        hits_ids: list[int] = []
        hits_scores: list[float] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.alive == 0 or self._node_bound(node, u) < threshold:
                continue
            if node.is_leaf:
                for tid in node.bucket:
                    score = float(self._points[tid] @ u)
                    if score >= threshold:
                        hits_ids.append(tid)
                        hits_scores.append(score)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        if not hits_ids:
            return (np.empty(0, dtype=np.intp), np.empty(0))
        ids = np.asarray(hits_ids, dtype=np.intp)
        scores = np.asarray(hits_scores)
        order = np.lexsort((ids, -scores))
        return ids[order], scores[order]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _node_bound(self, node: _Node, u: np.ndarray) -> float:
        """Upper bound on ``<u, p>`` over alive points below ``node``."""
        if node.box_max is None:
            return -np.inf
        return float(node.box_max @ u)

    @staticmethod
    def _absorb_box(node: _Node, vec: np.ndarray) -> None:
        if node.box_min is None:
            node.box_min = vec.copy()
            node.box_max = vec.copy()
        else:
            np.minimum(node.box_min, vec, out=node.box_min)
            np.maximum(node.box_max, vec, out=node.box_max)

    def _build_subtree(self, ids: list[int], parent: _Node | None) -> _Node:
        node = _Node(parent)
        node.total = node.alive = len(ids)
        if ids:
            pts = np.asarray([self._points[i] for i in ids])
            node.box_min = pts.min(axis=0)
            node.box_max = pts.max(axis=0)
        if len(ids) <= self._leaf_capacity:
            node.bucket = list(ids)
            for tid in ids:
                self._leaf_of[tid] = node
            return node
        pts = np.asarray([self._points[i] for i in ids])
        axis = int(np.argmax(node.box_max - node.box_min))
        values = pts[:, axis]
        split = float(np.median(values))
        left_ids = [tid for tid, v in zip(ids, values) if v <= split]
        right_ids = [tid for tid, v in zip(ids, values) if v > split]
        if not left_ids or not right_ids:
            # All values equal on the widest axis: keep as an oversized
            # leaf (every split would be degenerate).
            node.bucket = list(ids)
            for tid in ids:
                self._leaf_of[tid] = node
            return node
        node.axis = axis
        node.split = split
        node.left = self._build_subtree(left_ids, node)
        node.right = self._build_subtree(right_ids, node)
        return node

    def _split_leaf(self, leaf: _Node) -> None:
        ids = leaf.bucket
        pts = np.asarray([self._points[i] for i in ids])
        spread = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:
            return  # degenerate: defer splitting until points differ
        split = float(np.median(pts[:, axis]))
        left_ids = [tid for tid, v in zip(ids, pts[:, axis]) if v <= split]
        right_ids = [tid for tid, v in zip(ids, pts[:, axis]) if v > split]
        if not left_ids or not right_ids:
            return
        leaf.axis = axis
        leaf.split = split
        leaf.bucket = []
        leaf.left = self._build_subtree(left_ids, leaf)
        leaf.right = self._build_subtree(right_ids, leaf)

    def _rebuild(self, node: _Node) -> None:
        """Rebuild ``node`` in place from its alive points."""
        alive_ids = self._collect_alive(node)
        fresh = self._build_subtree(alive_ids, node.parent)
        node.axis = fresh.axis
        node.split = fresh.split
        node.left = fresh.left
        node.right = fresh.right
        if node.left is not None:
            node.left.parent = node
        if node.right is not None:
            node.right.parent = node
        node.box_min = fresh.box_min
        node.box_max = fresh.box_max
        node.total = fresh.total
        node.alive = fresh.alive
        node.bucket = fresh.bucket
        if node.is_leaf:
            for tid in node.bucket:
                self._leaf_of[tid] = node

    def _collect_alive(self, node: _Node) -> list[int]:
        out: list[int] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.is_leaf:
                out.extend(cur.bucket)
            else:
                if cur.left is not None:
                    stack.append(cur.left)
                if cur.right is not None:
                    stack.append(cur.right)
        return out


# ---------------------------------------------------------------------------
# Seed cone tree (verbatim from the seed src/repro/index/conetree.py)
# ---------------------------------------------------------------------------

_CONE_LEAF_CAPACITY = 8


class _ConeNode:
    __slots__ = ("axis_dir", "cos_omega", "sin_omega", "tau_min",
                 "left", "right", "parent", "members")

    def __init__(self, parent=None) -> None:
        self.axis_dir: np.ndarray | None = None
        self.cos_omega = 1.0
        self.sin_omega = 0.0
        self.tau_min = np.inf
        self.left: _ConeNode | None = None
        self.right: _ConeNode | None = None
        self.parent: _ConeNode | None = parent
        self.members: list[int] | None = None  # leaf only

    @property
    def is_leaf(self) -> bool:
        return self.members is not None


class LegacyConeTree:
    """Static-structure cone tree with dynamic thresholds and active flags.

    Parameters
    ----------
    utilities : (M, d) array of unit vectors
        The fixed pool of sampled utility vectors. Structure is built
        once; thresholds and active flags change freely afterwards.
    leaf_capacity : int
        Maximum number of utilities per leaf.
    """

    def __init__(self, utilities, *, leaf_capacity: int = _CONE_LEAF_CAPACITY) -> None:
        utils = np.ascontiguousarray(utilities, dtype=np.float64)
        if utils.ndim != 2 or utils.shape[0] == 0:
            raise ValueError("utilities must be a non-empty (M, d) array")
        norms = np.linalg.norm(utils, axis=1)
        if not np.allclose(norms, 1.0, atol=1e-8):
            raise ValueError("utility vectors must be unit-normalized")
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
        self._u = utils
        self._m_total = utils.shape[0]
        self._d = utils.shape[1]
        self._leaf_capacity = int(leaf_capacity)
        self._tau = np.full(self._m_total, np.inf)
        self._active = np.zeros(self._m_total, dtype=bool)
        self._leaf_of: dict[int, _ConeNode] = {}
        self._root = self._build(list(range(self._m_total)), None)

    # ------------------------------------------------------------------
    # Threshold / activity maintenance
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of utility vectors in the pool (active or not)."""
        return self._m_total

    def threshold(self, idx: int) -> float:
        """Current threshold of utility ``idx`` (``inf`` while inactive)."""
        return float(self._tau[idx])

    def is_active(self, idx: int) -> bool:
        return bool(self._active[idx])

    def set_threshold(self, idx: int, tau: float) -> None:
        """Set utility ``idx``'s threshold and repair ``τ_min`` upwards."""
        self._tau[idx] = float(tau)
        if self._active[idx]:
            self._bubble_up(self._leaf_of[idx])

    def activate(self, idx: int, tau: float) -> None:
        """Mark utility ``idx`` active with threshold ``tau``."""
        self._active[idx] = True
        self._tau[idx] = float(tau)
        self._bubble_up(self._leaf_of[idx])

    def deactivate(self, idx: int) -> None:
        """Mark utility ``idx`` inactive (it will never match queries)."""
        self._active[idx] = False
        self._tau[idx] = np.inf
        self._bubble_up(self._leaf_of[idx])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reached_by(self, point) -> list[int]:
        """Active utility indices with ``<u_i, point> >= τ_i``.

        This is the insertion-time filter of Algorithm 3: utilities whose
        ε-approximate top-k set must absorb the new point.
        """
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self._d:
            raise ValueError(f"point has d={p.shape[0]}, expected {self._d}")
        p_norm = float(np.linalg.norm(p))
        hits: list[int] = []
        if p_norm == 0.0:
            # Zero point scores 0 for every utility; it reaches only
            # thresholds <= 0.
            for idx in np.flatnonzero(self._active):
                if self._tau[idx] <= 0.0:
                    hits.append(int(idx))
            return hits
        p_dir = p / p_norm
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.tau_min == np.inf:
                continue
            if self._cone_bound(node, p_dir, p_norm) < node.tau_min:
                continue
            if node.is_leaf:
                for idx in node.members:
                    if self._active[idx] and float(self._u[idx] @ p) >= self._tau[idx]:
                        hits.append(idx)
            else:
                if node.left is not None:
                    stack.append(node.left)
                if node.right is not None:
                    stack.append(node.right)
        hits.sort()
        return hits

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _cone_bound(node: _ConeNode, p_dir: np.ndarray, p_norm: float) -> float:
        """Upper bound of ``<u, p>`` over the node's cone (unit ``u``)."""
        cos_theta = float(np.clip(node.axis_dir @ p_dir, -1.0, 1.0))
        # cos(theta - omega) = cos t cos w + sin t sin w, clamped to 1 when
        # p_dir lies inside the cone (theta <= omega).
        sin_theta = float(np.sqrt(max(0.0, 1.0 - cos_theta * cos_theta)))
        if cos_theta >= node.cos_omega:
            return p_norm
        cos_gap = cos_theta * node.cos_omega + sin_theta * node.sin_omega
        return p_norm * cos_gap

    def _build(self, members: list[int], parent) -> _ConeNode:
        node = _ConeNode(parent)
        vecs = self._u[members]
        mean = vecs.mean(axis=0)
        norm = float(np.linalg.norm(mean))
        node.axis_dir = mean / norm if norm > 0 else vecs[0]
        cosines = np.clip(vecs @ node.axis_dir, -1.0, 1.0)
        cos_w = float(cosines.min())
        node.cos_omega = cos_w
        node.sin_omega = float(np.sqrt(max(0.0, 1.0 - cos_w * cos_w)))
        if len(members) <= self._leaf_capacity:
            node.members = list(members)
            for idx in members:
                self._leaf_of[idx] = node
            return node
        # Split around the two most separated members (2-means style seed
        # selection used by Ram & Gray), assigning by nearer angular seed.
        far_a = int(np.argmin(cosines))
        cos_to_a = np.clip(vecs @ vecs[far_a], -1.0, 1.0)
        far_b = int(np.argmin(cos_to_a))
        cos_to_b = np.clip(vecs @ vecs[far_b], -1.0, 1.0)
        go_left = cos_to_a >= cos_to_b
        left = [m for m, flag in zip(members, go_left) if flag]
        right = [m for m, flag in zip(members, go_left) if not flag]
        if not left or not right:
            node.members = list(members)
            for idx in members:
                self._leaf_of[idx] = node
            return node
        node.left = self._build(left, node)
        node.right = self._build(right, node)
        return node

    def _bubble_up(self, leaf: _ConeNode) -> None:
        """Recompute ``τ_min`` from ``leaf`` to the root."""
        node: _ConeNode | None = leaf
        while node is not None:
            if node.is_leaf:
                taus = [self._tau[i] for i in node.members if self._active[i]]
                node.tau_min = min(taus) if taus else np.inf
            else:
                node.tau_min = min(
                    node.left.tau_min if node.left is not None else np.inf,
                    node.right.tau_min if node.right is not None else np.inf,
                )
            node = node.parent
