"""Extension — FD-RMS robustness across workload shapes.

The paper evaluates one workload shape (insert half, delete half). A
fully-dynamic algorithm should hold its per-update cost and quality
under different churn patterns; this extension bench sweeps:

* the paper's protocol (baseline),
* a sliding window (maximal churn: every arrival evicts the oldest),
* insert-heavy growth (90% inserts),
* delete-heavy shrinkage (10% inserts).
"""

import time


from repro.core.fdrms import FDRMS
from repro.core.regret import RegretEvaluator
from repro.data import (
    Database,
    make_paper_workload,
    make_skewed_workload,
    make_sliding_window_workload,
)
from repro.data.database import INSERT
from repro.data.synthetic import independent_points

from _common import CFG, emit


def _drive(workload, r, seed):
    db = Database(workload.initial)
    algo = FDRMS(db, 1, r, 0.02, m_max=CFG["m_max"], seed=seed)
    t0 = time.perf_counter()
    for _, op, _ in workload.replay():
        if op.kind == INSERT:
            algo.insert(op.point)
        else:
            algo.delete(op.tuple_id)
    elapsed = time.perf_counter() - t0
    return algo, elapsed


def test_ext_workload_shapes(benchmark):
    n = min(CFG["n"], 1500)
    points = independent_points(n, 4, seed=85)
    r = 15
    shapes = {
        "paper (50/50)": make_paper_workload(points, seed=86),
        "sliding window": make_sliding_window_workload(points, window=n // 2),
        "insert-heavy": make_skewed_workload(points, insert_fraction=0.9,
                                             n_operations=n, seed=87),
        "delete-heavy": make_skewed_workload(points, insert_fraction=0.1,
                                             n_operations=n // 2, seed=88),
    }

    def run():
        out = {}
        for name, wl in shapes.items():
            algo, elapsed = _drive(wl, r, seed=89)
            out[name] = (algo, elapsed, wl.n_operations)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ev = RegretEvaluator(4, n_samples=CFG["n_eval"], seed=90)
    lines = [f"{'workload':>16} {'ms/op':>8} {'mrr':>8} {'|Q|':>5}"]
    per_op = {}
    for name, (algo, elapsed, ops) in results.items():
        db = algo.database
        mrr = ev.evaluate(db.points(), algo.result_points()) \
            if len(db) else 0.0
        per_op[name] = 1000 * elapsed / ops
        lines.append(f"{name:>16} {per_op[name]:>8.3f} {mrr:>8.4f} "
                     f"{len(algo.result()):>5}")
    emit("ext_workload_shapes", "\n".join(lines))
    # Per-update cost must stay within one order of magnitude across
    # shapes: that is what "fully dynamic" buys.
    worst, best = max(per_op.values()), min(per_op.values())
    assert worst < 20 * best, per_op
