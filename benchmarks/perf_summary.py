"""Render BENCH_*.json trajectories as a GitHub-flavored markdown summary.

The CI perf-smoke job appends this script's stdout to
``$GITHUB_STEP_SUMMARY`` after the benchmark steps regenerate the
trajectory files in the workspace, so every run's numbers — engine init
seconds, batched update throughput, per-scenario latency percentiles,
and throughput relative to the committed baseline — are readable from
the Actions summary page without downloading artifacts.

Usage::

    PYTHONPATH=src python benchmarks/perf_summary.py \
        [--hotpath BENCH_hotpath.json] [--scenarios BENCH_scenarios.json]

Missing files are skipped with a note, so the summary degrades
gracefully if a bench step was skipped or failed.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def _fmt(value, pattern="{:.2f}") -> str:
    if value is None:
        return "–"
    return pattern.format(value)


def hotpath_summary(path: Path) -> list[str]:
    if not path.is_file():
        return [f"_no hotpath trajectory at `{path}`_", ""]
    data = json.loads(path.read_text())
    cfg = data.get("config", {})
    lines = [
        f"### Hot path (n={cfg.get('n')}, d={cfg.get('d')}, "
        f"ops={cfg.get('ops')}, m_max={cfg.get('m_max')})",
        "",
        "| workload | engine | init s | op/s | ms/op |",
        "|---|---|---:|---:|---:|",
    ]
    for wname, wl in data.get("workloads", {}).items():
        for ename, eng in wl.get("engines", {}).items():
            lines.append(
                f"| {wname} | {ename} | "
                f"{_fmt(eng.get('init_seconds'))} | "
                f"{_fmt(eng.get('ops_per_second'), '{:.0f}')} | "
                f"{_fmt(eng.get('ms_per_op'), '{:.3f}')} |")
        speed = wl.get("batched_vs_single_speedup")
        init_speed = wl.get("init_speedup_vs_seed")
        lines.append(
            f"| {wname} | _speedups_ | init vs seed "
            f"{_fmt(init_speed)}x | batched vs single "
            f"{_fmt(speed)}x | |")
    breakdown = (data.get("workloads", {})
                 .get("mixed_50_50", {}).get("cold_start_breakdown"))
    if breakdown:
        phases = ", ".join(f"{k} {v:.2f}s" for k, v in breakdown.items())
        lines += ["", f"Cold start breakdown: {phases}"]
    lines.append("")
    return lines


def scenarios_summary(path: Path) -> list[str]:
    if not path.is_file():
        return [f"_no scenario trajectory at `{path}`_", ""]
    data = json.loads(path.read_text())
    cfg = data.get("config", {})
    lines = [
        f"### Scenarios (n={cfg.get('n')}, r={cfg.get('r')}, "
        f"eps={cfg.get('eps')}, m_max={cfg.get('m_max')})",
        "",
        "| scenario | algorithm | init s | op/s | p50 ms | p99 ms | "
        "mean mrr | vs baseline |",
        "|---|---|---:|---:|---:|---:|---:|---:|",
    ]
    for sname, entry in data.get("scenarios", {}).items():
        for aname, algo in entry.get("algorithms", {}).items():
            lat = algo.get("latency_ms", {})
            speed = algo.get("speedup_vs_baseline")
            lines.append(
                f"| {sname} | {aname} | "
                f"{_fmt(algo.get('init_seconds'))} | "
                f"{_fmt(algo.get('ops_per_second'), '{:.0f}')} | "
                f"{_fmt(lat.get('p50'), '{:.3f}')} | "
                f"{_fmt(lat.get('p99'), '{:.3f}')} | "
                f"{_fmt(algo.get('mean_mrr'), '{:.4f}')} | "
                f"{_fmt(speed) + 'x' if speed is not None else '–'} |")
    lines.append("")
    return lines


def main(argv=None) -> int:
    root = Path(__file__).resolve().parents[1]
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--hotpath", type=Path,
                    default=root / "BENCH_hotpath.json")
    ap.add_argument("--scenarios", type=Path,
                    default=root / "BENCH_scenarios.json")
    args = ap.parse_args(argv)
    lines = ["## Perf smoke summary", ""]
    lines += hotpath_summary(args.hotpath)
    lines += scenarios_summary(args.scenarios)
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
