"""Ablation — k-d tree vs quadtree as the tuple index (§III-C).

The paper notes any space-partitioning index can serve as TI and picks
the k-d tree "in practice". This ablation runs the full FD-RMS pipeline
with both and compares update cost (results must be identical — both
indexes are exact).
"""

import time

import numpy as np

from repro.core.topk import ApproxTopKIndex
from repro.data import Database
from repro.data.synthetic import independent_points
from repro.geometry.sampling import sample_utilities_with_basis
from repro.index.quadtree import QuadTree

from _common import CFG, emit


def _qt_factory(ids, points, d):
    tree = QuadTree(d)
    for row, tid in enumerate(ids):
        tree.insert(int(tid), points[row])
    return tree


def _drive(points, utilities, k, eps, factory=None):
    n0 = points.shape[0] // 2
    db = Database(points[:n0])
    kwargs = {"index_factory": factory} if factory else {}
    index = ApproxTopKIndex(db, utilities, k, eps, **kwargs)
    rng = np.random.default_rng(7)
    t0 = time.perf_counter()
    for row in range(n0, points.shape[0]):
        index.insert(points[row])
    for _ in range(n0 // 2):
        ids = db.ids()
        index.delete(int(ids[rng.integers(ids.size)]))
    elapsed = time.perf_counter() - t0
    membership = [frozenset(index.members_of(i))
                  for i in range(utilities.shape[0])]
    return elapsed, membership


def test_ablation_kdtree_vs_quadtree(benchmark):
    n = min(CFG["n"], 1500)
    d = 4
    m = min(CFG["m_max"], 256)
    points = independent_points(n, d, seed=75)
    utilities = sample_utilities_with_basis(m, d, seed=76)

    def run():
        t_kd, mem_kd = _drive(points, utilities, 1, 0.05)
        t_qt, mem_qt = _drive(points, utilities, 1, 0.05,
                              factory=_qt_factory)
        return t_kd, mem_kd, t_qt, mem_qt

    t_kd, mem_kd, t_qt, mem_qt = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    n_ops = n // 2 + n // 4
    emit("ablation_tupleindex", "\n".join([
        f"k-d tree TI: {1000 * t_kd / n_ops:8.3f} ms/op",
        f"quadtree TI: {1000 * t_qt / n_ops:8.3f} ms/op "
        f"(d={d}: 2^d fanout still cheap)",
    ]))
    # Both indexes are exact: resulting membership must be identical.
    assert mem_kd == mem_qt
