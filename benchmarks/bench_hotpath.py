"""Hot-path benchmark: flat-array dual-tree engine + batched updates.

Times the FD-RMS update hot path in three configurations on the paper's
workload shapes (§IV-A insert-then-delete, and a maximal-churn mixed
stream):

* ``seed single-op``  — the frozen seed engine (object-graph k-d tree +
  cone tree from ``_legacy_seed.py``), one operation at a time;
* ``flat single-op``  — the current flat-array engine, one op at a time;
* ``flat batched``    — the current engine through ``apply_batch``;
* ``flat parallel``   — the batched engine on the shared-memory worker
  backend (``parallel=os.cpu_count()``), cold start + updates, reported
  as ``parallel_speedup_vs_serial`` (wall-clock of the inline engine
  over the parallel one, same process — machine-relative like every
  other gate; ~1.0 on a single-core host by construction).

It also measures raw index query throughput (``top_k`` / ``range_query``
over the live tuple set) for the seed vs. flat k-d tree.

Results go to stdout and to a ``BENCH_hotpath.json`` trajectory at the
repo root so future PRs can regress-check. The process exits non-zero
when batched update throughput falls below the single-op path — the
sanity floor used by the CI perf-smoke job (``--quick``); the full run
additionally reports the batched-vs-seed speedup the PR targets (>= 5x
on the 100 k tuple / 10 k op mixed workload).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))  # _legacy_seed

from repro.core.fdrms import FDRMS
from repro.data.database import INSERT, Database
from repro.data.workload import (
    make_paper_workload,
    make_skewed_workload,
)
from repro.index.kdtree import KDTree
from repro.persist.atomic import write_json_atomic
from repro.persist.checkpoint import load_checkpoint, save_checkpoint

from _legacy_seed import LegacyConeTree, LegacyKDTree

R, K, EPS, M_MAX = 20, 1, 0.1, 1024


def _legacy_index_factory(ids, points, d):
    if len(ids) == 0:
        return LegacyKDTree(d)
    return LegacyKDTree.build(ids, points)


def _make_engine(initial, *, legacy: bool,
                 parallel: int | None = None) -> FDRMS:
    db = Database(initial)
    kwargs = {}
    if legacy:
        kwargs = dict(index_factory=_legacy_index_factory,
                      cone_factory=LegacyConeTree)
    return FDRMS(db, K, R, EPS, m_max=M_MAX, seed=0, parallel=parallel,
                 **kwargs)


def _drive_single(engine: FDRMS, ops) -> float:
    start = time.perf_counter()
    for op in ops:
        if op.kind == INSERT:
            engine.insert(op.point)
        else:
            engine.delete(op.tuple_id)
    return time.perf_counter() - start


def _drive_batched(engine: FDRMS, ops) -> float:
    start = time.perf_counter()
    engine.apply_batch(ops)
    return time.perf_counter() - start


def _bench_workload(name: str, initial, ops, *,
                    skip_legacy: bool) -> tuple[dict, FDRMS]:
    """Returns the report entry and the driven flat-batched engine
    (reused by the checkpoint-restore benchmark)."""
    print(f"\n--- workload {name}: |P0|={initial.shape[0]}, "
          f"{len(ops)} ops ---")
    out: dict = {"n_initial": int(initial.shape[0]), "n_ops": len(ops),
                 "engines": {}}
    results = {}
    kept: FDRMS | None = None
    plan = [("flat_batched", False, _drive_batched),
            ("flat_single_op", False, _drive_single)]
    if not skip_legacy:
        plan.append(("seed_single_op", True, _drive_single))
    for label, legacy, drive in plan:
        t0 = time.perf_counter()
        engine = _make_engine(initial, legacy=legacy)
        init_s = time.perf_counter() - t0
        seconds = drive(engine, ops)
        results[label] = engine.result()
        if label == "flat_batched":
            kept = engine
        ops_per_s = len(ops) / seconds
        out["engines"][label] = {
            "init_seconds": round(init_s, 4),
            "update_seconds": round(seconds, 4),
            "ms_per_op": round(1e3 * seconds / len(ops), 5),
            "ops_per_second": round(ops_per_s, 1),
        }
        if label == "flat_batched":
            out["cold_start_breakdown"] = {
                phase: round(secs, 4)
                for phase, secs in engine.init_profile.items()}
        print(f"{label:15s} init {init_s:6.2f}s  updates {seconds:7.2f}s "
              f"({1e3 * seconds / len(ops):7.3f} ms/op, {ops_per_s:9.0f} op/s)")
    if skip_legacy:
        # The seed engine's *updates* are too slow for CI, but its init
        # is one build — measure it anyway so the init-speed gate stays
        # machine-relative (two builds timed in the same process).
        t0 = time.perf_counter()
        _make_engine(initial, legacy=True)
        out["engines"]["seed_single_op"] = {
            "init_seconds": round(time.perf_counter() - t0, 4)}
    # All engines maintain the same invariants on the same utility sample;
    # the flat single-op and batched paths must agree exactly.
    assert results["flat_batched"] == results["flat_single_op"], \
        "batched result diverged from single-op result"
    single = out["engines"]["flat_single_op"]["update_seconds"]
    batched = out["engines"]["flat_batched"]["update_seconds"]
    out["batched_vs_single_speedup"] = round(single / batched, 2)
    seed_init = out["engines"]["seed_single_op"]["init_seconds"]
    flat_init = out["engines"]["flat_batched"]["init_seconds"]
    out["init_speedup_vs_seed"] = round(seed_init / flat_init, 2)
    print(f"init speedup vs seed trees: {out['init_speedup_vs_seed']:.2f}x")
    if not skip_legacy:
        seed_s = out["engines"]["seed_single_op"]["update_seconds"]
        out["batched_vs_seed_speedup"] = round(seed_s / batched, 2)
        print(f"speedup: batched vs seed single-op "
              f"{out['batched_vs_seed_speedup']:.2f}x, "
              f"vs flat single-op {out['batched_vs_single_speedup']:.2f}x")
    assert kept is not None
    return out, kept


def _bench_parallel(out: dict, initial, ops, reference_result,
                    workers: int) -> None:
    """Time the shared-memory backend against the inline engine.

    Drives the same workload on an engine with ``parallel=workers``
    (cold start + batched updates) and records
    ``parallel_speedup_vs_serial`` — inline wall-clock over parallel
    wall-clock, both measured in this process, so the gate is
    machine-relative like every other one. The result set must match
    the inline engine's exactly (worker-count invariance).
    """
    t0 = time.perf_counter()
    engine = _make_engine(initial, legacy=False, parallel=workers)
    init_s = time.perf_counter() - t0
    seconds = _drive_batched(engine, ops)
    assert engine.result() == reference_result, \
        "parallel result diverged from the inline engine"
    degraded = bool(getattr(engine._backend, "degraded", False))
    engine.close()
    out["engines"]["flat_parallel"] = {
        "workers": workers,
        "degraded": degraded,
        "init_seconds": round(init_s, 4),
        "update_seconds": round(seconds, 4),
        "ms_per_op": round(1e3 * seconds / len(ops), 5),
        "ops_per_second": round(len(ops) / seconds, 1),
    }
    serial = out["engines"]["flat_batched"]
    serial_total = serial["init_seconds"] + serial["update_seconds"]
    parallel_total = init_s + seconds
    out["parallel_speedup_vs_serial"] = round(
        serial_total / parallel_total, 2)
    print(f"flat_parallel   init {init_s:6.2f}s  updates {seconds:7.2f}s "
          f"({workers} workers) -> "
          f"{out['parallel_speedup_vs_serial']:.2f}x vs inline"
          + (" [POOL DEGRADED]" if degraded else ""))


def _bench_restore(engine: FDRMS, cold_init_seconds: float) -> dict:
    """Checkpoint the driven engine and time a warm restore.

    The restore must reproduce the live engine's ``state_digest()``
    exactly; the reported speedup is machine-relative (cold init and
    restore timed in the same process), which is what the CI perf gate
    pins.
    """
    live_digest = engine.state_digest()
    out: dict = {"n_alive": len(engine.database)}
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        t0 = time.perf_counter()
        save_checkpoint(engine, ckpt)
        out["save_seconds"] = round(time.perf_counter() - t0, 4)
        t0 = time.perf_counter()
        restored, _manifest = load_checkpoint(ckpt)
        restore_s = time.perf_counter() - t0
    assert restored.state_digest() == live_digest, \
        "restored engine diverged from the live one"
    out["restore_seconds"] = round(restore_s, 4)
    out["cold_init_seconds"] = round(cold_init_seconds, 4)
    out["restore_speedup_vs_cold"] = round(cold_init_seconds / restore_s, 2)
    print(f"\n--- checkpoint restore (n={out['n_alive']}) ---\n"
          f"save {out['save_seconds']:6.2f}s  "
          f"restore {restore_s:6.3f}s  "
          f"cold init {cold_init_seconds:6.2f}s  "
          f"({out['restore_speedup_vs_cold']:.2f}x faster than cold, "
          "digest verified)")
    return out


def _bench_queries(n: int, d: int, n_queries: int) -> dict:
    """Raw top-k / range query throughput, seed vs flat tuple index."""
    rng = np.random.default_rng(17)
    pts = rng.random((n, d))
    us = rng.random((n_queries, d))
    taus = [float(np.quantile(pts @ u, 0.999)) for u in us]
    out: dict = {"n": n, "d": d, "n_queries": n_queries}
    for label, tree in (("flat", KDTree.build(range(n), pts)),
                        ("seed", LegacyKDTree.build(range(n), pts))):
        t0 = time.perf_counter()
        for u in us:
            tree.top_k(u, 10)
        topk_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for u, tau in zip(us, taus):
            tree.range_query(u, tau)
        range_s = time.perf_counter() - t0
        out[label] = {"topk_ms": round(1e3 * topk_s / n_queries, 3),
                      "range_ms": round(1e3 * range_s / n_queries, 3)}
        print(f"{label} index: top_k {1e3 * topk_s / n_queries:6.2f} ms/q, "
              f"range {1e3 * range_s / n_queries:6.2f} ms/q  (n={n})")
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI perf-smoke: mixed workload only, floor check")
    ap.add_argument("--skip-legacy", action="store_true",
                    help="skip the (slow) seed single-op baseline")
    ap.add_argument("--n", type=int, default=100_000,
                    help="dataset size (default: the paper-scale 100k)")
    ap.add_argument("--ops", type=int, default=10_000,
                    help="operations in the mixed workload")
    ap.add_argument("--d", type=int, default=6)
    ap.add_argument("--out", type=Path,
                    default=Path(__file__).resolve().parents[1]
                    / "BENCH_hotpath.json")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="committed BENCH_hotpath.json to regression-check "
                         "against (machine-relative speedups, not wall "
                         "times)")
    ap.add_argument("--workers", type=int,
                    default=max(1, os.cpu_count() or 1),
                    help="worker count for the parallel-backend leg "
                         "(default: all cores; 1 = serial canonical-"
                         "block backend)")
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="allowed relative drop in batched-vs-single "
                         "speedup vs the baseline (0.4 = fresh must reach "
                         "60%% of the committed speedup)")
    args = ap.parse_args(argv)

    # Read the committed baseline before the fresh report overwrites it
    # (--out and --baseline typically name the same file in CI).
    baseline = None
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())

    rng = np.random.default_rng(7)
    pts = rng.random((args.n, args.d))

    # Warm up BLAS/numpy kernels so the first timed engine is not
    # charged for one-time initialization.
    warm = make_skewed_workload(rng.random((2000, args.d)),
                                insert_fraction=0.5, n_operations=200,
                                seed=1)
    for legacy in (False, True) if not args.skip_legacy else (False,):
        eng = _make_engine(warm.initial, legacy=legacy)
        _drive_batched(eng, warm.operations[:100])
        _drive_single(eng, warm.operations[100:])

    report: dict = {
        "benchmark": "hotpath",
        "config": {"n": args.n, "d": args.d, "ops": args.ops, "r": R,
                   "k": K, "eps": EPS, "m_max": M_MAX,
                   "quick": bool(args.quick),
                   "parallel_workers": args.workers},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": {},
    }

    mixed = make_skewed_workload(pts, insert_fraction=0.5,
                                 n_operations=args.ops, seed=3)
    mixed_out, mixed_engine = _bench_workload(
        "mixed 50/50 churn", mixed.initial, mixed.operations,
        skip_legacy=args.skip_legacy)
    report["workloads"]["mixed_50_50"] = mixed_out
    _bench_parallel(mixed_out, mixed.initial, mixed.operations,
                    mixed_engine.result(), args.workers)

    report["restore"] = _bench_restore(
        mixed_engine,
        mixed_out["engines"]["flat_batched"]["init_seconds"])
    del mixed_engine

    if not args.quick:
        paper = make_paper_workload(pts[: args.n // 2], seed=4)
        report["workloads"]["paper_iv_a"], _ = _bench_workload(
            "paper §IV-A (insert phase, then delete phase)",
            paper.initial, paper.operations, skip_legacy=args.skip_legacy)
        print("\n--- index query throughput ---")
        report["queries"] = _bench_queries(args.n, args.d, n_queries=30)

    write_json_atomic(args.out, report)
    print(f"\nwrote {args.out}")

    floor_ok = all(w["batched_vs_single_speedup"] >= 1.0
                   for w in report["workloads"].values())
    if not floor_ok:
        print("FAIL: batched update throughput fell below the "
              "single-op path", file=sys.stderr)
        return 1
    if report["restore"]["restore_speedup_vs_cold"] < 1.0:
        print("FAIL: warm checkpoint restore is slower than a cold "
              "start", file=sys.stderr)
        return 1
    # Absolute sanity floor, only meaningful with real workers: on a
    # 1-core host both engines are serial and the ratio is pure timing
    # noise, so gating it there would flap. The machine-relative gate
    # below is the real check on multicore runners.
    if (args.workers >= 2
            and mixed_out["parallel_speedup_vs_serial"] < 0.5):
        print("FAIL: the parallel backend more than doubled the "
              "inline engine's wall-clock", file=sys.stderr)
        return 1
    if baseline is not None and not _check_baseline(report, baseline,
                                                   args.tolerance):
        return 1
    print("OK: batched >= single-op on every workload"
          + ("" if args.skip_legacy else "; seed-relative speedups above"))
    return 0


def _check_baseline(report: dict, baseline: dict, tolerance: float) -> bool:
    """Regression gate against a committed trajectory.

    Compares the *machine-relative* batched-vs-single speedup per
    workload (absolute wall times vary wildly across CI runners; the
    ratio of two measurements from the same process does not) and fails
    when a fresh speedup drops below ``(1 - tolerance)`` of the
    committed one.
    """
    ok = True
    compared = 0

    def gate(scope: str, label: str, committed: float, got: float) -> None:
        nonlocal ok, compared
        compared += 1
        floor = committed * (1.0 - tolerance)
        if got < floor:
            print(f"FAIL: {scope}: {label} {got:.2f}x fell below "
                  f"{floor:.2f}x ({(1 - tolerance):.0%} of the "
                  f"committed {committed:.2f}x)", file=sys.stderr)
            ok = False
        else:
            print(f"regression gate: {scope}: {label} {got:.2f}x >= "
                  f"{floor:.2f}x (committed {committed:.2f}x, "
                  f"tolerance {tolerance:.0%})")

    gates = (("batched_vs_single_speedup", "batched-vs-single speedup"),
             ("init_speedup_vs_seed", "init speedup vs seed trees"),
             ("parallel_speedup_vs_serial", "parallel-vs-inline speedup"))
    # The parallel ratio is only a signal when both runs actually used
    # workers; with one core each side is a serial engine timed twice.
    par_meaningful = min(
        int(report.get("config", {}).get("parallel_workers", 1)),
        int(baseline.get("config", {}).get("parallel_workers", 1))) >= 2
    for name, fresh in report["workloads"].items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        for key, label in gates:
            if key not in base or key not in fresh:
                continue
            if key == "parallel_speedup_vs_serial" and not par_meaningful:
                print(f"regression gate: {name}: {label} skipped "
                      "(single-worker measurement on one side)")
                continue
            gate(name, label, float(base[key]), float(fresh[key]))
    base_restore = baseline.get("restore", {})
    fresh_restore = report.get("restore", {})
    if ("restore_speedup_vs_cold" in base_restore
            and "restore_speedup_vs_cold" in fresh_restore):
        gate("restore", "warm-restore speedup vs cold init",
             float(base_restore["restore_speedup_vs_cold"]),
             float(fresh_restore["restore_speedup_vs_cold"]))
    if compared == 0:
        # A baseline that shares no workload with the fresh report means
        # the gate checked nothing — fail loudly instead of rubber-
        # stamping (wrong file, renamed workloads, truncated JSON).
        print("FAIL: --baseline shares no workload keys with this run; "
              "the regression gate compared nothing", file=sys.stderr)
        return False
    if ok:
        print("OK: no speedup regression against the committed baseline")
    return ok


if __name__ == "__main__":
    raise SystemExit(main())
