"""Shared plumbing for the figure/table benchmarks.

Scale control
-------------
``REPRO_BENCH_SCALE`` selects the experiment scale:

* ``small`` (default) — laptop scale, whole suite in minutes;
* ``medium`` — closer to the paper's regimes, tens of minutes;
* ``paper`` — Table I sizes where feasible (hours in pure Python).

Every benchmark prints the paper-style series table to stdout *and*
appends it to ``benchmarks/out/<name>.txt`` so results survive pytest's
output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

_SCALES = {
    # n per dataset, eval-utility count, snapshots, r values, k values
    "small": dict(n=1200, n_eval=8000, snapshots=5,
                  r_values=(10, 20, 30), k_values=(1, 2, 3),
                  m_max=512, d_sweep=(4, 5, 6, 7, 8),
                  n_sweep=(1000, 2000, 4000)),
    "medium": dict(n=10_000, n_eval=50_000, snapshots=10,
                   r_values=(10, 40, 70, 100), k_values=(1, 2, 3, 4, 5),
                   m_max=2048, d_sweep=(4, 5, 6, 7, 8, 9, 10),
                   n_sweep=(10_000, 50_000, 100_000)),
    "paper": dict(n=100_000, n_eval=500_000, snapshots=10,
                  r_values=(10, 40, 70, 100), k_values=(1, 2, 3, 4, 5),
                  m_max=4096, d_sweep=(4, 5, 6, 7, 8, 9, 10),
                  n_sweep=(100_000, 400_000, 700_000, 1_000_000)),
}

CFG = _SCALES[SCALE]

OUT_DIR = Path(__file__).resolve().parent / "out"
OUT_DIR.mkdir(exist_ok=True)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    banner = f"\n===== {name} (scale={SCALE}) =====\n"
    print(banner + text)
    with open(OUT_DIR / f"{name}.txt", "a") as fh:
        fh.write(banner + text + "\n")


def fig5_datasets():
    """Datasets used in the Fig. 5/6/7 style sweeps at bench scale."""
    from repro.data import make_dataset
    n = CFG["n"]
    return {
        "BB-like": make_dataset("BB", n=n, seed=101),
        "Indep": make_dataset("Indep", n=n, seed=102),
        "AntiCor": make_dataset("AntiCor", n=n, seed=103),
    }
