"""Ablation — value of the dual-tree indexes (§III-C).

FD-RMS prunes top-k maintenance with a cone tree (insertions) and the
``S(p)`` inverted index + k-d tree (deletions). The ablation measures
the naive alternative: refresh every utility's approximate top-k by a
full scan on every update.

Expected shape: the indexed maintainer touches a small fraction of the
utilities per update and wins by a growing margin as M rises.
"""

import time

import numpy as np

from repro.core.topk import ApproxTopKIndex
from repro.data import Database
from repro.data.synthetic import independent_points
from repro.geometry.sampling import sample_utilities_with_basis

from _common import CFG, emit


def _brute_refresh(db, utilities, k, eps):
    """Naive Φ_{k,ε} for every utility by full scan (the ablation)."""
    ids, pts = db.snapshot()
    out = []
    n = ids.shape[0]
    if n == 0:
        return [set() for _ in range(utilities.shape[0])]
    scores = pts @ utilities.T
    kk = min(k, n)
    kth = np.partition(scores, n - kk, axis=0)[n - kk]
    taus = np.where(n <= k, 0.0, (1.0 - eps) * kth)
    for col in range(utilities.shape[0]):
        out.append({int(ids[row]) for row in
                    np.flatnonzero(scores[:, col] >= taus[col])})
    return out


def test_ablation_dualtree_vs_scan(benchmark):
    n = min(CFG["n"], 1500)
    m = min(CFG["m_max"], 512)
    k, eps = 1, 0.05
    rng = np.random.default_rng(70)
    points = independent_points(n, 4, seed=71)
    utilities = sample_utilities_with_basis(m, 4, seed=72)

    def run():
        db = Database(points[: n // 2])
        index = ApproxTopKIndex(db, utilities, k, eps)
        ops = []
        for row in range(n // 2, n):
            ops.append(("+", points[row]))
        for _ in range(n // 4):
            ops.append(("-", None))
        # Indexed maintenance.
        t0 = time.perf_counter()
        victims = []
        for kind, payload in ops:
            if kind == "+":
                index.insert(payload)
            else:
                ids = db.ids()
                victim = int(ids[rng.integers(ids.size)])
                victims.append(victim)
                index.delete(victim)
        t_indexed = time.perf_counter() - t0

        # Naive full-scan maintenance over the same logical stream.
        db2 = Database(points[: n // 2])
        _brute_refresh(db2, utilities, k, eps)
        t0 = time.perf_counter()
        vi = iter(victims)
        for kind, payload in ops:
            if kind == "+":
                db2.insert(payload)
            else:
                db2.delete(next(vi))
            _brute_refresh(db2, utilities, k, eps)
        t_scan = time.perf_counter() - t0
        return t_indexed, t_scan, len(ops)

    t_indexed, t_scan, n_ops = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_index", "\n".join([
        f"dual-tree indexed: {1000 * t_indexed / n_ops:9.3f} ms/op",
        f"full-scan refresh: {1000 * t_scan / n_ops:9.3f} ms/op",
        f"speedup: {t_scan / max(t_indexed, 1e-9):.1f}x (M={m}, n={n})",
    ]))
    assert t_indexed < t_scan, "indexes must beat full rescans"
