#!/usr/bin/env python3
"""Intra-repo markdown link + anchor checker (stdlib only).

Walks every tracked ``*.md`` file and verifies that each relative link
or image target resolves to a file or directory in the repository, and
that every ``#fragment`` — in-page or cross-file — names a real heading
anchor in the target markdown file. External schemes (``http://``,
``https://``, ``mailto:``) are skipped — this is a dead-link checker,
not a network crawler, so it is fast and deterministic enough to gate
CI on.

Checked link forms::

    [text](relative/path.md)        inline links
    [text](path.md#anchor)          path *and* anchor
    [text](#anchor)                 in-page anchors
    ![alt](assets/diagram.svg)      images
    [text]: relative/path.md        reference-style definitions

Anchors are derived from ATX headings outside fenced code blocks using
the GitHub slug rules (lowercase; drop everything but alphanumerics,
spaces, hyphens and underscores; spaces become hyphens; duplicate slugs
get ``-1``, ``-2``, … suffixes), plus any explicit ``<a name="...">``
or ``id="..."`` HTML anchors.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, ``file:line: target``).

Usage::

    python tools/check_links.py [ROOT]

``ROOT`` defaults to the repository root (the parent of this file's
directory). Paths under ``.git`` and hidden directories are ignored.
"""

from __future__ import annotations

import re
import sys
import urllib.parse
from pathlib import Path

# [text](target) and ![alt](target) — lazily match the target up to the
# first unescaped ')'; titles ('foo "bar"') are split off afterwards.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style definitions at line start: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
# Fenced code blocks — links inside them are examples, not navigation.
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
# ATX headings (outside fences) and explicit HTML anchors.
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
_HTML_ANCHOR = re.compile(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']", re.I)
# Inline markup stripped from heading text before slugging.
_MD_MARKUP = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_fences(text: str) -> str:
    return _FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), text)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading (sans dedupe suffix)."""
    text = _MD_MARKUP.sub(lambda m: m.group(1) or "", heading)
    text = text.strip().lower()
    text = "".join(ch for ch in text
                   if ch.isalnum() or ch in (" ", "-", "_"))
    return text.replace(" ", "-")


def collect_anchors(text: str) -> set[str]:
    """Every fragment that resolves in this document."""
    stripped = _strip_fences(text)
    anchors: set[str] = set()
    for match in _HEADING.finditer(stripped):
        slug = github_slug(match.group(1))
        if slug not in anchors:
            anchors.add(slug)
        else:  # duplicate headings get -1, -2, … suffixes
            n = 1
            while f"{slug}-{n}" in anchors:
                n += 1
            anchors.add(f"{slug}-{n}")
    anchors.update(match.group(1)
                   for match in _HTML_ANCHOR.finditer(stripped))
    return anchors


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") and part not in (".",)
               for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def iter_targets(text: str):
    """Yield (line_number, raw_target) pairs outside fenced code."""
    stripped = _strip_fences(text)
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(stripped):
            line = stripped.count("\n", 0, match.start()) + 1
            yield line, match.group(1)


class AnchorCache:
    """Lazily computed per-file anchor sets."""

    def __init__(self) -> None:
        self._cache: dict[Path, set[str]] = {}

    def anchors(self, path: Path) -> set[str]:
        if path not in self._cache:
            text = path.read_text(encoding="utf-8")
            self._cache[path] = collect_anchors(text)
        return self._cache[path]


def check_file(path: Path, root: Path, cache: AnchorCache) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for line, raw in iter_targets(text):
        if raw.startswith(_SKIP_PREFIXES):
            continue
        target, _, fragment = raw.partition("#")
        target = target.strip("<>")
        fragment = urllib.parse.unquote(fragment)
        if "://" in target:  # any other scheme
            continue
        if target:
            if target.startswith("/"):
                resolved = root / target.lstrip("/")
            else:
                resolved = path.parent / target
            try:
                resolved = resolved.resolve()
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(f"{path.relative_to(root)}:{line}: {raw} "
                              "escapes the repository")
                continue
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}:{line}: {raw}")
                continue
        else:
            resolved = path  # pure in-page anchor
        if fragment and resolved.suffix == ".md" and resolved.is_file():
            if fragment not in cache.anchors(resolved):
                errors.append(f"{path.relative_to(root)}:{line}: {raw} "
                              f"(no such anchor)")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    root = root.resolve()
    cache = AnchorCache()
    broken: list[str] = []
    n_files = 0
    for path in iter_markdown(root):
        n_files += 1
        broken.extend(check_file(path, root, cache))
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"FAIL: {len(broken)} broken intra-repo link(s) across "
              f"{n_files} markdown file(s)", file=sys.stderr)
        return 1
    print(f"OK: all intra-repo links and anchors resolve "
          f"({n_files} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
