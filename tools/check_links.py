#!/usr/bin/env python3
"""Intra-repo markdown link checker (stdlib only).

Walks every tracked ``*.md`` file and verifies that each relative link
or image target resolves to a file or directory in the repository.
External schemes (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped — this is a dead-*file*
checker, not a network crawler, so it is fast and deterministic enough
to gate CI on.

Checked link forms::

    [text](relative/path.md)        inline links
    [text](path.md#anchor)         the path part only
    ![alt](assets/diagram.svg)     images
    [text]: relative/path.md       reference-style definitions

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, ``file:line: target``).

Usage::

    python tools/check_links.py [ROOT]

``ROOT`` defaults to the repository root (the parent of this file's
directory). Paths under ``.git`` and hidden directories are ignored.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) and ![alt](target) — lazily match the target up to the
# first unescaped ')'; titles ('foo "bar"') are split off afterwards.
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style definitions at line start: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
# Fenced code blocks — links inside them are examples, not navigation.
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://", "#")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") and part not in (".",)
               for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def iter_targets(text: str):
    """Yield (line_number, raw_target) pairs outside fenced code."""
    stripped = _FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), text)
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(stripped):
            line = stripped.count("\n", 0, match.start()) + 1
            yield line, match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for line, raw in iter_targets(text):
        target = raw.split("#", 1)[0].strip("<>")
        if not target or raw.startswith(_SKIP_PREFIXES):
            continue
        if "://" in target:  # any other scheme
            continue
        if target.startswith("/"):
            resolved = root / target.lstrip("/")
        else:
            resolved = path.parent / target
        try:
            resolved = resolved.resolve()
            resolved.relative_to(root.resolve())
        except ValueError:
            errors.append(f"{path.relative_to(root)}:{line}: {raw} "
                          "escapes the repository")
            continue
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}:{line}: {raw}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    root = root.resolve()
    broken: list[str] = []
    n_files = 0
    for path in iter_markdown(root):
        n_files += 1
        broken.extend(check_file(path, root))
    for line in broken:
        print(line, file=sys.stderr)
    if broken:
        print(f"FAIL: {len(broken)} broken intra-repo link(s) across "
              f"{n_files} markdown file(s)", file=sys.stderr)
        return 1
    print(f"OK: all intra-repo links resolve ({n_files} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
