"""Repository tooling: the reprolint static analyzer and the markdown
link checker. Nothing here is part of the installable package."""
