"""reprolint engine: suppression parsing, the AST checker, and path walking.

The checker is a single-pass :class:`ast.NodeVisitor` that evaluates every
rule whose path scope covers the file being linted.  Suppressions are
comment pragmas::

    # reprolint: disable=RPL001,RPL008 -- why this occurrence is intentional
    # reprolint: skip-file -- why the whole file is exempt

A ``disable`` pragma on its own line suppresses matching diagnostics on the
next line; a trailing pragma suppresses its own line.  The justification
after ``--`` is mandatory — a pragma without one is itself reported as
RPL009 and suppresses nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from tools.reprolint.rules import (
    ALLOWED_NP_RANDOM,
    DIGEST_CONSTRUCTORS,
    HOT_ALLOC_CALLS,
    MUTABLE_FACTORIES,
    NONATOMIC_SAVE_CALLS,
    NONATOMIC_WRITE_ATTRS,
    RULES,
    STDLIB_RANDOM_FUNCS,
    WALL_CLOCK_CALLS,
    WRITE_MODE_CHARS,
    Rule,
    is_digest_receiver,
    is_score_like,
)

__all__ = [
    "Diagnostic",
    "LintResult",
    "lint_source",
    "lint_file",
    "run_paths",
    "iter_python_files",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``path:line:col: CODE message (hint: fixit)``."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False

    def render(self, *, with_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        rule = RULES.get(self.code)
        if with_hint and rule is not None:
            text += f" (hint: {rule.fixit})"
        return text


@dataclass(frozen=True)
class LintResult:
    """Diagnostics for one file plus whether the file was skip-file'd."""

    path: str
    diagnostics: tuple[Diagnostic, ...]
    skipped: bool = False

    @property
    def active(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.suppressed)


_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_DISABLE_RE = re.compile(
    r"disable\s*=\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)
_SKIP_FILE_RE = re.compile(r"skip-file(?:\s*--\s*(?P<why>.*))?$")


class _Suppressions:
    """Parsed pragma state for one file."""

    def __init__(self) -> None:
        self.by_line: dict[int, frozenset[str]] = {}
        self.skip_file = False
        self.errors: list[tuple[int, int, str]] = []

    def covers(self, line: int, code: str) -> bool:
        return code in self.by_line.get(line, frozenset())


def _parse_suppressions(source: str) -> _Suppressions:
    sup = _Suppressions()
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return sup
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        body = match.group("body").strip()
        skip = _SKIP_FILE_RE.match(body)
        if skip is not None:
            why = (skip.group("why") or "").strip()
            if not why:
                sup.errors.append(
                    (line, col, "skip-file pragma without a justification")
                )
            elif line <= 10:
                sup.skip_file = True
            else:
                sup.errors.append(
                    (line, col, "skip-file pragma must be in the first 10 lines")
                )
            continue
        disable = _DISABLE_RE.match(body)
        if disable is None:
            sup.errors.append((line, col, f"unrecognized reprolint pragma {body!r}"))
            continue
        codes = frozenset(c.strip() for c in disable.group("codes").split(","))
        unknown = sorted(c for c in codes if c not in RULES)
        why = (disable.group("why") or "").strip()
        if unknown:
            sup.errors.append((line, col, f"unknown rule code(s): {', '.join(unknown)}"))
            continue
        if "RPL009" in codes:
            sup.errors.append((line, col, "RPL009 is not suppressible"))
            continue
        if not why:
            sup.errors.append(
                (line, col, f"disable={','.join(sorted(codes))} without a justification")
            )
            continue
        # A standalone pragma guards the next line; a trailing one its own.
        prefix = lines[line - 1][:col] if line - 1 < len(lines) else ""
        target = line + 1 if not prefix.strip() else line
        sup.by_line[target] = sup.by_line.get(target, frozenset()) | codes
    return sup


# ---------------------------------------------------------------------------
# unordered-expression classification (shared by RPL001 / RPL007)
# ---------------------------------------------------------------------------

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _unordered_reason(node: ast.expr, local_unordered: frozenset[str]) -> str | None:
    """Describe why ``node`` evaluates to an unordered collection, else None."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return f"{func.id}() result"
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
            return f".{func.attr}() view"
        return None
    if isinstance(node, ast.Name) and node.id in local_unordered:
        return f"set/dict-valued local {node.id!r}"
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        left = _unordered_reason(node.left, local_unordered)
        right = _unordered_reason(node.right, local_unordered)
        if left is not None or right is not None:
            return "set-algebra expression"
    return None


def _collect_unordered_locals(scope: ast.AST) -> frozenset[str]:
    """Names in ``scope`` whose every binding is an unordered collection.

    Conservative single-pass dataflow: a name qualifies only when *all* its
    assignments (in this scope, excluding nested function/class bodies) bind
    an unordered expression, and it is never rebound by a loop target,
    ``with``-as, parameter, or augmented assignment.
    """
    assigned: dict[str, list[ast.expr | None]] = {}

    def note(name: str, value: ast.expr | None) -> None:
        assigned.setdefault(name, []).append(value)

    def target_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from target_names(elt)
        elif isinstance(target, ast.Starred):
            yield from target_names(target.value)

    class Collector(ast.NodeVisitor):
        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    note(target.id, node.value)
                else:
                    for name in target_names(target):
                        note(name, None)
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if isinstance(node.target, ast.Name) and node.value is not None:
                note(node.target.id, node.value)
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            for name in target_names(node.target):
                note(name, None)
            self.generic_visit(node)

        def visit_For(self, node: ast.For) -> None:
            for name in target_names(node.target):
                note(name, None)
            self.generic_visit(node)

        def visit_withitem(self, node: ast.withitem) -> None:
            if node.optional_vars is not None:
                for name in target_names(node.optional_vars):
                    note(name, None)
            self.generic_visit(node)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not scope:
                note(node.name, None)
            else:
                for arg in ast.walk(node.args):
                    if isinstance(arg, ast.arg):
                        note(arg.arg, None)
                for stmt in node.body:
                    self.visit(stmt)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            if node is not scope:
                note(node.name, None)
            else:
                for arg in ast.walk(node.args):
                    if isinstance(arg, ast.arg):
                        note(arg.arg, None)
                for stmt in node.body:
                    self.visit(stmt)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            if node is not scope:
                note(node.name, None)
            else:
                for stmt in node.body:
                    self.visit(stmt)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return None

        def visit_Global(self, node: ast.Global) -> None:
            for name in node.names:
                note(name, None)

        def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
            for name in node.names:
                note(name, None)

    Collector().visit(scope)
    unordered: set[str] = set()
    for name, values in assigned.items():
        if values and all(
            v is not None and _unordered_reason(v, frozenset()) is not None
            for v in values
        ):
            unordered.add(name)
    return frozenset(unordered)


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _terminal_identifier(node: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute/Subscript chain."""
    cur: ast.expr = node
    while isinstance(cur, (ast.Subscript, ast.Starred)):
        cur = cur.value
    if isinstance(cur, ast.Attribute):
        return cur.attr
    if isinstance(cur, ast.Name):
        return cur.id
    return None


_ITER_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "map"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str, active: frozenset[str]) -> None:
        self.relpath = relpath
        self.active = active
        self.diagnostics: list[Diagnostic] = []
        self._loop_depth = 0
        self._scope_stack: list[frozenset[str]] = []
        self._lambda_stack: list[frozenset[str]] = []

    # -- helpers ----------------------------------------------------------

    def report(self, code: str, node: ast.AST, message: str) -> None:
        if code in self.active:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            self.diagnostics.append(Diagnostic(self.relpath, line, col, code, message))

    @property
    def _locals(self) -> frozenset[str]:
        return self._scope_stack[-1] if self._scope_stack else frozenset()

    def _unordered(self, node: ast.expr) -> str | None:
        return _unordered_reason(node, self._locals)

    def _check_iteration_site(self, iterable: ast.expr, where: str) -> None:
        reason = self._unordered(iterable)
        if reason is not None:
            self.report(
                "RPL001",
                iterable,
                f"{where} iterates a {reason}; ordering is not canonical",
            )

    # -- scope management --------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        self._scope_stack.append(_collect_unordered_locals(node))
        self.generic_visit(node)
        self._scope_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        outer_depth = self._loop_depth
        self._loop_depth = 0
        self._scope_stack.append(_collect_unordered_locals(node))
        self.generic_visit(node)
        self._scope_stack.pop()
        self._loop_depth = outer_depth

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        params = frozenset(
            arg.arg
            for arg in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
        )
        self._lambda_stack.append(params)
        self.generic_visit(node)
        self._lambda_stack.pop()

    @property
    def _lambda_params(self) -> frozenset[str]:
        if not self._lambda_stack:
            return frozenset()
        return frozenset().union(*self._lambda_stack)

    # -- RPL006: mutable defaults -----------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            bad: str | None = None
            if isinstance(default, (ast.List, ast.ListComp)):
                bad = "list"
            elif isinstance(default, (ast.Dict, ast.DictComp)):
                bad = "dict"
            elif isinstance(default, (ast.Set, ast.SetComp)):
                bad = "set"
            elif isinstance(default, ast.Call):
                name = _terminal_identifier(default.func)
                if name in MUTABLE_FACTORIES:
                    bad = name
            if bad is not None:
                self.report(
                    "RPL006", default, f"mutable default argument ({bad} value)"
                )

    # -- RPL001 / RPL004 / RPL008: loops ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration_site(node.iter, "for loop")
        self._check_per_element_loop(node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration_site(node.iter, "async for loop")
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _check_per_element_loop(self, node: ast.For) -> None:
        iterator = node.iter
        if isinstance(iterator, ast.Call):
            func_name = _terminal_identifier(iterator.func)
            if func_name == "range" and len(iterator.args) == 1:
                arg = iterator.args[0]
                extent: str | None = None
                if (
                    isinstance(arg, ast.Call)
                    and _terminal_identifier(arg.func) == "len"
                ):
                    extent = "range(len(...))"
                elif (
                    isinstance(arg, ast.Subscript)
                    and _terminal_identifier(arg.value) == "shape"
                ):
                    extent = "range(arr.shape[...])"
                elif (
                    isinstance(arg, ast.Attribute) and arg.attr == "size"
                ):
                    extent = "range(arr.size)"
                if extent is not None:
                    self.report(
                        "RPL004",
                        node,
                        f"per-element index loop ({extent}) over an array extent",
                    )
                    return
            if (
                isinstance(iterator.func, ast.Attribute)
                and iterator.func.attr == "tolist"
                and _is_append_only_body(node.body)
            ):
                self.report(
                    "RPL004",
                    node,
                    "per-element .tolist() loop accumulating via .append",
                )

    # -- comprehensions (RPL001) ------------------------------------------

    def _check_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
        kind: str,
    ) -> None:
        for gen in node.generators:
            self._check_iteration_site(gen.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, "set comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")

    # -- RPL002: float equality on score-like names ------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_excused_operand(left) or _is_excused_operand(right):
                continue
            for side in (left, right):
                name = _terminal_identifier(side)
                if name is not None and is_score_like(name):
                    self.report(
                        "RPL002",
                        node,
                        f"exact float {'==' if isinstance(op, ast.Eq) else '!='} "
                        f"on score-like name {name!r}",
                    )
                    break
        self.generic_visit(node)

    # -- RPL003 / RPL005 / RPL007 / RPL008: calls & attributes -------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted is not None:
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] in {"np", "numpy"}
                and parts[1] == "random"
                and parts[2] not in ALLOWED_NP_RANDOM
            ):
                self.report(
                    "RPL003", node, f"global numpy RNG access ({dotted})"
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in STDLIB_RANDOM_FUNCS
            ):
                self.report(
                    "RPL003", node, f"global stdlib RNG access ({dotted})"
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            if dotted in WALL_CLOCK_CALLS:
                self.report("RPL005", node, f"wall-clock read ({dotted}())")
            if dotted in HOT_ALLOC_CALLS and self._loop_depth > 0:
                self.report(
                    "RPL008",
                    node,
                    f"{dotted}() allocates inside a per-op loop",
                )
        func_name = _terminal_identifier(node.func)
        if func_name in _ITER_CONSUMERS:
            for arg in node.args:
                reason = self._unordered(arg)
                if reason is not None:
                    self.report(
                        "RPL001",
                        arg,
                        f"{func_name}() materializes a {reason} in "
                        "non-canonical order",
                    )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            for arg in node.args:
                reason = self._unordered(arg)
                if reason is not None:
                    self.report(
                        "RPL001",
                        arg,
                        f"str.join over a {reason}; ordering is not canonical",
                    )
        self._check_digest_call(node, dotted, func_name)
        self._check_nonatomic_write(node, dotted)
        self.generic_visit(node)

    # -- RPL010: in-place writes in durability-critical modules ------------

    def _check_nonatomic_write(self, node: ast.Call, dotted: str | None) -> None:
        if dotted in NONATOMIC_SAVE_CALLS:
            # np.savez(handle, ...) through a lambda parameter is the
            # write_via_handle_atomic idiom: the handle is the tmp file.
            target = node.args[0] if node.args else None
            if not (
                isinstance(target, ast.Name) and target.id in self._lambda_params
            ):
                self.report(
                    "RPL010", node, f"{dotted}() writes its target in place"
                )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in NONATOMIC_WRITE_ATTRS
        ):
            self.report(
                "RPL010",
                node,
                f".{node.func.attr}() replaces the file non-atomically",
            )
            return
        mode_arg: ast.expr | None = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode_arg = node.args[1] if len(node.args) > 1 else None
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "open"
            and (dotted is None or not dotted.startswith("os."))
        ):
            # Path.open / handle-like .open; os.open takes int flags and
            # is used read-only here (directory fsync).
            mode_arg = node.args[0] if node.args else None
        else:
            return
        for kw in node.keywords:
            if kw.arg == "mode":
                mode_arg = kw.value
        if mode_arg is None:
            return  # default mode is read-only
        if isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str):
            if not (WRITE_MODE_CHARS & set(mode_arg.value)):
                return
            desc = f"open(..., {mode_arg.value!r})"
        else:
            # A dynamic mode in a durability-critical module deserves a
            # look (and a pragma if it is genuinely the atomic primitive).
            desc = "open() with a non-literal mode"
        self.report("RPL010", node, f"{desc} writes in place")

    def _check_digest_call(
        self, node: ast.Call, dotted: str | None, func_name: str | None
    ) -> None:
        is_digest = False
        if func_name in DIGEST_CONSTRUCTORS:
            is_digest = True
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "update":
            receiver = _terminal_identifier(node.func.value)
            if receiver is not None and is_digest_receiver(receiver):
                is_digest = True
        if not is_digest:
            return
        for arg in node.args:
            target = arg
            # encode()/repr()/str() wrappers don't impose an ordering.
            while isinstance(target, ast.Call) and (
                (
                    isinstance(target.func, ast.Attribute)
                    and target.func.attr == "encode"
                    and isinstance(target.func.value, ast.expr)
                )
                or _terminal_identifier(target.func) in {"repr", "str", "bytes"}
            ):
                if isinstance(target.func, ast.Attribute):
                    target = target.func.value
                elif target.args:
                    target = target.args[0]
                else:
                    break
            reason = self._unordered(target)
            if reason is not None:
                self.report(
                    "RPL007",
                    arg,
                    f"digest input is a {reason}; hash depends on arbitrary order",
                )


def _is_excused_operand(node: ast.expr) -> bool:
    """Comparisons against None / strings are identity-ish, not float math."""
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, str)
    )


def _is_append_only_body(body: list[ast.stmt]) -> bool:
    """True when every statement is (conditionally) ``x.append(...)``."""
    if not body:
        return False
    for stmt in body:
        if isinstance(stmt, ast.If):
            if not _is_append_only_body(stmt.body):
                return False
            if stmt.orelse and not _is_append_only_body(stmt.orelse):
                return False
        elif isinstance(stmt, ast.Expr):
            call = stmt.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "append"
            ):
                return False
        else:
            return False
    return True


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    relpath: str,
    *,
    select: Iterable[str] | None = None,
    respect_scope: bool = True,
) -> LintResult:
    """Lint ``source`` as if it lived at repo-relative ``relpath``."""
    relpath = relpath.replace("\\", "/")
    sup = _parse_suppressions(source)
    diagnostics: list[Diagnostic] = [
        Diagnostic(relpath, line, col, "RPL009", message)
        for line, col, message in sup.errors
    ]
    if sup.skip_file:
        return LintResult(relpath, tuple(diagnostics), skipped=True)
    chosen = frozenset(select) if select is not None else frozenset(RULES)
    active = frozenset(
        code
        for code, rule in RULES.items()
        if code in chosen and (not respect_scope or rule.applies_to(relpath))
    )
    tree = ast.parse(source, filename=relpath)
    checker = _Checker(relpath, active)
    checker.visit(tree)
    for diag in checker.diagnostics:
        if sup.covers(diag.line, diag.code):
            diag = Diagnostic(
                diag.path, diag.line, diag.col, diag.code, diag.message, True
            )
        diagnostics.append(diag)
    diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    return LintResult(relpath, tuple(diagnostics))


def lint_file(
    path: Path,
    root: Path,
    *,
    select: Iterable[str] | None = None,
    respect_scope: bool = True,
) -> LintResult:
    resolved = path.resolve()
    try:
        relpath = resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        # Outside the root (e.g. an absolute path to a scratch file):
        # lint it under its absolute path, where no scoped rule applies.
        relpath = resolved.as_posix()
    source = path.read_text(encoding="utf-8")
    return lint_source(source, relpath, select=select, respect_scope=respect_scope)


_SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        ".hypothesis",
        "build",
        "dist",
        ".venv",
        "venv",
        "node_modules",
    }
)


def iter_python_files(
    paths: Iterable[Path], *, include_fixtures: bool = False
) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (deterministic sorted order)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            parts = set(sub.parts)
            if parts & _SKIP_DIRS:
                continue
            if not include_fixtures and "reprolint_fixtures" in parts:
                continue
            yield sub


def run_paths(
    paths: Iterable[str | Path],
    *,
    root: str | Path | None = None,
    select: Iterable[str] | None = None,
    respect_scope: bool = True,
    include_fixtures: bool = False,
) -> list[LintResult]:
    """Lint every Python file under ``paths``; root defaults to the CWD."""
    root_path = Path(root) if root is not None else Path.cwd()
    results: list[LintResult] = []
    for file_path in iter_python_files(
        (Path(p) for p in paths), include_fixtures=include_fixtures
    ):
        results.append(
            lint_file(
                file_path, root_path, select=select, respect_scope=respect_scope
            )
        )
    return results
