"""Command-line front end: ``python -m tools.reprolint src tests benchmarks``.

Exit codes: 0 = clean, 1 = active diagnostics, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from tools.reprolint.engine import LintResult, run_paths
from tools.reprolint.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "repo-specific determinism & hot-path linter for the FD-RMS codebase"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-code diagnostic counts after the findings",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print diagnostics silenced by disable pragmas",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="ignore per-rule path scopes (audit mode; noisy by design)",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="lint tests/reprolint_fixtures (excluded by default; it is a corpus "
        "of deliberate violations)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="diagnostic format; 'github' emits workflow ::error annotations",
    )
    return parser


def _print_rules() -> None:
    width = max(len(rule.name) for rule in RULES.values())
    for code in sorted(RULES):
        rule = RULES[code]
        scope = ", ".join(rule.include) if rule.include else "everywhere"
        if rule.exclude:
            scope += f" (except {', '.join(rule.exclude)})"
        print(f"{code}  {rule.name:<{width}}  {rule.summary}")
        print(f"{'':6}  {'':{width}}  scope: {scope}")
        print(f"{'':6}  {'':{width}}  fix: {rule.fixit}")


def _render(result_list: list[LintResult], args: argparse.Namespace) -> int:
    active_total = 0
    suppressed_total = 0
    counts: Counter[str] = Counter()
    for result in result_list:
        for diag in result.diagnostics:
            if diag.suppressed:
                suppressed_total += 1
                if not args.show_suppressed:
                    continue
                prefix = "[suppressed] "
            else:
                active_total += 1
                counts[diag.code] += 1
                prefix = ""
            if args.format == "github" and not diag.suppressed:
                print(
                    f"::error file={diag.path},line={diag.line},"
                    f"col={diag.col + 1},title={diag.code}::{diag.message}"
                )
            else:
                print(prefix + diag.render())
    if args.statistics:
        print()
        files = len(result_list)
        skipped = sum(1 for r in result_list if r.skipped)
        print(
            f"reprolint: {files} files checked ({skipped} skip-file'd), "
            f"{active_total} diagnostics, {suppressed_total} suppressed"
        )
        for code in sorted(counts):
            print(f"  {code} {RULES[code].name}: {counts[code]}")
    return 1 if active_total else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) not found: {', '.join(missing)}")
    try:
        results = run_paths(
            args.paths,
            select=select,
            respect_scope=not args.no_scope,
            include_fixtures=args.include_fixtures,
        )
    except SyntaxError as exc:
        print(f"reprolint: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    return _render(results, args)


if __name__ == "__main__":
    raise SystemExit(main())
