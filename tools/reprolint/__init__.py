"""reprolint — repo-specific determinism & hot-path static analysis.

An AST-based linter (stdlib only) that machine-checks the FD-RMS repo's
determinism/parity contract: canonical iteration order, SCORE_TOL float
comparisons, seeded RNG plumbing, vectorized hot paths, monotonic timing,
and allocation-free per-op loops.  See README.md "Static analysis".
"""

from tools.reprolint.engine import (
    Diagnostic,
    LintResult,
    lint_file,
    lint_source,
    run_paths,
)
from tools.reprolint.rules import RULES, Rule

__all__ = [
    "Diagnostic",
    "LintResult",
    "RULES",
    "Rule",
    "lint_file",
    "lint_source",
    "run_paths",
]
