"""Rule registry for reprolint.

Each rule carries an error code, a one-line summary, a fix-it hint, and a
path scope.  Scopes are expressed as repo-relative POSIX path prefixes; an
empty ``include`` tuple means the rule applies everywhere.  The scopes mirror
the determinism/parity contract documented in README.md: ordering rules bite
in the engine packages, allocation rules bite only in the per-op hot path.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    fixit: str
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """True when ``relpath`` (POSIX, repo-relative) is in this rule's scope."""
        if any(_prefix_match(relpath, p) for p in self.exclude):
            return False
        if not self.include:
            return True
        return any(_prefix_match(relpath, p) for p in self.include)


def _prefix_match(relpath: str, prefix: str) -> bool:
    if relpath == prefix:
        return True
    if not prefix.endswith("/"):
        prefix += "/"
    return relpath.startswith(prefix)


_HOT_ALLOC_MODULES = (
    "src/repro/core/topk.py",
    "src/repro/core/set_cover.py",
    "src/repro/core/fdrms.py",
)

_HOT_LOOP_MODULES = _HOT_ALLOC_MODULES + (
    "src/repro/index/kdtree.py",
    "src/repro/index/conetree.py",
)


RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    RULES[rule.code] = rule
    return rule


RPL001 = _register(
    Rule(
        code="RPL001",
        name="unordered-iteration",
        summary=(
            "iteration over a set/dict (or .keys()/.values()/.items()) whose order "
            "is not canonical"
        ),
        fixit="wrap the iterable in sorted(...) or iterate a canonically ordered array",
        include=("src/repro/core/", "src/repro/index/", "src/repro/scenarios/"),
    )
)

RPL002 = _register(
    Rule(
        code="RPL002",
        name="float-equality-on-score",
        summary="exact ==/!= comparison on a score-like float quantity",
        fixit="compare with abs(a - b) <= SCORE_TOL or np.isclose(a, b, atol=SCORE_TOL)",
        include=("src/",),
    )
)

RPL003 = _register(
    Rule(
        code="RPL003",
        name="global-rng",
        summary="global np.random.* / random.* call instead of a passed Generator",
        fixit="thread a numpy Generator through (see repro.utils.rng.resolve_rng)",
    )
)

RPL004 = _register(
    Rule(
        code="RPL004",
        name="per-element-loop",
        summary="per-element Python loop over a numpy array in a hot-path module",
        fixit="replace the index/append loop with a vectorized numpy expression",
        include=_HOT_LOOP_MODULES,
    )
)

RPL005 = _register(
    Rule(
        code="RPL005",
        name="wall-clock-read",
        summary="wall-clock read outside utils/timing.py and the replay driver",
        fixit="use repro.utils.timing.Stopwatch (perf_counter) or accept a timestamp",
        exclude=("src/repro/utils/timing.py", "src/repro/scenarios/replay.py"),
    )
)

RPL006 = _register(
    Rule(
        code="RPL006",
        name="mutable-default-arg",
        summary="mutable default argument value",
        fixit="default to None and construct the container inside the function",
    )
)

RPL007 = _register(
    Rule(
        code="RPL007",
        name="unordered-digest-input",
        summary="set/dict-ordered data fed into a digest/hash without ordering",
        fixit="sort (sorted(...) / sort_keys=True) before hashing so digests replay",
    )
)

RPL008 = _register(
    Rule(
        code="RPL008",
        name="alloc-in-hot-loop",
        summary="numpy allocation (np.zeros/np.empty/np.concatenate) inside a per-op loop",
        fixit="hoist the allocation out of the loop or reuse a preallocated scratch array",
        include=_HOT_ALLOC_MODULES,
    )
)

#: Meta-rule: malformed suppression pragmas.  Not suppressible and not scoped.
RPL009 = _register(
    Rule(
        code="RPL009",
        name="bad-suppression",
        summary="reprolint suppression pragma without a justification (or unknown code)",
        fixit="write `# reprolint: disable=RPLxxx -- <why this is intentional>`",
    )
)

RPL010 = _register(
    Rule(
        code="RPL010",
        name="non-atomic-write",
        summary=(
            "non-atomic file write (bare open-for-writing / np.savez / "
            ".write_text) in a durability-critical module"
        ),
        fixit=(
            "write a tmp sibling, fsync, then os.replace onto the target "
            "(use repro.persist.atomic)"
        ),
        include=("src/repro/persist/", "src/repro/io.py"),
        # The fault injector corrupts files in place by design.
        exclude=("src/repro/persist/faults.py",),
    )
)


#: Name segments that mark an identifier as score-like for RPL002.
SCORE_SEGMENTS = frozenset(
    {
        "score",
        "scores",
        "tau",
        "taus",
        "omega",
        "thresh",
        "threshold",
        "thresholds",
        "regret",
        "regrets",
        "gain",
        "gains",
        "kth",
    }
)

_SEGMENT_RE = re.compile(r"[a-z0-9]+")


def is_score_like(identifier: str) -> bool:
    """True when any snake_case segment of ``identifier`` is score-like."""
    return any(seg in SCORE_SEGMENTS for seg in _SEGMENT_RE.findall(identifier.lower()))


#: ``np.random.X`` attributes that construct seeded generators (allowed).
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Module-level ``random.X`` functions that draw from the global stream.
STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "triangular",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: Dotted call names that read the wall clock (RPL005).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Dotted call names that allocate fresh numpy arrays (RPL008).
HOT_ALLOC_CALLS = frozenset(
    {
        "np.zeros",
        "np.empty",
        "np.concatenate",
        "numpy.zeros",
        "numpy.empty",
        "numpy.concatenate",
    }
)

#: Dotted call names that write an npy/npz file in place (RPL010).
NONATOMIC_SAVE_CALLS = frozenset(
    {
        "np.save",
        "np.savez",
        "np.savez_compressed",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
    }
)

#: ``Path`` convenience writers that replace a file in place (RPL010).
NONATOMIC_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

#: ``open``-mode characters that make the call a write (RPL010).
WRITE_MODE_CHARS = frozenset("wxa+")

#: Constructors whose results are mutable containers (RPL006).
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: hashlib-style digest constructors (RPL007).
DIGEST_CONSTRUCTORS = frozenset(
    {
        "sha1",
        "sha224",
        "sha256",
        "sha384",
        "sha512",
        "sha3_256",
        "sha3_512",
        "md5",
        "blake2b",
        "blake2s",
    }
)

_DIGEST_RECEIVER_RE = re.compile(r"(digest|hash|sha\d*|md5|blake)", re.IGNORECASE)


def is_digest_receiver(identifier: str) -> bool:
    """True when ``identifier`` plausibly names a hashlib digest object."""
    return bool(_DIGEST_RECEIVER_RE.search(identifier))
