"""The fully-dynamic database ``P_t``.

The paper models the data as an initial database ``P_0`` plus a sequence
of operations ``Δ = <Δ_1, Δ_2, ...>``, each either an insertion
``<p, +>`` or a deletion ``<p, ->`` (§II-B). :class:`Database` implements
that model with stable integer tuple ids: an id is assigned at insertion
time and never reused, so index structures and set systems can key on ids
across arbitrary interleavings of insertions and deletions.

Storage is a growable ``(capacity, d)`` float64 matrix plus an alive
bitmask; snapshots and score computations are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils import as_point_matrix

INSERT = "+"
DELETE = "-"


@dataclass(frozen=True)
class Operation:
    """One update ``Δ_t``: insert a new tuple or delete an existing one.

    ``kind`` is :data:`INSERT` or :data:`DELETE`. For insertions ``point``
    carries the new tuple and ``tuple_id`` may be ``None`` until applied;
    for deletions ``tuple_id`` names the victim and ``point`` is its value
    (kept for logging and for replaying workloads against baselines).
    """

    kind: str
    point: np.ndarray
    tuple_id: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in (INSERT, DELETE):
            raise ValueError(f"kind must be '+' or '-', got {self.kind!r}")


def iter_op_runs(ops) -> "list[list[Operation]]":
    """Split an operation sequence into maximal same-kind runs.

    The batch pipelines amortize work over runs of consecutive
    insertions (bulk loads, one score GEMM) while deletions stay
    per-op; every ``apply_batch`` layer shares this grouping.
    """
    runs: list[list[Operation]] = []
    for op in ops:
        if runs and runs[-1][0].kind == op.kind:
            runs[-1].append(op)
        else:
            runs.append([op])
    return runs


class Database:
    """A set of d-dimensional tuples supporting insert/delete by id.

    Parameters
    ----------
    points : array-like of shape (n, d), optional
        Initial database ``P_0``. May be omitted to start empty, in which
        case ``d`` must be given.
    d : int, optional
        Dimensionality when starting empty.

    Notes
    -----
    Values are expected in ``[0, 1]`` per the paper's normalization;
    nonnegativity is validated strictly on insert, the upper bound is not
    enforced (the algorithms are scale-free, and generators may place
    points exactly on the boundary).
    """

    def __init__(self, points=None, *, d: int | None = None) -> None:
        if points is None:
            if d is None:
                raise ValueError("either points or d must be provided")
            self._d = int(d)
            self._data = np.empty((8, self._d), dtype=np.float64)
            self._alive = np.zeros(8, dtype=bool)
            self._used = 0
        else:
            arr = as_point_matrix(points)
            if d is not None and arr.shape[1] != d:
                raise ValueError(f"points have d={arr.shape[1]}, expected {d}")
            self._d = arr.shape[1]
            self._data = arr.copy()
            self._alive = np.ones(arr.shape[0], dtype=bool)
            self._used = arr.shape[0]
        self._size = int(self._alive[: self._used].sum())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Dimensionality of the tuples."""
        return self._d

    @property
    def capacity(self) -> int:
        """Number of tuple ids ever assigned (alive + deleted)."""
        return self._used

    def __len__(self) -> int:
        return self._size

    def __contains__(self, tuple_id) -> bool:
        tid = int(tuple_id)
        return 0 <= tid < self._used and bool(self._alive[tid])

    def ids(self) -> np.ndarray:
        """Sorted array of alive tuple ids."""
        return np.flatnonzero(self._alive[: self._used])

    def __iter__(self) -> Iterator[int]:
        return iter(self.ids())

    def point(self, tuple_id: int) -> np.ndarray:
        """The tuple with id ``tuple_id`` (a copy)."""
        if tuple_id not in self:
            raise KeyError(f"tuple id {tuple_id} is not alive")
        return self._data[int(tuple_id)].copy()

    def points(self, tuple_ids=None) -> np.ndarray:
        """Matrix of tuples for ``tuple_ids`` (default: all alive, id order).

        When ``tuple_ids is None`` and no tuple has ever been deleted,
        this is a **zero-copy** read-only view of the contiguous backing
        storage; otherwise a fresh array is returned. The view stays
        valid across later insertions (the storage row it exposes is
        never rewritten — ids are not reused), but it reflects the
        database as of the call.
        """
        if tuple_ids is None:
            if self._size == self._used:
                view = self._data[: self._used]
                view.flags.writeable = False
                return view
            return self._data[: self._used][self._alive[: self._used]]
        idx = np.asarray(list(tuple_ids), dtype=np.intp)
        if idx.size:
            ok = (idx >= 0) & (idx < self._used)
            if not ok.all() or not self._alive[idx[ok]].all():
                bad = [int(i) for i in idx if i not in self]
                raise KeyError(f"tuple ids not alive: {bad}")
        return self._data[idx]

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, matrix)`` of the alive tuples, aligned row-for-row."""
        ids = self.ids()
        return ids, self._data[ids].copy()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def scores(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, scores)`` of all alive tuples for utility ``u``."""
        ids = self.ids()
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        return ids, self._data[ids] @ u

    def top_k(self, u: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k ``(ids, scores)`` for ``u``, best first.

        Ties break toward the smaller tuple id (a fixed consistent rule,
        §II-A). If fewer than ``k`` tuples are alive, all are returned.
        """
        ids, sc = self.scores(u)
        if ids.size == 0:
            return ids, sc
        k = min(int(k), ids.size)
        # ids ascend, so a stable sort on -score breaks ties by id.
        order = np.argsort(-sc, kind="stable")[:k]
        return ids[order], sc[order]

    def kth_score(self, u: np.ndarray, k: int) -> float:
        """``ω_k(u, P_t)``: the k-th largest score (0.0 on an empty DB)."""
        ids, sc = self.scores(u)
        if ids.size == 0:
            return 0.0
        k = min(int(k), ids.size)
        return float(np.partition(sc, -k)[-k])

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert a tuple; returns its freshly assigned id."""
        vec = np.asarray(point, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self._d:
            raise ValueError(f"point has d={vec.shape[0]}, expected {self._d}")
        if not np.isfinite(vec).all():
            raise ValueError("point contains NaN or infinite values")
        if (vec < 0).any():
            raise ValueError("point must lie in the nonnegative orthant")
        if self._used == self._data.shape[0]:
            self._grow()
        tuple_id = self._used
        self._data[tuple_id] = vec
        self._alive[tuple_id] = True
        self._used += 1
        self._size += 1
        return tuple_id

    def delete(self, tuple_id: int) -> np.ndarray:
        """Delete the tuple with id ``tuple_id``; returns its value."""
        if tuple_id not in self:
            raise KeyError(f"tuple id {tuple_id} is not alive")
        tid = int(tuple_id)
        self._alive[tid] = False
        self._size -= 1
        return self._data[tid].copy()

    def delete_many(self, tuple_ids) -> np.ndarray:
        """Delete a batch of tuples; returns their values (in id order).

        Identical to calling :meth:`delete` per id — but validation and
        the alive-flag writes are one array operation each, and the call
        is atomic: if any id is dead or duplicated, nothing is deleted.
        """
        ids = np.asarray(list(tuple_ids), dtype=np.intp)
        if ids.size == 0:
            return np.empty((0, self._d))
        if ids.size <= 4:
            # Tiny batches (the common delete-run shape in mixed
            # streams): scalar checks beat the vectorized validation.
            tids = ids.tolist()
            if len(set(tids)) != len(tids):
                raise KeyError("duplicate tuple ids in batch")
            bad = [t for t in tids if t not in self]
            if bad:
                raise KeyError(f"tuple ids not alive: {bad}")
            values = self._data[ids].copy()
            alive = self._alive
            for t in tids:
                alive[t] = False
            self._size -= len(tids)
            return values
        ok = (ids >= 0) & (ids < self._used)
        if not ok.all() or not self._alive[ids[ok]].all():
            bad = [int(i) for i in ids if i not in self]
            raise KeyError(f"tuple ids not alive: {bad}")
        if np.unique(ids).size != ids.size:
            raise KeyError("duplicate tuple ids in batch")
        values = self._data[ids].copy()
        self._alive[ids] = False
        self._size -= ids.size
        return values

    def insert_many(self, points) -> np.ndarray:
        """Insert a batch of tuples; returns their new ids (in row order).

        Identical to calling :meth:`insert` per row — ids are assigned
        sequentially — but validation and storage writes are one array
        operation each.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.shape[1] != self._d:
            raise ValueError(f"points must be (n, {self._d}), got {pts.shape}")
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        if not np.isfinite(pts).all():
            raise ValueError("points contain NaN or infinite values")
        if (pts < 0).any():
            raise ValueError("points must lie in the nonnegative orthant")
        n = pts.shape[0]
        if self._used + n > self._data.shape[0]:
            self._grow(self._used + n)
        ids = np.arange(self._used, self._used + n, dtype=np.intp)
        self._data[ids] = pts
        self._alive[ids] = True
        self._used += n
        self._size += n
        return ids

    def apply(self, op: Operation) -> int:
        """Apply an :class:`Operation`; returns the affected tuple id."""
        if op.kind == INSERT:
            return self.insert(op.point)
        if op.tuple_id is None:
            raise ValueError("deletion operations require a tuple_id")
        self.delete(op.tuple_id)
        return op.tuple_id

    def apply_batch(self, ops) -> list[int]:
        """Apply a sequence of operations; returns the affected ids.

        Consecutive insertions are stored with one :meth:`insert_many`
        call; the result is indistinguishable from applying each
        operation with :meth:`apply` (ids are assigned in order).
        """
        out: list[int] = []
        for run in iter_op_runs(ops):
            if run[0].kind == INSERT:
                pts = np.asarray([op.point for op in run])
                out.extend(int(pid) for pid in self.insert_many(pts))
            else:
                out.extend(self.apply(op) for op in run)
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Flat-array snapshot of the full state (checkpointing).

        The exported tape preserves tuple-id numbering exactly,
        including the permanently dead ids left by deletions.
        """
        used = self._used
        return {
            "d": np.int64(self._d),
            "data": self._data[:used].copy(),
            "alive": self._alive[:used].copy(),
        }

    @classmethod
    def from_state(cls, state) -> "Database":
        """Rebuild a database from :meth:`export_state` arrays."""
        d = int(state["d"])
        data = np.ascontiguousarray(state["data"], dtype=np.float64)
        alive = np.asarray(state["alive"], dtype=bool).copy()
        if data.ndim != 2 or data.shape[1] != d or \
                alive.shape[0] != data.shape[0]:
            raise ValueError("database state arrays are inconsistent")
        db = cls(d=d)
        if data.shape[0]:
            db._data = data
            db._alive = alive
            db._used = data.shape[0]
            db._size = int(alive.sum())
        return db

    def _grow(self, need: int | None = None) -> None:
        """Grow the backing storage by doubling (amortized O(1) inserts)."""
        new_cap = max(8, 2 * self._data.shape[0])
        if need is not None:
            while new_cap < need:
                new_cap *= 2
        data = np.empty((new_cap, self._d), dtype=np.float64)
        data[: self._used] = self._data[: self._used]
        alive = np.zeros(new_cap, dtype=bool)
        alive[: self._used] = self._alive[: self._used]
        self._data = data
        self._alive = alive
