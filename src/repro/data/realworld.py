"""Simulated stand-ins for the paper's real-world datasets.

The paper evaluates on four real datasets (Table I):

========  =========  ====  ============
dataset   n          d     #skyline
========  =========  ====  ============
BB        21,961     5     200
AQ        382,168    9     21,065
CT        581,012    8     77,217
Movie     13,176     12    3,293
========  =========  ====  ============

Those files are not redistributable here, so we *simulate* them
(DESIGN.md §5): each generator produces a dataset with the same ``n``
and ``d``, values scaled to ``[0, 1]``, and a correlation structure
tuned so the skyline-size fraction lands in the same regime as Table I.
All k-RMS algorithms interact with data only through dominance tests
and inner products, so matching dimensionality and skyline regime
preserves the comparisons that the real datasets drive.

Every generator accepts an ``n`` override: benchmarks default to scaled-
down sizes so the suite runs on a laptop, while paper-scale ``n`` remains
one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import (
    anticorrelated_points,
    correlated_points,
    independent_points,
)
from repro.utils import resolve_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-reported statistics of one evaluation dataset (Table I)."""

    name: str
    n: int
    d: int
    skyline: int


DATASET_SPECS: dict[str, DatasetSpec] = {
    "BB": DatasetSpec("BB", 21_961, 5, 200),
    "AQ": DatasetSpec("AQ", 382_168, 9, 21_065),
    "CT": DatasetSpec("CT", 581_012, 8, 77_217),
    "Movie": DatasetSpec("Movie", 13_176, 12, 3_293),
}


def bb_like(n: int | None = None, seed=None) -> np.ndarray:
    """Basketball-statistics stand-in: 5 attributes, strongly correlated.

    Player/season stat lines (points, rebounds, assists, ...) co-move
    with overall player quality, so the real skyline is tiny (~1% of n).
    A strong shared latent factor reproduces that regime.
    """
    spec = DATASET_SPECS["BB"]
    return correlated_points(n or spec.n, spec.d, seed=seed, correlation=0.8)


def aq_like(n: int | None = None, seed=None) -> np.ndarray:
    """Air-quality stand-in: 9 attributes, mixed correlation.

    Pollutant concentrations correlate in groups (combustion products
    together) while meteorological attributes are near-independent. A
    half-correlated/half-independent mixture lands the skyline fraction
    in the Table I regime (~5%).
    """
    spec = DATASET_SPECS["AQ"]
    n = n or spec.n
    rng = resolve_rng(seed)
    corr = correlated_points(n, 4, seed=rng, correlation=0.5)
    indep = independent_points(n, spec.d - 4, seed=rng)
    return np.hstack([corr, indep])


def ct_like(n: int | None = None, seed=None) -> np.ndarray:
    """Forest-cover stand-in: 8 cartographic attributes, ~13% skyline.

    Elevation/slope/hydrology distances are weakly related; a mild
    anti-correlated component plus independent noise produces the large
    skyline the paper reports for CT.
    """
    spec = DATASET_SPECS["CT"]
    n = n or spec.n
    rng = resolve_rng(seed)
    anti = anticorrelated_points(n, 4, seed=rng, spread=0.35)
    indep = independent_points(n, spec.d - 4, seed=rng)
    return np.hstack([anti, indep])


def movie_like(n: int | None = None, seed=None) -> np.ndarray:
    """MovieLens tag-genome stand-in: 12 relevance scores, ~25% skyline.

    Tag relevance vectors are high-dimensional and close to independent
    with a weak anti-correlated flavor (a movie strongly about one tag
    is usually less about others); in 12 dimensions this yields the very
    large skyline fraction of Table I.
    """
    spec = DATASET_SPECS["Movie"]
    n = n or spec.n
    rng = resolve_rng(seed)
    base = independent_points(n, spec.d, seed=rng)
    tilt = anticorrelated_points(n, spec.d, seed=rng, spread=0.5)
    return np.clip(0.6 * base + 0.4 * tilt, 0.0, 1.0)


_GENERATORS = {
    "BB": bb_like,
    "AQ": aq_like,
    "CT": ct_like,
    "Movie": movie_like,
}


def make_dataset(name: str, n: int | None = None, seed=None) -> np.ndarray:
    """Generate a simulated dataset by Table I name (case-insensitive).

    ``Indep`` and ``AntiCor`` are also accepted with the paper's default
    n = 100 K, d = 6 (override via ``n``).
    """
    key = name.strip()
    lookup = {k.lower(): k for k in _GENERATORS}
    if key.lower() in lookup:
        return _GENERATORS[lookup[key.lower()]](n, seed=seed)
    if key.lower() == "indep":
        return independent_points(n or 100_000, 6, seed=seed)
    if key.lower() == "anticor":
        return anticorrelated_points(n or 100_000, 6, seed=seed)
    raise KeyError(f"unknown dataset {name!r}; choose from "
                   f"{sorted(_GENERATORS) + ['Indep', 'AntiCor']}")
