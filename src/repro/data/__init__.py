"""Datasets: the dynamic database model, generators, and workloads."""

from repro.data.database import Database, Operation, INSERT, DELETE
from repro.data.synthetic import (
    independent_points,
    anticorrelated_points,
    correlated_points,
)
from repro.data.realworld import (
    bb_like,
    aq_like,
    ct_like,
    movie_like,
    DATASET_SPECS,
    make_dataset,
)
from repro.data.workload import (
    DynamicWorkload,
    make_paper_workload,
    make_skewed_workload,
    make_sliding_window_workload,
)

__all__ = [
    "Database",
    "Operation",
    "INSERT",
    "DELETE",
    "independent_points",
    "anticorrelated_points",
    "correlated_points",
    "bb_like",
    "aq_like",
    "ct_like",
    "movie_like",
    "DATASET_SPECS",
    "make_dataset",
    "DynamicWorkload",
    "make_paper_workload",
    "make_skewed_workload",
    "make_sliding_window_workload",
]
