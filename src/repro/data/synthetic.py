"""Synthetic dataset generators (Börzsönyi et al. [9]).

The paper's scalability experiments use two families:

* **Indep** — attribute values independent and uniform on ``[0, 1]``;
* **AntiCor** — anti-correlated attributes: points concentrated around
  the hyperplane ``Σ x_i = c`` so that being good in one attribute means
  being bad in others; skylines are large.

Both follow the classic generator of the skyline paper [9]. A correlated
family is included as well (used by the simulated real-world datasets).
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_dimension, resolve_rng


def independent_points(n: int, d: int, seed=None) -> np.ndarray:
    """``n`` points uniform on the unit hypercube (the *Indep* family)."""
    d = check_dimension(d)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = resolve_rng(seed)
    return rng.random((n, d))


def anticorrelated_points(n: int, d: int, seed=None, *,
                          spread: float = 0.25) -> np.ndarray:
    """``n`` anti-correlated points (the *AntiCor* family).

    Following [9]: each point's attribute total is drawn from a normal
    centered at ``d/2``, then split across attributes so that a high
    value in one dimension forces low values elsewhere. ``spread``
    controls how tightly points hug the anti-correlation plane (smaller
    is tighter, hence larger skylines).
    """
    d = check_dimension(d)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")
    rng = resolve_rng(seed)
    out = np.empty((n, d))
    filled = 0
    while filled < n:
        want = n - filled
        totals = rng.normal(0.5 * d, spread, size=want)
        # Split each total across d attributes with a Dirichlet draw.
        shares = rng.dirichlet(np.ones(d), size=want)
        pts = shares * totals[:, None]
        ok = ((pts >= 0.0) & (pts <= 1.0)).all(axis=1)
        good = pts[ok]
        take = min(good.shape[0], want)
        out[filled:filled + take] = good[:take]
        filled += take
    return out


def correlated_points(n: int, d: int, seed=None, *,
                      correlation: float = 0.7) -> np.ndarray:
    """``n`` positively correlated points.

    Each point mixes a shared latent "quality" scalar with independent
    noise: ``x = corr · q + (1 - corr) · e``. High correlation shrinks
    the skyline (good tuples are good everywhere), mimicking datasets
    like the basketball statistics of Table I.
    """
    d = check_dimension(d)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    rng = resolve_rng(seed)
    quality = rng.random((n, 1))
    noise = rng.random((n, d))
    return correlation * quality + (1.0 - correlation) * noise
