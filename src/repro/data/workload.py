"""The paper's fully-dynamic workload protocol (§IV-A).

For each experiment the paper builds a workload from a dataset of ``n``
tuples as follows:

1. a random 50% becomes the initial database ``P_0``;
2. the remaining 50% are inserted one by one;
3. then 50% of all tuples (chosen at random) are deleted one by one;
4. results are recorded 10 times, after every 10% of the operations.

:class:`DynamicWorkload` captures such a schedule with *pre-assigned*
tuple ids (the :class:`repro.data.Database` id counter is deterministic:
the initial tuples take ids ``0..n0-1`` and each insertion takes the next
id), so the same operation sequence can be replayed against FD-RMS and
every static baseline identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.database import DELETE, INSERT, Operation
from repro.utils import as_point_matrix, resolve_rng


@dataclass(frozen=True)
class DynamicWorkload:
    """An initial database plus a replayable operation sequence.

    Attributes
    ----------
    initial : (n0, d) array
        ``P_0``; its rows receive tuple ids ``0..n0-1``.
    operations : list of Operation
        Insertions carry the point (id pre-assigned sequentially after
        ``n0``); deletions carry the victim id and its point value.
    snapshots : tuple of int
        1-based operation counts after which results are recorded
        (e.g. after 10%, 20%, ... of operations).
    """

    initial: np.ndarray
    operations: list[Operation] = field(default_factory=list)
    snapshots: tuple[int, ...] = ()

    @property
    def n_operations(self) -> int:
        return len(self.operations)

    @property
    def d(self) -> int:
        return int(self.initial.shape[1])

    def replay(self):
        """Yield ``(op_index, operation, is_snapshot)`` triples in order."""
        marks = set(self.snapshots)
        for idx, op in enumerate(self.operations, start=1):
            yield idx, op, idx in marks


def make_paper_workload(points, *, seed=None, initial_fraction: float = 0.5,
                        delete_fraction: float = 0.5,
                        n_snapshots: int = 10) -> DynamicWorkload:
    """Build the §IV-A workload from a full dataset.

    Parameters
    ----------
    points : (n, d) array
        The complete dataset; rows are shuffled internally.
    initial_fraction : float
        Fraction of tuples forming ``P_0`` (paper: 0.5).
    delete_fraction : float
        Fraction of all tuples deleted after the insertion phase
        (paper: 0.5). Victims are drawn uniformly from all tuples.
    n_snapshots : int
        Number of evenly spaced recording points (paper: 10).
    """
    pts = as_point_matrix(points)
    n = pts.shape[0]
    if not 0.0 < initial_fraction < 1.0:
        raise ValueError("initial_fraction must be in (0, 1)")
    if not 0.0 < delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be in (0, 1]")
    if n_snapshots < 1:
        raise ValueError("n_snapshots must be >= 1")
    rng = resolve_rng(seed)
    order = rng.permutation(n)
    n0 = max(1, int(round(n * initial_fraction)))
    init_rows = order[:n0]
    insert_rows = order[n0:]

    ops: list[Operation] = []
    next_id = n0
    for row in insert_rows:
        ops.append(Operation(INSERT, pts[row].copy(), tuple_id=next_id))
        next_id += 1
    # After insertions every tuple id in [0, n) is alive (ids follow the
    # shuffled order). Delete a random subset, one by one.
    n_del = min(n, int(round(n * delete_fraction)))
    victims = rng.choice(n, size=n_del, replace=False)
    id_to_row = np.empty(n, dtype=np.intp)
    id_to_row[:n0] = init_rows
    id_to_row[n0:] = insert_rows
    for vid in victims:
        ops.append(Operation(DELETE, pts[id_to_row[vid]].copy(),
                             tuple_id=int(vid)))
    total = len(ops)
    snaps = _snapshot_marks(total, n_snapshots)
    return DynamicWorkload(initial=pts[init_rows].copy(), operations=ops,
                           snapshots=snaps)


def _snapshot_marks(total: int, n_snapshots: int) -> tuple[int, ...]:
    if total == 0:
        return ()
    return tuple(sorted({max(1, round(total * (i + 1) / n_snapshots))
                         for i in range(n_snapshots)}))


def make_sliding_window_workload(points, *, window: int,
                                 n_snapshots: int = 10,
                                 seed=None) -> DynamicWorkload:
    """A sliding-window stream: each arrival evicts the oldest tuple.

    Classic pattern for sensor/event data (the paper's IoT motivation):
    the database always holds the ``window`` most recent tuples, so
    every step past the warm-up is an insertion immediately followed by
    the deletion of the oldest alive tuple. FD-RMS sees maximal churn —
    every operation pair touches the top-k structures.

    The first ``window`` rows form ``P_0``; the remaining rows stream in.
    """
    pts = as_point_matrix(points)
    n = pts.shape[0]
    if not 0 < window < n:
        raise ValueError(f"window must be in (0, n), got {window} of {n}")
    if n_snapshots < 1:
        raise ValueError("n_snapshots must be >= 1")
    ops: list[Operation] = []
    next_id = window
    oldest = 0
    for row in range(window, n):
        ops.append(Operation(INSERT, pts[row].copy(), tuple_id=next_id))
        next_id += 1
        ops.append(Operation(DELETE, pts[oldest].copy(), tuple_id=oldest))
        oldest += 1
    return DynamicWorkload(initial=pts[:window].copy(), operations=ops,
                           snapshots=_snapshot_marks(len(ops), n_snapshots))


def make_skewed_workload(points, *, insert_fraction: float,
                         n_operations: int, initial_fraction: float = 0.5,
                         n_snapshots: int = 10, seed=None) -> DynamicWorkload:
    """A churn stream with a controlled insert/delete mix.

    ``insert_fraction`` = 0.9 models a growing database (IoT onboarding),
    0.1 a shrinking one (catalog sunset). Deletions pick uniform random
    alive victims. Insertions recycle rows of ``points`` not currently
    alive (rows are reused cyclically if the stream outruns the data,
    receiving fresh tuple ids each time, as the paper's update model
    prescribes).
    """
    pts = as_point_matrix(points)
    n = pts.shape[0]
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError("insert_fraction must be in [0, 1]")
    if n_operations < 1:
        raise ValueError("n_operations must be >= 1")
    if not 0.0 < initial_fraction < 1.0:
        raise ValueError("initial_fraction must be in (0, 1)")
    rng = resolve_rng(seed)
    n0 = max(1, int(round(n * initial_fraction)))
    alive: list[int] = list(range(n0))         # tuple ids
    id_point: dict[int, np.ndarray] = {i: pts[i] for i in range(n0)}
    next_id = n0
    next_row = n0
    ops: list[Operation] = []
    for _ in range(n_operations):
        do_insert = rng.random() < insert_fraction or len(alive) <= 1
        if do_insert:
            row = next_row % n
            next_row += 1
            ops.append(Operation(INSERT, pts[row].copy(), tuple_id=next_id))
            id_point[next_id] = pts[row]
            alive.append(next_id)
            next_id += 1
        else:
            pos = int(rng.integers(len(alive)))
            victim = alive.pop(pos)
            ops.append(Operation(DELETE, id_point[victim].copy(),
                                 tuple_id=victim))
    return DynamicWorkload(initial=pts[:n0].copy(), operations=ops,
                           snapshots=_snapshot_marks(len(ops), n_snapshots))
