"""Feature-detected compiled kernels for the per-op scalar tails.

When numba is importable, the reach test of ``_InsertRun.step_log``
(``row >= thresholds`` over all M utilities) and the eviction scan of
``_absorb_new_tuple`` (``min_vector < taus`` over the reach) run
through ``@njit(parallel=True)`` comparison kernels; otherwise the
pure-NumPy expressions run. Both paths are **exact element-wise
comparisons** — no reductions, no reassociation — so their results are
identical by construction and the compiled path is digest-invisible.
The set-cover dirty-queue drain is deliberately *not* compiled: it is
coupled to the heap and MemberStore absorption loop through Python
objects, and the determinism risk of reimplementing it outweighs its
per-op cost (see docs/BENCHMARKS.md).

``HAVE_NUMBA`` reports which path is live; tests assert fallback
behavior so CI (which does not install numba) exercises the NumPy
branch.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

try:  # feature detection only — numba is an optional accelerator
    import numba  # type: ignore[import-not-found]

    HAVE_NUMBA = True
except ImportError:
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

FloatArray = NDArray[np.float64]
IndexArray = NDArray[np.intp]


if HAVE_NUMBA:

    @numba.njit(parallel=True, cache=True)  # pragma: no cover - optional
    def _ge_mask(row: Any, taus: Any) -> Any:
        n = row.shape[0]
        out = np.empty(n, np.bool_)
        for i in numba.prange(n):
            out[i] = row[i] >= taus[i]
        return out

    @numba.njit(parallel=True, cache=True)  # pragma: no cover - optional
    def _lt_mask(mins: Any, taus: Any) -> Any:
        n = mins.shape[0]
        out = np.empty(n, np.bool_)
        for i in numba.prange(n):
            out[i] = mins[i] < taus[i]
        return out


def reached_utilities(row: FloatArray, thresholds: FloatArray) -> IndexArray:
    """Ascending indices where ``row >= thresholds`` (insert reach)."""
    if HAVE_NUMBA:  # pragma: no cover - optional accelerator
        return np.flatnonzero(_ge_mask(row, thresholds))
    return np.flatnonzero(row >= thresholds)


def eviction_positions(mins: FloatArray, taus: FloatArray) -> IndexArray:
    """Ascending positions where ``mins < taus`` (eviction candidates)."""
    if HAVE_NUMBA:  # pragma: no cover - optional accelerator
        return np.flatnonzero(_lt_mask(mins, taus))
    return np.flatnonzero(mins < taus)
