"""Shared-memory transport for the parallel execution backend.

Large, read-only kernel inputs (the database points, the utility pool,
per-wave gather buffers) are shipped to workers as
:class:`multiprocessing.shared_memory.SharedMemory` segments instead of
being pickled: workers map the segment and build a zero-copy NumPy view
over it. A :class:`ShmRef` is the picklable handle — segment name plus
shape/dtype — that crosses the process boundary.

Ownership rules:

* The **arena** (main process) creates every segment and is the only
  unlinker. ``publish`` caches long-lived arrays under a caller-chosen
  key + version token so repeated waves over the same array reuse one
  segment; ``ship`` creates a transient segment that the backend
  releases right after the wave completes.
* **Workers** attach read-only and never unlink. Attachments to cached
  segments are memoized per process; transient attachments are closed
  as soon as the kernel returns.

Results flow back pickled (they are small and variable-sized:
membership index fragments, repair lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class ShmRef:
    """Picklable handle to a NumPy array living in a shared segment.

    ``cache`` tells the worker whether the segment is long-lived (safe
    to memoize the attachment) or transient (close after use).
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    cache: bool = False


class ShmArena:
    """Owner of all shared segments created by one backend instance."""

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        # key -> (token, ref); reused while the token matches.
        self._published: dict[str, tuple[Any, ShmRef]] = {}
        self._counter = 0

    def _create(self, arr: NDArray[Any], cache: bool) -> ShmRef:
        data = np.ascontiguousarray(arr)
        self._counter += 1
        seg = shared_memory.SharedMemory(
            create=True, size=max(1, data.nbytes)
        )
        view: NDArray[Any] = np.ndarray(
            data.shape, dtype=data.dtype, buffer=seg.buf
        )
        view[...] = data
        self._segments[seg.name] = seg
        return ShmRef(seg.name, data.shape, data.dtype.str, cache)

    def publish(self, key: str, token: Any, arr: NDArray[Any]) -> ShmRef:
        """Share a long-lived array, reusing the segment while ``token``
        (a caller-maintained version stamp) is unchanged."""
        hit = self._published.get(key)
        if hit is not None and hit[0] == token:
            return hit[1]
        if hit is not None:
            self._release(hit[1].name)
        ref = self._create(arr, cache=True)
        self._published[key] = (token, ref)
        return ref

    def ship(self, arr: NDArray[Any]) -> ShmRef:
        """Share a transient array; release with :meth:`release`."""
        return self._create(arr, cache=False)

    def _release(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        try:
            seg.close()
        finally:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    def release(self, ref: ShmRef) -> None:
        self._release(ref.name)

    def view(self, ref: ShmRef) -> NDArray[Any]:
        """Zero-copy main-process view of an owned segment (used by the
        shared-memory backend's inline degraded mode)."""
        seg = self._segments[ref.name]
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)

    def close(self) -> None:
        for name in list(self._segments):
            self._release(name)
        self._published.clear()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.close()
        except Exception:
            pass


class WorkerAttachments:
    """Per-worker-process cache of attached shared segments."""

    def __init__(self) -> None:
        self._cached: dict[str, tuple[shared_memory.SharedMemory, Any]] = {}

    def resolve(self, ref: ShmRef) -> NDArray[Any]:
        if ref.cache and ref.name in self._cached:
            return self._cached[ref.name][1]
        # NOTE: CPython registers the segment with resource_tracker on
        # attach as well as on create. Under the fork start method the
        # tracker process is shared with the arena's, so this is a
        # set no-op; the arena remains the sole unlinker. (Do NOT
        # unregister here: that would drop the arena's own entry from
        # the shared tracker.)
        seg = shared_memory.SharedMemory(name=ref.name)
        arr: NDArray[Any] = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf
        )
        if ref.cache:
            self._cached[ref.name] = (seg, arr)
            return arr
        # Transient: copy out so the segment can be closed immediately
        # (the arena may unlink it as soon as the wave completes).
        out = arr.copy()
        seg.close()
        return out
