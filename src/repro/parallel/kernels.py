"""Pure per-block kernels executed by the parallel backends.

Each kernel is the *exact* per-block computation of the engine loop it
shards — same NumPy calls, same slice shapes, same operand layouts —
so a block computed in a worker process is byte-identical to the same
block computed inline by the serial backend (and, for the bootstrap,
to the default non-parallel engine, whose historical chunk rule the
canonical decomposition reuses). Kernels are pure functions of their
inputs: no engine state, no mutation, no RNG, no wall clock. All
mutation (MemberStore fills, delta emission) stays in the main process
and consumes kernel results strictly in block order.

Kernels must be module-level (picklable by reference) and are looked
up by name through :data:`KERNELS` so the worker entrypoint never
unpickles code objects.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
IndexArray = NDArray[np.intp]

#: Result of one bootstrap chunk: ``(taus, topk_rows, bounds, cols,
#: member_pids, member_scores, mins)`` — everything the main process
#: needs to install the chunk's MemberStore rows and inverted-index
#: fragment without touching the score matrix again.
BootstrapChunkResult = tuple[
    FloatArray, FloatArray, IndexArray, IndexArray,
    IndexArray, FloatArray, FloatArray,
]

#: Result of one repair column: ``(tau, member_ids, member_scores)``.
RepairResult = tuple[float, IndexArray, FloatArray]


def bootstrap_chunk(
    pts: FloatArray,
    ids: IndexArray,
    u: FloatArray,
    start: int,
    end: int,
    k: int,
    eps: float,
) -> BootstrapChunkResult:
    """One utility chunk of the vectorized bootstrap.

    Mirrors the chunk body of ``ApproxTopKIndex._bootstrap`` — the
    GEMM, the top-k partition, and the column-major membership
    extraction — returning the raw arrays for the main process to
    install. ``u`` is the full utility pool; the chunk is the row
    slice ``u[start:end]``, exactly as the serial loop slices it.
    """
    n = pts.shape[0]
    block = u[start:end]
    b = block.shape[0]
    scores = pts @ block.T  # (n, b)
    if n <= k:
        taus = np.zeros(b)
        topk_rows = np.full((b, k), -np.inf)
        topk_rows[:, k - n:] = np.sort(scores, axis=0).T
    else:
        part = np.partition(scores, range(n - k, n), axis=0)
        topk_rows = part[n - k:].T  # (b, k) ascending
        taus = (1.0 - eps) * topk_rows[:, 0]
    hits = scores.T >= taus[:, None]  # (b, n)
    counts = hits.sum(axis=1)
    bounds = np.r_[0, np.cumsum(counts)]
    cols, rows = np.nonzero(hits)
    member_pids = ids[rows]
    member_scores = scores.T[hits]
    if member_scores.size:
        mins = np.minimum.reduceat(member_scores, bounds[:-1])
    else:
        mins = np.empty(0)
    return (taus, topk_rows, bounds, cols, member_pids,
            member_scores, mins)


def score_rows(
    pts: FloatArray,
    u: FloatArray,
    start: int,
    end: int,
) -> FloatArray:
    """One row block of the ``(batch × M)`` insert-run scoring GEMM."""
    return pts[start:end] @ u.T


def repair_columns(
    ids: IndexArray,
    pts: FloatArray,
    u_sel: FloatArray,
    start: int,
    end: int,
    n_db: int,
    k: int,
    eps: float,
) -> list[RepairResult]:
    """One column block of a brute-force delete-repair wave.

    ``u_sel`` is the gathered ``(q, d)`` matrix of affected utilities;
    this kernel scores the alive snapshot against columns
    ``[start, end)`` and rebuilds each one's membership exactly as the
    serial brute path does: k-th score partition → τ, ``>= τ`` gather,
    and the canonical (-score, id) lexsort order.
    """
    scores = pts @ u_sel[start:end].T  # (n, block)
    out: list[RepairResult] = []
    # reprolint: disable=RPL004 -- one pass per repaired utility (block small)
    for col in range(end - start):
        s = scores[:, col]
        if n_db <= k:
            tau = 0.0
        else:
            kth = np.partition(s, n_db - k)[n_db - k]
            tau = (1.0 - eps) * float(kth)
        hit = s >= tau
        hit_ids, hit_scores = ids[hit], s[hit]
        order = np.lexsort((hit_ids, -hit_scores))
        out.append((tau, hit_ids[order], hit_scores[order]))
    return out


KERNELS: dict[str, Callable[..., Any]] = {
    "bootstrap_chunk": bootstrap_chunk,
    "score_rows": score_rows,
    "repair_columns": repair_columns,
}
