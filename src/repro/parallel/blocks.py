"""Canonical block decompositions for the parallel hot-path engine.

Every parallelized loop shards its work into **canonical blocks** whose
boundaries are a pure function of the problem size — never of the
worker count, the backend, or the machine. Workers are assigned whole
blocks and results are reduced in block order, so the engine's output
is a function of (data, decomposition) alone: running with 1, 2, or 4
workers — or inline on the serial fallback backend — produces
byte-identical results. This is the *worker-count-invariance rule*
documented in ``docs/DETERMINISM.md``.

Why blocks must be canonical: BLAS GEMM results are bitwise
reproducible only for identical calls (same shapes, same strides, same
values). Splitting one GEMM differently — e.g. deriving block sizes
from ``os.cpu_count()`` — changes the last ulp of the output, which
the engine's digests would observe. The constants below are therefore
part of the determinism contract; changing them is a (legitimate,
but digest-visible for parallel sessions) behavior change.

Three decompositions:

* :func:`bootstrap_chunks` — the utility-chunk rule of the vectorized
  bootstrap (``ApproxTopKIndex._bootstrap``). This is the *historical*
  PR-4 rule, so the default (non-parallel) engine and every worker
  count compute exactly the same per-chunk GEMMs, byte for byte.
* :func:`score_row_blocks` — row blocks of the ``(batch × M)``
  insert-run scoring GEMM.
* :func:`repair_col_blocks` — column blocks (affected utilities) of
  the ``(n × q)`` delete-repair wave GEMM.

The ``*_PAR_MIN_ELEMS`` thresholds gate *whether* a loop is sharded at
all (below them, dispatch overhead dominates and the historical
single-call path runs). They compare against the element count of the
score matrix — again a pure function of problem size, so the decision
is identical for every worker count.
"""

from __future__ import annotations

#: Elements per bootstrap GEMM chunk — ``chunk = ELEMS // n`` utilities
#: per block. Must stay equal to the historical ``_bootstrap`` rule:
#: the default engine and the parallel backends share these boundaries.
BOOTSTRAP_CHUNK_ELEMS = 4_000_000

#: Row-block height of the sharded insert-run scoring GEMM.
SCORE_BLOCK_ROWS = 1024

#: Minimum ``batch * M`` before insert-run scoring is sharded; smaller
#: runs use the historical single full GEMM.
SCORE_PAR_MIN_ELEMS = 1 << 21

#: Column-block width of the sharded delete-repair wave.
REPAIR_BLOCK_COLS = 32

#: Minimum ``n_alive * q_affected`` before a repair wave is sharded.
REPAIR_PAR_MIN_ELEMS = 1 << 21


def bootstrap_chunks(n: int, m_total: int) -> list[tuple[int, int]]:
    """Utility-index ranges ``[(start, end), ...]`` of the bootstrap.

    ``n`` is the database size, ``m_total`` the utility-pool size M.
    Mirrors the chunk rule the vectorized bootstrap has used since it
    was introduced: ``max(1, BOOTSTRAP_CHUNK_ELEMS // max(1, n))``
    utilities per chunk.
    """
    chunk = max(1, int(BOOTSTRAP_CHUNK_ELEMS // max(1, n)))
    return [(start, min(start + chunk, m_total))
            for start in range(0, m_total, chunk)]


def score_row_blocks(n_rows: int) -> list[tuple[int, int]]:
    """Row ranges of a sharded insert-run scoring GEMM."""
    return [(start, min(start + SCORE_BLOCK_ROWS, n_rows))
            for start in range(0, n_rows, SCORE_BLOCK_ROWS)]


def repair_col_blocks(q: int) -> list[tuple[int, int]]:
    """Column ranges (affected-utility positions) of a repair wave."""
    return [(start, min(start + REPAIR_BLOCK_COLS, q))
            for start in range(0, q, REPAIR_BLOCK_COLS)]
