"""Execution backends: serial fallback and shared-memory workers.

A backend executes canonical block waves (see :mod:`repro.parallel.blocks`)
through the kernel registry (:mod:`repro.parallel.kernels`). The engine
builds one payload dict per block, marks large arrays with
:meth:`ExecutionBackend.share` (long-lived, version-stamped) or
:meth:`ExecutionBackend.ship` (per-wave), and calls
:meth:`ExecutionBackend.map_blocks`; results always come back **in
block order**, which is what makes the reduction deterministic.

* :class:`SerialBackend` runs every block inline in the main process.
* :class:`SharedMemoryBackend` fans blocks out to a lazily-started
  ``ProcessPoolExecutor`` whose workers map the shared segments
  zero-copy. If the pool breaks (a worker died — e.g. OOM-killed or
  crashed mid-bootstrap), the wave is transparently recomputed inline:
  kernels are pure and every block is the same NumPy call either way,
  so the results — and all downstream digests — are unchanged. The
  backend stays degraded (serial) from then on and exposes
  :attr:`SharedMemoryBackend.degraded`.

Both backends produce byte-identical results for the same block
decomposition; worker count never influences block boundaries or
reduction order. ``resolve_backend`` maps the user-facing
``parallel=`` option to a backend instance (or ``None`` for the
historical inline engine paths).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

import numpy as np
from numpy.typing import NDArray

from .kernels import KERNELS
from .shm import ShmArena, ShmRef, WorkerAttachments


class ParallelExecutionError(RuntimeError):
    """A parallel wave failed and could not be recovered."""


class ExecutionBackend:
    """Interface shared by the serial and shared-memory backends."""

    workers: int = 1

    def share(self, key: str, token: Any, arr: NDArray[Any]) -> Any:
        """Register a long-lived array; returns the payload handle."""
        raise NotImplementedError

    def ship(self, arr: NDArray[Any]) -> Any:
        """Register a per-wave array; released after the next wave."""
        raise NotImplementedError

    def map_blocks(
        self, kernel: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        """Run ``kernel`` over ``payloads``; results in payload order."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Inline fallback: same canonical blocks, no worker processes.

    ``share``/``ship`` normalize to C-contiguous layout — the layout
    the shared-memory transport always produces — so kernels see
    identically-strided operands on both backends and GEMM bits match.
    """

    workers = 1

    def share(self, key: str, token: Any, arr: NDArray[Any]) -> Any:
        return np.ascontiguousarray(arr)

    def ship(self, arr: NDArray[Any]) -> Any:
        return np.ascontiguousarray(arr)

    def map_blocks(
        self, kernel: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        fn = KERNELS[kernel]
        return [fn(**payload) for payload in payloads]

    def close(self) -> None:
        pass


# Worker-process state: one attachment cache per process, created on
# first use (works under both fork and spawn start methods).
_worker_attachments: WorkerAttachments | None = None


def _resolve_payload(
    payload: dict[str, Any], attachments: WorkerAttachments
) -> dict[str, Any]:
    return {
        key: attachments.resolve(val) if isinstance(val, ShmRef) else val
        for key, val in payload.items()
    }


def _worker_run(kernel: str, payload: dict[str, Any]) -> Any:
    """Entry point executed inside a worker process."""
    global _worker_attachments
    if _worker_attachments is None:
        _worker_attachments = WorkerAttachments()
    fn = KERNELS[kernel]
    return fn(**_resolve_payload(payload, _worker_attachments))


class SharedMemoryBackend(ExecutionBackend):
    """Fan canonical block waves out over a process pool.

    ``workers`` is the pool size; the block decomposition never depends
    on it, so any worker count (including this backend vs
    :class:`SerialBackend`) produces byte-identical results.
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 2:
            raise ValueError("SharedMemoryBackend needs workers >= 2; "
                             "use SerialBackend for inline execution")
        self.workers = workers
        self._start_method = start_method
        self._arena = ShmArena()
        self._transient: list[ShmRef] = []
        self._executor: ProcessPoolExecutor | None = None
        self.degraded = False
        #: Successful :meth:`restore` probes (for service reports).
        self.restores = 0

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing as mp

            method = self._start_method
            if method is None:
                methods = mp.get_all_start_methods()
                method = "fork" if "fork" in methods else methods[0]
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp.get_context(method)
            )
        return self._executor

    def share(self, key: str, token: Any, arr: NDArray[Any]) -> Any:
        if self.degraded:
            return arr
        return self._arena.publish(key, token, arr)

    def ship(self, arr: NDArray[Any]) -> Any:
        if self.degraded:
            return arr
        ref = self._arena.ship(arr)
        self._transient.append(ref)
        return ref

    def _view(self, val: Any) -> Any:
        return self._arena.view(val) if isinstance(val, ShmRef) else val

    def _run_inline(
        self, kernel: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        fn = KERNELS[kernel]
        return [
            fn(**{key: self._view(val) for key, val in payload.items()})
            for payload in payloads
        ]

    def map_blocks(
        self, kernel: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        try:
            if self.degraded:
                return self._run_inline(kernel, payloads)
            executor = self._ensure_executor()
            try:
                futures = [
                    executor.submit(_worker_run, kernel, payload)
                    for payload in payloads
                ]
                return [future.result() for future in futures]
            except (BrokenProcessPool, OSError, RuntimeError):
                # A worker died mid-wave (crash, OOM kill). Kernels are
                # pure and blocks canonical, so recomputing the whole
                # wave inline yields byte-identical results; stay
                # degraded so later waves skip the broken pool.
                self._shutdown_executor()
                self.degraded = True
                return self._run_inline(kernel, payloads)
        finally:
            for ref in self._transient:
                self._arena.release(ref)
            self._transient.clear()

    def restore(self) -> bool:
        """Attempt to re-establish the worker pool after a degrade.

        Starts a fresh executor and round-trips a probe task through
        it; only a successful probe clears :attr:`degraded` (a failed
        probe shuts the new pool down again and leaves the backend
        inline). Safe with respect to the shared-memory arena: the only
        long-lived published array is immutable and version-stamped, so
        a re-established pool can never observe a stale segment.

        Called by the service layer's circuit breaker on half-open
        probes; harmless to call when not degraded (returns True).
        """
        if not self.degraded:
            return True
        self._shutdown_executor()
        try:
            executor = self._ensure_executor()
            executor.submit(os.getpid).result()
        except Exception:
            self._shutdown_executor()
            return False
        self.degraded = False
        self.restores += 1
        return True

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._executor = None

    def close(self) -> None:
        self._shutdown_executor()
        self._arena.close()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.close()
        except Exception:
            pass


def resolve_backend(
    parallel: int | str | ExecutionBackend | None,
) -> ExecutionBackend | None:
    """Map the user-facing ``parallel=`` option to a backend.

    * ``None`` — no backend: the engine keeps its historical inline
      code paths, byte-for-byte.
    * ``0``/``1``/``"serial"`` — :class:`SerialBackend`: canonical
      block decomposition, executed inline.
    * ``n >= 2`` — :class:`SharedMemoryBackend` with ``n`` workers.
    * ``"auto"`` — worker count from ``os.cpu_count()`` (serial on a
      single-core host).
    * an :class:`ExecutionBackend` instance — used as-is.
    """
    if parallel is None:
        return None
    if isinstance(parallel, ExecutionBackend):
        return parallel
    if isinstance(parallel, str):
        if parallel == "serial":
            return SerialBackend()
        if parallel == "auto":
            count = os.cpu_count() or 1
            return (SharedMemoryBackend(count) if count >= 2
                    else SerialBackend())
        try:
            parallel = int(parallel)
        except ValueError:
            raise ValueError(
                f"parallel must be an int, 'serial', 'auto', or a "
                f"backend instance; got {parallel!r}"
            ) from None
    count = int(parallel)
    if count < 0:
        raise ValueError(f"parallel must be >= 0, got {count}")
    if count <= 1:
        return SerialBackend()
    return SharedMemoryBackend(count)
