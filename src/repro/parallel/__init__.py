"""Parallel hot-path execution layer.

Shards the engine's three dominant loops — bootstrap GEMM + membership
fill, ``(batch × M)`` insert-run scoring, and brute-force delete-repair
waves — across worker processes over shared-memory array views, with a
serial fallback backend that executes the same canonical blocks
inline. Block boundaries are a pure function of problem size (never of
worker count), and reduction is strictly block-ordered, so results are
byte-identical at any ``parallel=`` setting that uses a backend, and
replay digests are invariant across ``--workers 1/2/4``. See
``docs/DETERMINISM.md`` (worker-count-invariance rule) and
``docs/ARCHITECTURE.md``.

Selection: ``FDRMS(..., parallel=)``, ``open_session(parallel=)``, or
CLI ``repro replay --workers N``. ``parallel=None`` (the default)
bypasses this package entirely — the engine keeps its historical
inline code paths.
"""

from .backend import (
    ExecutionBackend,
    ParallelExecutionError,
    SerialBackend,
    SharedMemoryBackend,
    resolve_backend,
)
from .compiled import HAVE_NUMBA, eviction_positions, reached_utilities
from .shm import ShmArena, ShmRef

__all__ = [
    "ExecutionBackend",
    "HAVE_NUMBA",
    "ParallelExecutionError",
    "SerialBackend",
    "SharedMemoryBackend",
    "ShmArena",
    "ShmRef",
    "eviction_positions",
    "reached_utilities",
    "resolve_backend",
]
