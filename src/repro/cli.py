"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``     dataset statistics (Table I style) for a named dataset.
``run``       replay a dynamic workload with one algorithm; report
              average update time and mrr at snapshots.
``compare``   run several algorithms on the same workload side by side.
``minsize``   print the ε ↦ |Q| trade-off curve.
``algorithms``  list every registered algorithm with its capabilities.

All commands generate their data via :mod:`repro.data` (named datasets:
BB, AQ, CT, Movie, Indep, AntiCor) so no files are required; ``--n``
controls the scale. Algorithm names are resolved through
:mod:`repro.api.registry`, so ``--algorithm`` accepts any registered
name or alias, case-insensitively; unknown names (and datasets) exit
with a one-line error listing the valid choices.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


class CLIError(Exception):
    """User-facing one-line error; ``main`` prints it and returns 2."""


def _dataset_names() -> list[str]:
    from repro.data import DATASET_SPECS
    return sorted(DATASET_SPECS) + ["Indep", "AntiCor"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("dataset", help="BB | AQ | CT | Movie | Indep | AntiCor")
    p.add_argument("--n", type=int, default=2000, help="dataset size")
    p.add_argument("--seed", type=int, default=0)


def _load(args) -> np.ndarray:
    from repro.data import make_dataset
    try:
        return make_dataset(args.dataset, n=args.n, seed=args.seed)
    except KeyError:
        raise CLIError(f"unknown dataset {args.dataset!r}; valid choices: "
                       f"{', '.join(_dataset_names())}") from None


def _resolve_specs(names: list[str]):
    """Map user-supplied algorithm names to registry specs."""
    from repro.api.registry import UnknownAlgorithmError, get_algorithm
    specs = []
    for name in names:
        try:
            specs.append(get_algorithm(name))
        except UnknownAlgorithmError as exc:
            raise CLIError(str(exc)) from None
    return specs


def cmd_stats(args) -> int:
    from repro.skyline import skyline_indices
    pts = _load(args)
    sky = skyline_indices(pts).size
    print(f"dataset={args.dataset} n={pts.shape[0]} d={pts.shape[1]} "
          f"#skyline={sky} ({sky / pts.shape[0]:.2%})")
    return 0


def cmd_algorithms(args) -> int:
    from repro.api.registry import list_algorithms
    flag_names = ("supports_k", "dynamic", "min_size", "d2_only", "exact",
                  "randomized", "skyline_pool")
    header = f"{'name':>12} {'key':>12} " + \
        " ".join(f"{f:>12}" for f in flag_names)
    print(header)
    print("-" * len(header))
    for spec in list_algorithms():
        flags = spec.capabilities.flags()
        cells = " ".join(f"{'yes' if flags[f] else '-':>12}"
                         for f in flag_names)
        print(f"{spec.display_name:>12} {spec.name:>12} {cells}")
    return 0


def _run_algorithms(args, names: list[str]) -> int:
    from repro.api.registry import CapabilityError
    from repro.bench import adapter_for, run_workload
    from repro.core.regret import RegretEvaluator
    from repro.data import make_paper_workload
    specs = _resolve_specs(names)
    pts = _load(args)
    try:
        for spec in specs:
            spec.check_request(k=args.k, d=pts.shape[1])
    except CapabilityError as exc:
        raise CLIError(str(exc)) from None
    workload = make_paper_workload(pts, seed=args.seed + 1,
                                   n_snapshots=args.snapshots)
    evaluator = RegretEvaluator(pts.shape[1], n_samples=args.eval_samples,
                                seed=args.seed + 2)
    print(f"workload: {workload.n_operations} ops on {args.dataset} "
          f"(n={pts.shape[0]}, d={pts.shape[1]}), RMS(k={args.k}, r={args.r})")
    print(f"{'algorithm':>12} {'avg update (ms)':>16} {'mean mrr':>10} "
          f"{'max mrr':>10}")
    results = []
    for spec in specs:
        # One shared option bag; adapter_for routes each key to the
        # algorithms that understand it (eps/m_max reach FD-RMS only).
        adapter = adapter_for(spec.name, workload.initial, args.k, args.r,
                              seed=args.seed + 3, eps=args.eps,
                              m_max=args.m_max)
        res = run_workload(adapter, workload, evaluator, args.k)
        results.append(res)
        print(f"{res.algorithm:>12} {res.avg_update_ms:>16.3f} "
              f"{res.mean_mrr:>10.4f} {res.max_mrr:>10.4f}")
    report_path = getattr(args, "report", None)
    if report_path:
        from repro.bench.report import full_report
        context = {"dataset": args.dataset, "n": pts.shape[0],
                   "d": pts.shape[1], "k": args.k, "r": args.r,
                   "operations": workload.n_operations,
                   "evaluation utilities": args.eval_samples}
        text = full_report(results, title=f"k-RMS comparison on "
                                          f"{args.dataset}", context=context)
        from pathlib import Path
        Path(report_path).write_text(text)
        print(f"\nmarkdown report written to {report_path}")
    return 0


def cmd_run(args) -> int:
    return _run_algorithms(args, [args.algorithm])


def cmd_compare(args) -> int:
    return _run_algorithms(args, args.algorithms)


def cmd_minsize(args) -> int:
    from repro.core.minsize import min_size_curve
    pts = _load(args)
    eps_values = [float(x) for x in args.eps_values.split(",")]
    curve = min_size_curve(pts, eps_values, k=args.k,
                           n_samples=args.eval_samples, seed=args.seed + 2)
    print(f"{'eps':>8} {'|Q|':>6}")
    for eps in sorted(curve, reverse=True):
        print(f"{eps:>8.4f} {curve[eps]:>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FD-RMS reproduction CLI (ICDE 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table I)")
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_algos = sub.add_parser(
        "algorithms", help="list registered algorithms and capabilities")
    p_algos.set_defaults(func=cmd_algorithms)

    def add_run_opts(p):
        _add_common(p)
        p.add_argument("--k", type=int, default=1)
        p.add_argument("--r", type=int, default=20)
        p.add_argument("--eps", type=float, default=0.02,
                       help="FD-RMS top-k approximation factor")
        p.add_argument("--m-max", type=int, default=1024, dest="m_max")
        p.add_argument("--snapshots", type=int, default=5)
        p.add_argument("--eval-samples", type=int, default=10_000,
                       dest="eval_samples")
        p.add_argument("--report", default=None,
                       help="write a markdown report to this path")

    p_run = sub.add_parser("run", help="replay one algorithm on a workload")
    add_run_opts(p_run)
    p_run.add_argument("--algorithm", default="FD-RMS",
                       help="any registered algorithm or alias "
                            "(see `repro algorithms`)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare algorithms side by side")
    add_run_opts(p_cmp)
    p_cmp.add_argument("--algorithms", nargs="+",
                       default=["FD-RMS", "Sphere", "HS"])
    p_cmp.set_defaults(func=cmd_compare)

    p_ms = sub.add_parser("minsize", help="epsilon vs |Q| trade-off curve")
    _add_common(p_ms)
    p_ms.add_argument("--k", type=int, default=1)
    p_ms.add_argument("--eps-values", default="0.2,0.1,0.05,0.02,0.01",
                      dest="eps_values")
    p_ms.add_argument("--eval-samples", type=int, default=3000,
                      dest="eval_samples")
    p_ms.set_defaults(func=cmd_minsize)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
