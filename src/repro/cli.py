"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``     dataset statistics (Table I style) for a named dataset.
``run``       replay a dynamic workload with one algorithm; report
              average update time and mrr at snapshots.
``compare``   run several algorithms on the same workload side by side.
``minsize``   print the ε ↦ |Q| trade-off curve.
``algorithms``  list every registered algorithm with its capabilities.
``scenarios``   list the built-in dynamic-workload scenarios.
``replay``    compile a scenario (or all of them) into a deterministic
              operation trace and replay it with one or more algorithms,
              reporting per-op latency percentiles and regret over time.
              ``--supervised`` routes batches through the service-layer
              :class:`~repro.service.SessionSupervisor`; ``--chaos``
              adds seeded runtime fault injection (final state digests
              stay byte-identical to a fault-free run).
``serve-sim`` simulate a multi-tenant service over a scenario trace:
              supervised admission, deadline-bounded per-tenant reads
              (stale-marked under overload), optional chaos; prints an
              SLO summary.
``serve``     run the real multi-tenant network service: an asyncio
              HTTP + WebSocket front-end where each tenant maps to one
              :class:`~repro.service.SessionSupervisor` (admission
              coalescing, quotas, LRU eviction with
              checkpoint-on-evict). Wire protocol: docs/SERVICE.md.
``serve-load`` drive a running ``repro serve`` (or a self-hosted one)
              with concurrent per-tenant scenario traffic and check
              per-tenant result-digest parity against an inline replay
              plus the p99 admission SLO — the CI ``serve-smoke`` gate.

All commands generate their data via :mod:`repro.data` (named datasets:
BB, AQ, CT, Movie, Indep, AntiCor) so no files are required; ``--n``
controls the scale. Algorithm names are resolved through
:mod:`repro.api.registry`, so ``--algorithm`` accepts any registered
name or alias, case-insensitively; unknown names (and datasets) exit
with a one-line error listing the valid choices.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


class CLIError(Exception):
    """User-facing one-line error; ``main`` prints it and returns 2."""


def _dataset_names() -> list[str]:
    from repro.data import DATASET_SPECS
    return sorted(DATASET_SPECS) + ["Indep", "AntiCor"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("dataset", help="BB | AQ | CT | Movie | Indep | AntiCor")
    p.add_argument("--n", type=int, default=2000, help="dataset size")
    p.add_argument("--seed", type=int, default=0)


def _load(args) -> np.ndarray:
    from repro.data import make_dataset
    try:
        return make_dataset(args.dataset, n=args.n, seed=args.seed)
    except KeyError:
        raise CLIError(f"unknown dataset {args.dataset!r}; valid choices: "
                       f"{', '.join(_dataset_names())}") from None


def _resolve_specs(names: list[str]):
    """Map user-supplied algorithm names to registry specs."""
    from repro.api.registry import UnknownAlgorithmError, get_algorithm
    specs = []
    for name in names:
        try:
            specs.append(get_algorithm(name))
        except UnknownAlgorithmError as exc:
            raise CLIError(str(exc)) from None
    return specs


def cmd_stats(args) -> int:
    from repro.skyline import skyline_indices
    pts = _load(args)
    sky = skyline_indices(pts).size
    print(f"dataset={args.dataset} n={pts.shape[0]} d={pts.shape[1]} "
          f"#skyline={sky} ({sky / pts.shape[0]:.2%})")
    return 0


def cmd_algorithms(args) -> int:
    from repro.api.registry import list_algorithms
    flag_names = ("supports_k", "dynamic", "min_size", "d2_only", "exact",
                  "randomized", "skyline_pool")
    header = (f"{'name':>12} {'key':>12} "
              + " ".join(f"{f:>12}" for f in flag_names))
    print(header)
    print("-" * len(header))
    for spec in list_algorithms():
        flags = spec.capabilities.flags()
        cells = " ".join(f"{'yes' if flags[f] else '-':>12}"
                         for f in flag_names)
        print(f"{spec.display_name:>12} {spec.name:>12} {cells}")
    return 0


def _run_algorithms(args, names: list[str]) -> int:
    from repro.api.registry import CapabilityError
    from repro.bench import adapter_for, run_workload
    from repro.core.regret import RegretEvaluator
    from repro.data import make_paper_workload
    specs = _resolve_specs(names)
    pts = _load(args)
    try:
        for spec in specs:
            spec.check_request(k=args.k, d=pts.shape[1])
    except CapabilityError as exc:
        raise CLIError(str(exc)) from None
    workload = make_paper_workload(pts, seed=args.seed + 1,
                                   n_snapshots=args.snapshots)
    evaluator = RegretEvaluator(pts.shape[1], n_samples=args.eval_samples,
                                seed=args.seed + 2)
    print(f"workload: {workload.n_operations} ops on {args.dataset} "
          f"(n={pts.shape[0]}, d={pts.shape[1]}), RMS(k={args.k}, r={args.r})")
    print(f"{'algorithm':>12} {'avg update (ms)':>16} {'mean mrr':>10} "
          f"{'max mrr':>10}")
    results = []
    for spec in specs:
        # One shared option bag; adapter_for routes each key to the
        # algorithms that understand it (eps/m_max reach FD-RMS only).
        adapter = adapter_for(spec.name, workload.initial, args.k, args.r,
                              seed=args.seed + 3, eps=args.eps,
                              m_max=args.m_max)
        res = run_workload(adapter, workload, evaluator, args.k)
        results.append(res)
        print(f"{res.algorithm:>12} {res.avg_update_ms:>16.3f} "
              f"{res.mean_mrr:>10.4f} {res.max_mrr:>10.4f}")
    report_path = getattr(args, "report", None)
    if report_path:
        from repro.bench.report import full_report
        context = {"dataset": args.dataset, "n": pts.shape[0],
                   "d": pts.shape[1], "k": args.k, "r": args.r,
                   "operations": workload.n_operations,
                   "evaluation utilities": args.eval_samples}
        text = full_report(results, title=f"k-RMS comparison on "
                                          f"{args.dataset}", context=context)
        from pathlib import Path
        Path(report_path).write_text(text)
        print(f"\nmarkdown report written to {report_path}")
    return 0


def cmd_run(args) -> int:
    return _run_algorithms(args, [args.algorithm])


def cmd_compare(args) -> int:
    return _run_algorithms(args, args.algorithms)


def cmd_scenarios(args) -> int:
    from repro.scenarios import list_scenarios
    print(f"{'name':>16} {'dataset':>8} {'n':>6} {'arrival':>16} "
          f"{'snaps':>5}  summary")
    for sc in list_scenarios():
        summary = (sc.summary if len(sc.summary) <= 60
                   else sc.summary[:57] + "...")
        print(f"{sc.name:>16} {sc.dataset:>8} {sc.n:>6} {sc.arrival:>16} "
              f"{sc.n_snapshots:>5}  {summary}")
    return 0


def _service_options(scenario, args):
    """Build ServiceOptions from scenario hints + CLI chaos flags."""
    from repro.service.chaos import parse_chaos
    from repro.service.driver import ServiceOptions
    from repro.service.policy import SupervisorConfig
    hints = dict(scenario.service)
    for item in getattr(args, "service_hints", None) or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise CLIError(f"bad --service-hint {item!r}: "
                           "expected KEY=VALUE")
        try:
            hints[key] = json.loads(value)
        except json.JSONDecodeError:
            raise CLIError(f"bad --service-hint value {value!r} "
                           f"for {key!r}") from None
    read_every = int(hints.pop("read_every", 0))
    tenants = int(hints.pop("tenants", 4))
    if getattr(args, "tenants", None) is not None:
        tenants = int(args.tenants)
    try:
        config = SupervisorConfig(**hints)
    except (TypeError, ValueError) as exc:
        raise CLIError(f"bad service hints for scenario "
                       f"{scenario.name!r}: {exc}") from None
    chaos = None
    if getattr(args, "chaos", None):
        try:
            chaos = parse_chaos(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            raise CLIError(str(exc)) from None
    return ServiceOptions(config=config, chaos=chaos,
                          read_every=read_every, tenants=tenants)


def _print_service_summary(report: dict) -> None:
    adm = report.get("admission_latency_ms", {})
    line = (f"service: waves={report.get('waves', 0)} "
            f"admission p50={adm.get('p50', 0.0):.3f}ms "
            f"p99={adm.get('p99', 0.0):.3f}ms "
            f"stale={report.get('stale_serves', 0)} "
            f"fresh={report.get('fresh_serves', 0)} "
            f"retries={report.get('retries', 0)} "
            f"breaker_trips={report.get('breaker', {}).get('trips', 0)}")
    print(line)
    for tag, tally in (report.get("per_tenant") or {}).items():
        print(f"  {tag}: reads={tally['reads']} "
              f"fresh={tally['fresh']} stale={tally['stale']} "
              f"max_lag_ops={tally['max_lag_ops']}")
    if "chaos" in report:
        injected = ", ".join(f"{key}={value}" for key, value
                             in sorted(report["chaos"].items()) if value)
        print(f"chaos [{','.join(report.get('chaos_active', []))}]: "
              f"{injected or 'no faults drawn'}")
    if "final_state_digest" in report:
        print(f"final state digest: {report['final_state_digest']}")
    if "result_digest" in report:
        print(f"result digest: {report['result_digest']}")


def cmd_replay(args) -> int:
    from pathlib import Path

    from repro.api.registry import CapabilityError
    from repro.core.regret import RegretEvaluator
    from repro.scenarios import (
        UnknownArrivalError,
        UnknownScenarioError,
        get_scenario,
        hash_key,
        replay_trace,
        save_trace,
        scenario_names,
    )
    from repro.scenarios.replay import EVAL_SEED, floor_r

    replay_all = args.scenario.strip().lower() == "all"
    names = scenario_names() if replay_all else [args.scenario]
    specs = _resolve_specs(args.algorithms)
    options = {"eps": args.eps, "m_max": args.m_max}
    if args.workers is not None:
        # Execution backend only — replay digests are worker-count
        # invariant, which the CI scenario matrix checks explicitly.
        options["parallel"] = args.workers
    expected = None
    if args.expect_hashes:
        expected = json.loads(Path(args.expect_hashes).read_text())
    payload = []
    for name in names:
        try:
            scenario = get_scenario(name)
            trace = scenario.compile(seed=args.seed, n=args.n)
        except (UnknownScenarioError, UnknownArrivalError) as exc:
            raise CLIError(str(exc)) from None
        n_used = args.n if args.n is not None else scenario.n
        try:
            for spec in specs:
                spec.check_request(k=args.k, d=trace.d)
        except CapabilityError as exc:
            raise CLIError(str(exc)) from None
        if args.check_determinism:
            again = scenario.compile(seed=args.seed, n=args.n)
            if again.content_hash != trace.content_hash:
                raise CLIError(
                    f"scenario {scenario.name!r} compiled to different "
                    f"traces for seed {args.seed}: {trace.content_hash} "
                    f"vs {again.content_hash}")
        if expected is not None:
            key = hash_key(scenario.name, n_used, args.seed)
            want = expected.get(key)
            if want is None:
                raise CLIError(f"no expected hash for {key!r} in "
                               f"{args.expect_hashes}")
            if want != trace.content_hash:
                raise CLIError(f"trace hash drift for {key!r}: expected "
                               f"{want}, compiled {trace.content_hash}")
        print(f"scenario {scenario.name}: {trace.n_operations} ops on "
              f"{scenario.dataset} (n={n_used}, d={trace.d}), "
              f"{len(trace.workload.snapshots)} snapshots, "
              f"{trace.content_hash}")
        if args.trace_out:
            if replay_all:
                out_dir = Path(args.trace_out)
                out_dir.mkdir(parents=True, exist_ok=True)
                out_path = out_dir / f"{scenario.name}.jsonl"
            else:
                out_path = Path(args.trace_out)
            save_trace(trace, out_path)
            print(f"trace written to {out_path}")
        evaluator = RegretEvaluator(trace.d, n_samples=args.eval_samples,
                                    seed=EVAL_SEED)
        r_eff = floor_r(args.r, trace.d)
        if r_eff != args.r:
            print(f"(r raised to {r_eff} = d for this scenario)")
        service = None
        if args.supervised or args.chaos:
            service = _service_options(scenario, args)
        print(f"{'algorithm':>12} {'p50 ms':>9} {'p99 ms':>9} "
              f"{'mean mrr':>9} {'max mrr':>9} {'final |Q|':>9}")
        for spec in specs:
            res = replay_trace(trace, spec.name, r=r_eff, k=args.k,
                               seed=args.seed, evaluator=evaluator,
                               options=options, service=service)
            if args.check_determinism:
                res2 = replay_trace(trace, spec.name, r=r_eff, k=args.k,
                                    seed=args.seed, evaluator=evaluator,
                                    options=options)
                if res2.determinism_digest() != res.determinism_digest():
                    # With --supervised, res2 is a *plain* replay: this
                    # doubles as the supervised-vs-inline parity check.
                    mode = ("supervised replay diverged from the plain "
                            "replay" if service is not None
                            else "replay is not deterministic")
                    raise CLIError(f"{scenario.name!r} with "
                                   f"{spec.display_name}: {mode}")
            lat = res.latency_percentiles()
            final_q = res.snapshots[-1].result_size if res.snapshots else 0
            print(f"{res.algorithm:>12} {lat['p50']:>9.3f} "
                  f"{lat['p99']:>9.3f} {res.mean_mrr:>9.4f} "
                  f"{res.max_mrr:>9.4f} {final_q:>9}")
            if res.service:
                _print_service_summary(res.service)
            payload.append(res.to_dict())
    if args.check_determinism:
        print("determinism OK: stable trace hashes and replay digests")
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"metrics written to {args.json_out}")
    return 0


def cmd_serve_sim(args) -> int:
    from pathlib import Path

    from repro.scenarios import (
        UnknownArrivalError,
        UnknownScenarioError,
        get_scenario,
    )
    from repro.scenarios.replay import floor_r
    from repro.service.driver import simulate_service
    try:
        scenario = get_scenario(args.scenario)
        trace = scenario.compile(seed=args.seed, n=args.n)
    except (UnknownScenarioError, UnknownArrivalError) as exc:
        raise CLIError(str(exc)) from None
    service = _service_options(scenario, args)
    r_eff = floor_r(args.r, trace.d)
    options = {"eps": args.eps, "m_max": args.m_max}
    if args.workers is not None:
        options["parallel"] = args.workers
    summary = simulate_service(trace, args.algorithm, r=r_eff, k=args.k,
                               seed=args.seed, options=options,
                               service=service)
    print(f"serve-sim {summary['scenario']} ({summary['algorithm']}): "
          f"{summary['n_operations']} ops over {summary['ticks']} ticks, "
          f"{summary['tenants']} tenants")
    print(f"stale tenant serves: {summary['stale_tenant_serves']} "
          f"(result |Q| = {summary['result_size']})")
    _print_service_summary(summary["service"])
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"summary written to {args.json_out}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.server import ReproServer, TenantQuota
    quota = TenantQuota(max_ops_per_request=args.max_ops_per_request,
                        max_pending_ops=args.max_pending_ops,
                        max_tuples=args.max_tuples)
    server = ReproServer(host=args.host, port=args.port,
                         max_tenants=args.max_tenants, quota=quota,
                         checkpoint_root=args.checkpoint_root)

    async def _run() -> None:
        host, port = await server.start()
        print(f"repro serve listening on http://{host}:{port} "
              f"(max_tenants={args.max_tenants}, "
              f"checkpoint_root={args.checkpoint_root}); Ctrl-C stops",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shut down")
    return 0


def _print_load_summary(summary: dict) -> None:
    print(f"serve-load {summary['scenario']}: {summary['tenants']} "
          f"tenants, n={summary['n']}, seed={summary['seed']}, "
          f"wall {summary['wall_seconds']:.2f}s")
    print(f"{'tenant':>10} {'wire':>5} {'ops':>6} {'reqs':>6} "
          f"{'stale':>6} {'fresh':>6} {'maxlag':>7} {'p99 ms':>8} "
          f"{'parity':>7}")
    for row in summary["per_tenant"]:
        adm = row.get("admission_ms", {}) or {}
        parity = row.get("parity_ok")
        parity_s = "-" if parity is None else ("ok" if parity else "FAIL")
        print(f"{row['tenant']:>10} {row['transport']:>5} "
              f"{row['ops']:>6} {row['requests']:>6} "
              f"{row['stale_reads']:>6} {row['fresh_reads']:>6} "
              f"{row['max_lag_ops']:>7} "
              f"{float(adm.get('p99', 0.0)):>8.3f} {parity_s:>7}")
    registry = summary.get("server", {}).get("registry", {})
    counters = registry.get("counters", {})
    print(f"registry: opened={counters.get('opened', 0)} "
          f"evicted={counters.get('evicted', 0)} "
          f"quota_rejections={counters.get('quota_rejections', 0)}")


def cmd_serve_load(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.scenarios import UnknownScenarioError
    from repro.server import ReproServer
    from repro.server.loadgen import run_load, wait_ready

    host, port = "127.0.0.1", 0
    if args.connect:
        host, sep, port_raw = args.connect.rpartition(":")
        try:
            port = int(port_raw)
        except ValueError:
            port = -1
        if not sep or not host or port <= 0:
            raise CLIError(f"bad --connect {args.connect!r}: "
                           "expected HOST:PORT")

    async def _run() -> dict:
        server = None
        if args.connect:
            await wait_ready(host, port, timeout_s=args.connect_timeout)
            bound = (host, port)
        else:
            server = ReproServer(host="127.0.0.1", port=0,
                                 max_tenants=max(4, args.tenants + 1))
            bound = await server.start()
        try:
            return await run_load(
                bound[0], bound[1], args.scenario, tenants=args.tenants,
                n=args.n, seed=args.seed, r=args.r, k=args.k,
                eps=args.eps, m_max=args.m_max,
                read_every=args.read_every, deadline_ms=args.deadline_ms,
                chaos_tenant=args.chaos_tenant,
                chaos_spec=args.chaos or "all",
                chaos_seed=args.chaos_seed,
                check_parity=not args.no_parity)
        finally:
            if server is not None:
                await server.close()

    try:
        summary = asyncio.run(_run())
    except UnknownScenarioError as exc:
        raise CLIError(str(exc)) from None
    except TimeoutError as exc:
        raise CLIError(str(exc)) from None
    _print_load_summary(summary)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(summary, indent=2)
                                       + "\n")
        print(f"summary written to {args.json_out}")
    failed = False
    if summary["parity_checked"] and not summary["parity_ok"]:
        print("FAIL: served result digests diverged from the inline "
              "replay", file=sys.stderr)
        failed = True
    if args.slo_p99_ms is not None and \
            summary["admission_p99_ms"] > args.slo_p99_ms:
        print(f"FAIL: admission p99 {summary['admission_p99_ms']:.3f}ms "
              f"exceeds the {args.slo_p99_ms}ms SLO", file=sys.stderr)
        failed = True
    if not failed and summary["parity_checked"]:
        print("parity OK: every tenant's served digest matches its "
              "inline replay")
    return 1 if failed else 0


def cmd_snapshot_save(args) -> int:
    from repro.api import open_session
    from repro.scenarios import (
        UnknownArrivalError,
        UnknownScenarioError,
        get_scenario,
    )
    from repro.scenarios.replay import floor_r
    try:
        scenario = get_scenario(args.scenario)
        trace = scenario.compile(seed=args.seed, n=args.n)
    except (UnknownScenarioError, UnknownArrivalError) as exc:
        raise CLIError(str(exc)) from None
    r_eff = floor_r(args.r, trace.d)
    session = open_session(trace.workload.initial, r_eff, args.k,
                           algo="fd-rms", seed=args.seed, eps=args.eps,
                           m_max=args.m_max, wal=args.wal)
    session.apply_batch(list(trace.workload.operations))
    manifest = session.checkpoint(args.out)
    session.close()
    print(f"checkpoint written to {args.out} "
          f"({trace.n_operations} ops applied)")
    print(f"state digest: {manifest['state_digest']}")
    print(f"wal position: {manifest['wal_position']}")
    return 0


def cmd_snapshot_load(args) -> int:
    from repro.persist import CheckpointError, WALError, restore_engine
    try:
        engine, info = restore_engine(args.directory, wal=args.wal)
    except (CheckpointError, WALError) as exc:
        raise CLIError(str(exc)) from None
    print(f"restored: k={engine.k} r={engine.r} eps={engine.eps} "
          f"m_max={engine.m_max} n={len(engine.database)}")
    print(f"replayed ops: {info['replayed_ops']}")
    print(f"state digest: {info['state_digest']}")
    return 0


def cmd_snapshot_verify(args) -> int:
    from repro.persist import CheckpointError, verify_checkpoint
    try:
        manifest = verify_checkpoint(args.directory)
    except CheckpointError as exc:
        raise CLIError(str(exc)) from None
    print(f"checkpoint OK: {len(manifest['arrays'])} arrays verified")
    print(f"state digest: {manifest['state_digest']}")
    return 0


def cmd_minsize(args) -> int:
    from repro.core.minsize import min_size_curve
    pts = _load(args)
    eps_values = [float(x) for x in args.eps_values.split(",")]
    curve = min_size_curve(pts, eps_values, k=args.k,
                           n_samples=args.eval_samples, seed=args.seed + 2)
    print(f"{'eps':>8} {'|Q|':>6}")
    for eps in sorted(curve, reverse=True):
        print(f"{eps:>8.4f} {curve[eps]:>6}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FD-RMS reproduction CLI (ICDE 2021)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table I)")
    _add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_algos = sub.add_parser(
        "algorithms", help="list registered algorithms and capabilities")
    p_algos.set_defaults(func=cmd_algorithms)

    def add_run_opts(p):
        _add_common(p)
        p.add_argument("--k", type=int, default=1)
        p.add_argument("--r", type=int, default=20)
        p.add_argument("--eps", type=float, default=0.02,
                       help="FD-RMS top-k approximation factor")
        p.add_argument("--m-max", type=int, default=1024, dest="m_max")
        p.add_argument("--snapshots", type=int, default=5)
        p.add_argument("--eval-samples", type=int, default=10_000,
                       dest="eval_samples")
        p.add_argument("--report", default=None,
                       help="write a markdown report to this path")

    p_run = sub.add_parser("run", help="replay one algorithm on a workload")
    add_run_opts(p_run)
    p_run.add_argument("--algorithm", default="FD-RMS",
                       help="any registered algorithm or alias "
                            "(see `repro algorithms`)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare algorithms side by side")
    add_run_opts(p_cmp)
    p_cmp.add_argument("--algorithms", nargs="+",
                       default=["FD-RMS", "Sphere", "HS"])
    p_cmp.set_defaults(func=cmd_compare)

    p_sc = sub.add_parser(
        "scenarios", help="list the built-in dynamic-workload scenarios")
    p_sc.set_defaults(func=cmd_scenarios)

    p_rp = sub.add_parser(
        "replay", help="compile a scenario to a trace and replay it")
    p_rp.add_argument("scenario",
                      help="scenario name (see `repro scenarios`) or 'all'")
    p_rp.add_argument("--algorithms", nargs="+", default=["FD-RMS"],
                      help="algorithms to replay the trace with")
    p_rp.add_argument("--n", type=int, default=None,
                      help="dataset size (default: the scenario's)")
    p_rp.add_argument("--seed", type=int, default=0)
    p_rp.add_argument("--k", type=int, default=1)
    p_rp.add_argument("--r", type=int, default=10)
    p_rp.add_argument("--eps", type=float, default=0.1,
                      help="FD-RMS top-k approximation factor")
    p_rp.add_argument("--m-max", type=int, default=128, dest="m_max")
    p_rp.add_argument("--eval-samples", type=int, default=2000,
                      dest="eval_samples")
    p_rp.add_argument("--trace-out", default=None,
                      help="write the compiled trace(s) as JSONL here "
                           "(a directory when replaying 'all')")
    p_rp.add_argument("--json", default=None, dest="json_out",
                      help="write replay metrics as JSON to this path")
    p_rp.add_argument("--workers", type=int, default=None,
                      help="FD-RMS execution backend: 0/1 = serial "
                           "canonical-block backend, N >= 2 = N "
                           "shared-memory workers (digests are "
                           "worker-count invariant); default: inline "
                           "engine")
    p_rp.add_argument("--check-determinism", action="store_true",
                      help="compile and replay twice; fail on any drift "
                           "(with --supervised the second replay is "
                           "plain, asserting supervised parity)")
    p_rp.add_argument("--expect-hashes", default=None,
                      help="JSON file of expected trace hashes "
                           "(fails on drift)")
    p_rp.add_argument("--supervised", action="store_true",
                      help="route batches through the service-layer "
                           "supervisor (admission queue, waves, "
                           "deadlines; scenario service hints apply)")
    p_rp.add_argument("--chaos", default=None,
                      help="runtime fault injection spec, e.g. 'all' or "
                           "'latency:rate=0.5,pool-kill:at=8,transient'"
                           " (implies --supervised)")
    p_rp.add_argument("--chaos-seed", type=int, default=0,
                      dest="chaos_seed")
    p_rp.add_argument("--service-hint", action="append", default=None,
                      dest="service_hints", metavar="KEY=VALUE",
                      help="override a scenario service hint (e.g. "
                           "--service-hint read_deadline_s=0); "
                           "repeatable")
    p_rp.set_defaults(func=cmd_replay, tenants=None)

    p_sim = sub.add_parser(
        "serve-sim",
        help="simulate a multi-tenant service over a scenario trace")
    p_sim.add_argument("scenario",
                       help="scenario name (see `repro scenarios`)")
    p_sim.add_argument("--algorithm", default="FD-RMS")
    p_sim.add_argument("--n", type=int, default=None,
                       help="dataset size (default: the scenario's)")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--k", type=int, default=1)
    p_sim.add_argument("--r", type=int, default=10)
    p_sim.add_argument("--eps", type=float, default=0.1)
    p_sim.add_argument("--m-max", type=int, default=128, dest="m_max")
    p_sim.add_argument("--tenants", type=int, default=None,
                       help="simulated read tenants per tick "
                            "(default: the scenario's service hint)")
    p_sim.add_argument("--workers", type=int, default=None,
                       help="FD-RMS execution backend worker count")
    p_sim.add_argument("--chaos", default=None,
                       help="runtime fault injection spec (see replay)")
    p_sim.add_argument("--chaos-seed", type=int, default=0,
                       dest="chaos_seed")
    p_sim.add_argument("--service-hint", action="append", default=None,
                       dest="service_hints", metavar="KEY=VALUE",
                       help="override a scenario service hint; "
                            "repeatable")
    p_sim.add_argument("--json", default=None, dest="json_out",
                       help="write the SLO summary as JSON to this path")
    p_sim.set_defaults(func=cmd_serve_sim)

    p_srv = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP+WebSocket service "
             "(wire protocol: docs/SERVICE.md)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 = ephemeral, printed at boot)")
    p_srv.add_argument("--max-tenants", type=int, default=8,
                       dest="max_tenants",
                       help="LRU cap on concurrently open sessions")
    p_srv.add_argument("--checkpoint-root", default=None,
                       dest="checkpoint_root",
                       help="directory for per-tenant checkpoints "
                            "(enables checkpoint-on-evict and resume)")
    p_srv.add_argument("--max-ops-per-request", type=int, default=4096,
                       dest="max_ops_per_request")
    p_srv.add_argument("--max-pending-ops", type=int, default=65536,
                       dest="max_pending_ops")
    p_srv.add_argument("--max-tuples", type=int, default=1_000_000,
                       dest="max_tuples")
    p_srv.set_defaults(func=cmd_serve)

    p_sl_load = sub.add_parser(
        "serve-load",
        help="drive concurrent tenant traffic against repro serve and "
             "check digest parity vs an inline replay")
    p_sl_load.add_argument("scenario",
                           help="scenario name (see `repro scenarios`)")
    p_sl_load.add_argument("--connect", default=None, metavar="HOST:PORT",
                           help="target a running server (default: boot "
                                "an in-process one on an ephemeral port)")
    p_sl_load.add_argument("--connect-timeout", type=float, default=20.0,
                           dest="connect_timeout",
                           help="seconds to wait for /healthz readiness")
    p_sl_load.add_argument("--tenants", type=int, default=2)
    p_sl_load.add_argument("--n", type=int, default=None,
                           help="dataset size (default: the scenario's)")
    p_sl_load.add_argument("--seed", type=int, default=0,
                           help="base seed; tenant i compiles its trace "
                                "with seed+i")
    p_sl_load.add_argument("--k", type=int, default=1)
    p_sl_load.add_argument("--r", type=int, default=10)
    p_sl_load.add_argument("--eps", type=float, default=0.1)
    p_sl_load.add_argument("--m-max", type=int, default=128,
                           dest="m_max")
    p_sl_load.add_argument("--read-every", type=int, default=4,
                           dest="read_every",
                           help="issue a deadline-bounded read every N "
                                "write requests (0 = none)")
    p_sl_load.add_argument("--deadline-ms", type=float, default=2.0,
                           dest="deadline_ms",
                           help="read deadline; later reads may be "
                                "served stale")
    p_sl_load.add_argument("--chaos-tenant", type=int, default=None,
                           dest="chaos_tenant",
                           help="open this tenant index with server-side "
                                "chaos injection (isolation check)")
    p_sl_load.add_argument("--chaos", default=None,
                           help="chaos spec for --chaos-tenant "
                                "(default 'all')")
    p_sl_load.add_argument("--chaos-seed", type=int, default=1,
                           dest="chaos_seed")
    p_sl_load.add_argument("--no-parity", action="store_true",
                           dest="no_parity",
                           help="skip the inline-replay digest "
                                "comparison")
    p_sl_load.add_argument("--slo-p99-ms", type=float, default=None,
                           dest="slo_p99_ms",
                           help="fail (exit 1) when any tenant's p99 "
                                "admission latency exceeds this")
    p_sl_load.add_argument("--json", default=None, dest="json_out",
                           help="write the load summary as JSON here")
    p_sl_load.set_defaults(func=cmd_serve_load)

    p_snap = sub.add_parser(
        "snapshot", help="save, restore, or verify engine checkpoints")
    snap_sub = p_snap.add_subparsers(dest="snapshot_command", required=True)

    p_ss = snap_sub.add_parser(
        "save", help="run a scenario through FD-RMS and checkpoint it")
    p_ss.add_argument("scenario",
                      help="scenario name (see `repro scenarios`)")
    p_ss.add_argument("--out", required=True,
                      help="checkpoint directory to write")
    p_ss.add_argument("--wal", default=None,
                      help="also keep a write-ahead log in this directory")
    p_ss.add_argument("--n", type=int, default=None,
                      help="dataset size (default: the scenario's)")
    p_ss.add_argument("--seed", type=int, default=0)
    p_ss.add_argument("--k", type=int, default=1)
    p_ss.add_argument("--r", type=int, default=10)
    p_ss.add_argument("--eps", type=float, default=0.1)
    p_ss.add_argument("--m-max", type=int, default=128, dest="m_max")
    p_ss.set_defaults(func=cmd_snapshot_save)

    p_sl = snap_sub.add_parser(
        "load", help="restore a checkpoint (rolling a WAL forward)")
    p_sl.add_argument("directory", help="checkpoint directory")
    p_sl.add_argument("--wal", default=None,
                      help="replay this write-ahead log past the "
                           "checkpoint position")
    p_sl.set_defaults(func=cmd_snapshot_load)

    p_sv = snap_sub.add_parser(
        "verify", help="fully verify a checkpoint (digests + restore)")
    p_sv.add_argument("directory", help="checkpoint directory")
    p_sv.set_defaults(func=cmd_snapshot_verify)

    p_ms = sub.add_parser("minsize", help="epsilon vs |Q| trade-off curve")
    _add_common(p_ms)
    p_ms.add_argument("--k", type=int, default=1)
    p_ms.add_argument("--eps-values", default="0.2,0.1,0.05,0.02,0.01",
                      dest="eps_values")
    p_ms.add_argument("--eval-samples", type=int, default=3000,
                      dest="eval_samples")
    p_ms.set_defaults(func=cmd_minsize)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
