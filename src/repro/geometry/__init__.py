"""Geometric substrates: utility-space sampling, LPs, convex-hull helpers."""

from repro.geometry.sampling import (
    sample_utilities,
    sample_utilities_with_basis,
    grid_utilities,
    delta_net_size,
)
from repro.geometry.lp import (
    max_regret_direction,
    min_size_cover_lp_bound,
    point_happiness,
    worst_case_ratio,
)
from repro.geometry.hull import extreme_points, directional_argmax, eps_kernel_directions

__all__ = [
    "sample_utilities",
    "sample_utilities_with_basis",
    "grid_utilities",
    "delta_net_size",
    "max_regret_direction",
    "min_size_cover_lp_bound",
    "point_happiness",
    "worst_case_ratio",
    "extreme_points",
    "directional_argmax",
    "eps_kernel_directions",
]
