"""Linear programs used by regret computations.

The classic regret LP (Nanongkai et al. [22]) computes, for a candidate
tuple ``p`` and a selected subset ``Q``, the worst-case 1-regret that ``p``
inflicts on ``Q``::

    maximize    1 - t
    subject to  <u, q> <= t      for all q in Q
                <u, p>  = 1
                u >= 0

The optimum over all ``p in P`` is exactly ``mrr_1(Q)`` because relaxing
the "p is the top-1 tuple" constraint can only lower the objective (the
true top-1 tuple dominates the ratio). :func:`worst_case_ratio` solves one
such LP; :mod:`repro.core.regret` wraps the max over ``p``.

All LPs are solved with ``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.utils import as_point_matrix


def worst_case_ratio(p: np.ndarray, points_q: np.ndarray) -> float:
    """Solve the regret LP for tuple ``p`` against subset ``Q``.

    Returns ``max_u (1 - ω(u, Q))`` subject to ``<u, p> = 1`` and
    ``u >= 0``, clipped to ``[0, 1]``. A value of 0 means some tuple of
    ``Q`` scores at least as well as ``p`` in every direction; a value of
    1 would mean ``Q`` can be arbitrarily bad relative to ``p``.

    Parameters
    ----------
    p : (d,) array — the reference tuple.
    points_q : (|Q|, d) array — the selected subset.
    """
    p = np.asarray(p, dtype=np.float64).reshape(-1)
    q = as_point_matrix(points_q, name="points_q")
    d = p.shape[0]
    if q.shape[1] != d:
        raise ValueError(f"dimension mismatch: p has d={d}, Q has d={q.shape[1]}")

    # Variables: x = (u_1 .. u_d, t); minimize t.
    c = np.zeros(d + 1)
    c[-1] = 1.0
    # <u, q> - t <= 0 for each q.
    a_ub = np.hstack([q, -np.ones((q.shape[0], 1))])
    b_ub = np.zeros(q.shape[0])
    # <u, p> = 1.
    a_eq = np.hstack([p.reshape(1, -1), np.zeros((1, 1))])
    b_eq = np.ones(1)
    bounds = [(0, None)] * d + [(None, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:
        # Infeasible <u, p> = 1 happens only when p = 0; regret is then 0.
        return 0.0
    return float(np.clip(1.0 - res.fun, 0.0, 1.0))


def max_regret_direction(p: np.ndarray, points_q: np.ndarray) -> tuple[float, np.ndarray]:
    """Like :func:`worst_case_ratio` but also return the maximizing ``u``.

    The returned direction is normalized to unit Euclidean norm (regret
    ratios are scale-invariant in ``u``). Useful for GEOGREEDY-style
    algorithms that need a witness utility, and for diagnostics.
    """
    p = np.asarray(p, dtype=np.float64).reshape(-1)
    q = as_point_matrix(points_q, name="points_q")
    d = p.shape[0]
    c = np.zeros(d + 1)
    c[-1] = 1.0
    a_ub = np.hstack([q, -np.ones((q.shape[0], 1))])
    b_ub = np.zeros(q.shape[0])
    a_eq = np.hstack([p.reshape(1, -1), np.zeros((1, 1))])
    b_eq = np.ones(1)
    bounds = [(0, None)] * d + [(None, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:
        return 0.0, np.full(d, 1.0 / np.sqrt(d))
    u = np.asarray(res.x[:d], dtype=np.float64)
    norm = float(np.linalg.norm(u))
    if norm == 0.0:
        u = np.full(d, 1.0 / np.sqrt(d))
    else:
        u = u / norm
    return float(np.clip(1.0 - res.fun, 0.0, 1.0)), u


def point_happiness(p: np.ndarray, others: np.ndarray) -> float:
    """Margin by which ``p`` is an extreme point of ``conv(others ∪ {p})``.

    Solves ``max_u <u, p> - max_{q in others} <u, q>`` over ``u >= 0``
    with ``sum(u) = 1``. Positive values certify that ``p`` is a vertex of
    the upper hull in some nonnegative direction — the "happy point" test
    of GEOGREEDY [23]. Nonpositive values mean ``p`` is never the unique
    top-1 tuple.
    """
    p = np.asarray(p, dtype=np.float64).reshape(-1)
    q = as_point_matrix(others, name="others")
    d = p.shape[0]
    # Variables: (u, s); maximize s  s.t.  <u, q> + s <= <u, p> for all q,
    # sum u = 1, u >= 0.  Minimize -s.
    c = np.zeros(d + 1)
    c[-1] = -1.0
    a_ub = np.hstack([q - p.reshape(1, -1), np.ones((q.shape[0], 1))])
    b_ub = np.zeros(q.shape[0])
    a_eq = np.hstack([np.ones((1, d)), np.zeros((1, 1))])
    b_eq = np.ones(1)
    bounds = [(0, None)] * d + [(None, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:
        return float("-inf")
    return float(-res.fun)


def min_size_cover_lp_bound(membership: np.ndarray) -> float:
    """LP lower bound on the optimal set-cover size of a 0/1 membership matrix.

    ``membership[i, j] = 1`` iff set ``j`` covers element ``i``. The
    fractional relaxation ``min sum x_j s.t. membership @ x >= 1`` lower
    bounds the integral optimum; tests use it to sanity-check the greedy
    and stable covers against ``OPT``.
    """
    mat = np.asarray(membership, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError("membership must be a 2-d 0/1 matrix")
    n_elems, n_sets = mat.shape
    if n_elems == 0:
        return 0.0
    if (mat.sum(axis=1) == 0).any():
        raise ValueError("some element is covered by no set; cover infeasible")
    c = np.ones(n_sets)
    res = linprog(c, A_ub=-mat, b_ub=-np.ones(n_elems),
                  bounds=[(0, 1)] * n_sets, method="highs")
    if not res.success:
        raise RuntimeError(f"set-cover LP failed: {res.message}")
    return float(res.fun)
