"""Sampling utility vectors from the nonnegative unit sphere.

The class of linear utility functions corresponds to the nonnegative
orthant of the d-dimensional unit sphere,
``U = {u in R^d_+ : ||u|| = 1}`` (paper §II-A). FD-RMS draws its universe
of utility vectors from ``U`` (Algorithm 2, line 1): the first ``d``
vectors are the standard basis of ``R^d_+`` and the rest are uniform
samples. This module provides those samples plus deterministic grids used
by the DMM and ε-kernel baselines, and the δ-net size bound used in the
analysis (Theorem 2).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.utils import resolve_rng, check_dimension


def sample_utilities(m: int, d: int, seed=None) -> np.ndarray:
    """Draw ``m`` utility vectors uniformly from ``U``.

    Uniformity on the sphere restricted to the nonnegative orthant is
    obtained by sampling standard normals and taking absolute values
    before normalizing; reflecting a spherically symmetric sample into
    one orthant preserves uniformity within that orthant.

    Returns an ``(m, d)`` array of unit rows.
    """
    d = check_dimension(d)
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if m == 0:
        return np.empty((0, d), dtype=np.float64)
    rng = resolve_rng(seed)
    vecs = np.abs(rng.standard_normal((m, d)))
    # Degenerate all-zero rows have probability zero but guard anyway.
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    bad = (norms == 0).reshape(-1)
    if bad.any():
        vecs[bad] = 1.0
        norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    return vecs / norms


def sample_utilities_with_basis(m: int, d: int, seed=None) -> np.ndarray:
    """Utility sample whose first ``d`` rows are the standard basis.

    Mirrors Algorithm 2, line 1 of the paper: FD-RMS always includes the
    basis vectors ``e_1 .. e_d`` so the scores along each single attribute
    are represented, and fills the remaining ``m - d`` rows uniformly.
    """
    d = check_dimension(d)
    if m < d:
        raise ValueError(f"need m >= d to include the basis, got m={m}, d={d}")
    basis = np.eye(d, dtype=np.float64)
    rest = sample_utilities(m - d, d, seed=seed)
    return np.vstack([basis, rest])


def grid_utilities(per_axis: int, d: int) -> np.ndarray:
    """Deterministic grid of directions covering ``U``.

    Enumerates the simplex grid ``{w in N^d : sum w = per_axis}``,
    interprets each lattice point as a direction, and normalizes. Used by
    the DMM baselines (space discretization) and the ε-kernel direction
    grid. The grid has ``C(per_axis + d - 1, d - 1)`` points, so callers
    should keep ``per_axis`` modest in high dimensions.
    """
    d = check_dimension(d)
    if per_axis < 1:
        raise ValueError(f"per_axis must be >= 1, got {per_axis}")
    rows = []
    for comp in itertools.combinations(range(per_axis + d - 1), d - 1):
        prev = -1
        weights = []
        for cut in comp:
            weights.append(cut - prev - 1)
            prev = cut
        weights.append(per_axis + d - 2 - prev)
        rows.append(weights)
    grid = np.asarray(rows, dtype=np.float64)
    norms = np.linalg.norm(grid, axis=1, keepdims=True)
    keep = norms.reshape(-1) > 0
    return grid[keep] / norms[keep]


def delta_net_size(delta: float, d: int) -> int:
    """Sample size that forms a δ-net of ``U`` with probability >= 1/2.

    Theorem 2 of the paper uses the classical bound: a random sample of
    ``O(δ^{1-d} · log(1/δ))`` directions is a δ-net of the positive
    orthant of the unit sphere. The constant is taken as 1, which is the
    convention the paper's parameter-tuning discussion implies.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    d = check_dimension(d)
    if d == 1:
        return 1
    return max(1, math.ceil(delta ** (1 - d) * math.log(1.0 / delta)))


def net_resolution(m: int, d: int) -> float:
    """Inverse of :func:`delta_net_size`: the δ achieved by ``m`` samples.

    Solves ``m = δ^{1-d} log(1/δ)`` for δ by bisection; this is the
    ``δ = O(m^{-1/(d-1)})`` quantity in Theorem 2 (log factor included).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    d = check_dimension(d)
    if d == 1:
        return 0.0
    lo, hi = 1e-12, 1.0 - 1e-12

    def needed(delta: float) -> float:
        return delta ** (1 - d) * math.log(1.0 / delta)

    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if needed(mid) > m:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
