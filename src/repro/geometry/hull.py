"""Convex-hull and extreme-point helpers.

The k-RMS result is always a subset of the skyline, and for ``k = 1`` it
is a subset of the vertices of the upper convex hull (only hull vertices
can be the unique top-1 tuple of a linear utility). GEOGREEDY exploits
this to shrink the candidate pool; the ε-kernel baselines pick directional
extremes. These helpers implement both, vectorized over numpy, with a
scipy ``ConvexHull`` fast path when the point count and dimension allow.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_point_matrix
from repro.geometry.sampling import grid_utilities, sample_utilities


def directional_argmax(points: np.ndarray, directions: np.ndarray) -> np.ndarray:
    """Indices of the maximum-score point per direction.

    ``points`` is ``(n, d)``, ``directions`` is ``(m, d)``; returns an
    ``(m,)`` integer array with ``argmax_i <dir_j, p_i>`` per row ``j``.
    Ties resolve to the lowest index (numpy argmax convention), which is a
    consistent tie-breaking rule as required by §II-A of the paper.
    """
    pts = as_point_matrix(points)
    dirs = np.asarray(directions, dtype=np.float64)
    if dirs.ndim == 1:
        dirs = dirs.reshape(1, -1)
    if dirs.shape[1] != pts.shape[1]:
        raise ValueError(
            f"dimension mismatch: points d={pts.shape[1]}, directions d={dirs.shape[1]}"
        )
    scores = dirs @ pts.T
    return np.argmax(scores, axis=1)


def extreme_points(points: np.ndarray, *, n_directions: int = 0, seed=None,
                   exact: bool | None = None) -> np.ndarray:
    """Indices of points that are top-1 for some nonnegative direction.

    "Top-1" is *weak*: a point tied with others for the maximum along
    some direction counts (that makes the result a superset closed under
    ties, which the RMS algorithms need — any of the tied tuples may be
    returned by a top-k query).

    Strategy:

    * a cheap directional probe (axes + ``n_directions`` samples, default
      ``max(500, 100 * d)``) collects certain extremes;
    * in exact mode (default for ``d <= 7``) the candidate set is first
      reduced to convex-hull vertices via qhull, then every remaining
      candidate is certified or rejected with the weak-extremality LP of
      :func:`repro.geometry.lp.point_happiness`;
    * for higher dimensions exact certification is skipped (GEOGREEDY's
      known scalability wall, §IV-B) and the probe result is returned.

    The returned index array is sorted and unique.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    if n == 1:
        return np.array([0], dtype=np.intp)
    if exact is None:
        exact = d <= 7

    if n_directions <= 0:
        n_directions = max(500, 100 * d)
    dirs = np.vstack([np.eye(d), sample_utilities(n_directions, d, seed=seed)])
    certain = set(int(i) for i in directional_argmax(pts, dirs))
    if not exact:
        return np.asarray(sorted(certain), dtype=np.intp)

    candidates = _qhull_vertex_candidates(pts)
    if candidates is None:
        candidates = np.arange(n, dtype=np.intp)
    from repro.geometry.lp import point_happiness
    keep = set(certain)
    for idx in candidates:
        idx = int(idx)
        if idx in keep:
            continue
        others = np.delete(pts, idx, axis=0)
        if point_happiness(pts[idx], others) >= -1e-9:
            keep.add(idx)
    return np.asarray(sorted(keep), dtype=np.intp)


def _qhull_vertex_candidates(pts: np.ndarray) -> np.ndarray | None:
    """Convex-hull vertex indices (with an origin anchor), or ``None``.

    The anchor closes the hull from below so purely "negative-direction"
    structure cannot make interior points vertices; the result is a
    *superset* of the weakly extreme points up to ties (tied duplicates
    may be dropped by qhull, which is why callers union the directional
    probe winners back in).
    """
    try:
        from scipy.spatial import ConvexHull, QhullError
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    n, d = pts.shape
    if n <= d + 2:
        return np.arange(n, dtype=np.intp)
    lifted = np.vstack([pts, np.zeros((1, d))])
    try:
        hull = ConvexHull(lifted)
    except (QhullError, ValueError):
        try:
            hull = ConvexHull(lifted, qhull_options="QJ")
        except (QhullError, ValueError):
            return None
    verts = hull.vertices
    return np.asarray(sorted(int(v) for v in verts if v < n), dtype=np.intp)


def eps_kernel_directions(d: int, eps: float, *, max_directions: int = 200_000,
                          seed=None) -> np.ndarray:
    """Direction set whose extremes form an ε-kernel (practical variant).

    Agarwal et al. [2] show that taking the extreme point along each
    direction of a ``O(sqrt(eps))``-net of the sphere yields an ε-kernel
    for directional width. We build the net from the deterministic simplex
    grid when it is small enough, otherwise from a uniform sample of the
    matching δ-net size, capped at ``max_directions``.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    delta = float(np.sqrt(eps))
    per_axis = max(1, int(np.ceil(1.0 / delta)))
    # Grid size is C(per_axis + d - 1, d - 1); compute without overflow.
    from math import comb
    grid_size = comb(per_axis + d - 1, d - 1)
    if grid_size <= max_directions:
        return grid_utilities(per_axis, d)
    from repro.geometry.sampling import delta_net_size
    m = min(max_directions, delta_net_size(delta, d))
    return np.vstack([np.eye(d), sample_utilities(m, d, seed=seed)])
