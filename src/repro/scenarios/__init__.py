"""Scenario engine: declarative dynamic workloads and replayable traces.

* :class:`Scenario` — a declarative spec (dataset + arrival pattern +
  snapshot policy) compiled into a deterministic operation trace;
* :class:`Trace` — the compiled tape, serializable to JSONL with a
  SHA-256 content hash (:func:`save_trace` / :func:`load_trace`);
* :func:`replay_trace` / :func:`run_scenario` — drive any trace through
  the streaming Session API for any registered algorithm, collecting
  per-op latency percentiles, regret over time, and engine counters;
* the built-in catalogue (``repro scenarios`` lists it) covers the
  paper's protocol plus sliding-window, burst, decay, drift,
  adversarial-skyline, and mixed-batch regimes.
"""

from repro.scenarios.spec import (
    Scenario,
    UnknownArrivalError,
    UnknownScenarioError,
    arrival,
    get_arrival,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.trace import (
    Trace,
    TraceFormatError,
    hash_key,
    load_trace,
    save_trace,
)
from repro.scenarios.replay import (
    ReplayResult,
    ReplaySnapshot,
    batch_slices,
    replay_trace,
    run_scenario,
)

__all__ = [
    "Scenario",
    "UnknownArrivalError",
    "UnknownScenarioError",
    "arrival",
    "get_arrival",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
    "Trace",
    "TraceFormatError",
    "hash_key",
    "load_trace",
    "save_trace",
    "ReplayResult",
    "ReplaySnapshot",
    "batch_slices",
    "replay_trace",
    "run_scenario",
]
