"""Replay driver: run any trace through any registered algorithm.

:func:`replay_trace` opens a streaming :class:`~repro.api.Session` for
the requested algorithm (FD-RMS natively, static baselines under the
recompute protocol), feeds the trace's operations through
``Session.apply_batch`` slice by slice (per the trace's batch plan,
split at snapshot marks), and collects:

* **per-operation latency percentiles** — each batch's wall time is
  attributed evenly to its operations, so single-op plans yield true
  per-op latencies;
* **regret over time** — estimated ``mrr_k`` on a frozen utility test
  set at every snapshot mark, plus result ids and database size;
* **engine counters** — whatever ``Session.stats()`` reports (inserts,
  deletes, recomputes, index statistics, ...).

Replays are deterministic apart from wall-clock timings:
:meth:`ReplayResult.determinism_digest` hashes everything *except*
timings, so two replays of the same trace with the same seed must agree
digest-for-digest — the invariant the CI scenario matrix enforces.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.api.registry import get_algorithm
from repro.api.session import open_session
from repro.core.regret import RegretEvaluator
from repro.scenarios.spec import Scenario, get_scenario
from repro.scenarios.trace import Trace, jsonable_scalar

# Fixed seed for the replay utility test set: regret numbers from
# different runs, algorithms, and machines are mutually comparable.
EVAL_SEED = 90125


@dataclass(frozen=True)
class ReplaySnapshot:
    """Result quality recorded at one snapshot mark."""

    op_index: int
    db_size: int
    result_size: int
    result_ids: tuple[int, ...]
    mrr: float


@dataclass
class ReplayResult:
    """Metrics from one (trace, algorithm) replay."""

    scenario: str
    algorithm: str
    trace_hash: str
    n_operations: int
    n_batches: int
    update_seconds: float
    #: Engine build time (session construction over the initial
    #: database) — cold-start regressions are visible per scenario.
    init_seconds: float = 0.0
    snapshots: list[ReplaySnapshot] = field(default_factory=list)
    counters: dict[str, Any] = field(default_factory=dict)
    op_latencies_ms: np.ndarray = field(
        default_factory=lambda: np.empty(0))
    #: Service-layer report of a supervised replay (admission latency,
    #: waves, retries, shed reads, chaos tallies, final state digest).
    #: Deliberately OUTSIDE :meth:`determinism_digest`: supervision and
    #: chaos change *when* work happens, never *what* is computed, and
    #: their counters must not perturb the pinned scenario digests.
    service: dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float | None:
        """Per-operation update throughput (None before any update)."""
        if self.update_seconds <= 0:
            return None
        return self.n_operations / self.update_seconds

    @property
    def mean_mrr(self) -> float:
        if not self.snapshots:
            return 0.0
        return float(np.mean([s.mrr for s in self.snapshots]))

    @property
    def max_mrr(self) -> float:
        if not self.snapshots:
            return 0.0
        return float(max(s.mrr for s in self.snapshots))

    def latency_percentiles(self) -> dict[str, float]:
        """Per-operation latency stats in milliseconds."""
        lat = np.asarray(self.op_latencies_ms, dtype=float)
        if lat.size == 0:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
                    "mean": 0.0}
        p50, p90, p99 = np.percentile(lat, [50, 90, 99])
        return {"p50": round(float(p50), 5), "p90": round(float(p90), 5),
                "p99": round(float(p99), 5),
                "max": round(float(lat.max()), 5),
                "mean": round(float(lat.mean()), 5)}

    def determinism_digest(self) -> str:
        """``sha256:`` digest over everything except wall-clock timings.

        Covers the trace hash, per-snapshot result ids / database sizes
        / regret values, and the timing-free counters — two replays of
        the same trace with the same algorithm seed must agree.
        """
        counters = {k: _jsonable(v) for k, v in sorted(self.counters.items())
                    if "seconds" not in k}
        payload = {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "trace_hash": self.trace_hash,
            "snapshots": [
                [s.op_index, s.db_size, list(s.result_ids),
                 round(s.mrr, 12)]
                for s in self.snapshots
            ],
            "counters": counters,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return f"sha256:{hashlib.sha256(blob.encode()).hexdigest()}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (timings rounded, latencies as percentiles)."""
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "trace_hash": self.trace_hash,
            "n_operations": self.n_operations,
            "n_batches": self.n_batches,
            "init_seconds": round(self.init_seconds, 4),
            "update_seconds": round(self.update_seconds, 4),
            "ops_per_second": round(self.ops_per_second, 1)
            if self.ops_per_second is not None else None,
            "latency_ms": self.latency_percentiles(),
            "mean_mrr": round(self.mean_mrr, 6),
            "max_mrr": round(self.max_mrr, 6),
            "snapshots": [
                {"op_index": s.op_index, "db_size": s.db_size,
                 "result_size": s.result_size, "mrr": round(s.mrr, 6)}
                for s in self.snapshots
            ],
            "counters": {k: _jsonable(v)
                         for k, v in sorted(self.counters.items())},
            "determinism_digest": self.determinism_digest(),
            **({"service": self.service} if self.service else {}),
        }


def _jsonable(value: Any) -> Any:
    return jsonable_scalar(value, round_floats=9)


def floor_r(r: int, d: int) -> int:
    """Floor a requested result size at the dimensionality.

    FD-RMS requires ``r >= d`` (paper Definition 1); flooring lets one
    ``r`` setting drive scenarios of different dimensionality.
    """
    return max(int(r), int(d))


def batch_slices(trace: Trace) -> Iterable[tuple[int, int]]:
    """Yield ``(start, stop)`` op slices honoring plan + snapshot marks.

    The trace's batch plan (default: singletons) is split wherever a
    snapshot mark falls inside a batch, so every mark lands exactly on a
    slice boundary and results can be recorded there.
    """
    marks = set(trace.workload.snapshots)
    plan = trace.batch_plan
    if plan is None:
        plan = (1,) * trace.n_operations
    start = 0
    for size in plan:
        stop = start + size
        cut = start
        for idx in range(start + 1, stop):
            if idx in marks:
                yield cut, idx
                cut = idx
        if cut < stop:
            yield cut, stop
        start = stop


def replay_trace(trace: Trace, algorithm: str = "fd-rms", *, r: int,
                 k: int = 1, seed: int | None = 0,
                 evaluator: RegretEvaluator | None = None,
                 eval_samples: int = 2000,
                 options: Mapping[str, Any] | None = None,
                 service: Any = None) -> ReplayResult:
    """Replay ``trace`` with ``algorithm`` and collect metrics.

    ``options`` is a shared option bag (e.g. ``{"eps": ..., "m_max":
    ...}``); keys the algorithm does not understand are dropped, so one
    bag can drive FD-RMS and every baseline side by side.

    ``service`` (a :class:`repro.service.driver.ServiceOptions`) routes
    every batch through a supervised
    :class:`~repro.service.SessionSupervisor` — with optional chaos
    injection — instead of calling ``apply_batch`` directly. The queue
    is drained before every snapshot mark, so the recorded result ids,
    sizes, and regret values are byte-identical to an unsupervised
    replay of the same trace; the service-layer report (admission
    percentiles, waves, retries, shed reads, chaos tallies, final
    state digest) lands in :attr:`ReplayResult.service`, outside the
    determinism digest.
    """
    spec = get_algorithm(algorithm)
    workload = trace.workload
    routed = {key: value for key, value in sorted(dict(options or {}).items())
              if spec.accepts_var_kwargs or key in spec.option_names}
    t_init = time.perf_counter()
    session = open_session(workload.initial, r, k=k, algo=algorithm,
                           seed=seed, **routed)
    init_seconds = time.perf_counter() - t_init
    if evaluator is None:
        evaluator = RegretEvaluator(workload.d, n_samples=eval_samples,
                                    seed=EVAL_SEED)
    marks = set(workload.snapshots)
    latencies = np.empty(workload.n_operations, dtype=float)
    snapshots: list[ReplaySnapshot] = []
    total = 0.0
    n_batches = 0
    driver = None
    if service is not None:
        from repro.service.driver import SupervisedDriver
        driver = SupervisedDriver(session, service)
    try:
        for start, stop in batch_slices(trace):
            ops = workload.operations[start:stop]
            t0 = time.perf_counter()
            if driver is not None:
                driver.feed(ops)
                if stop in marks:
                    # Snapshots must never depend on wave boundaries:
                    # drain so the recorded results match an
                    # unsupervised replay exactly.
                    driver.barrier()
            else:
                session.apply_batch(ops)
            seconds = time.perf_counter() - t0
            total += seconds
            n_batches += 1
            latencies[start:stop] = 1e3 * seconds / len(ops)
            if stop in marks:
                result_ids = tuple(session.result())
                q = session.result_points()
                points = session.db.points()
                mrr = (evaluator.evaluate(points, q, k)
                       if q.shape[0] and points.shape[0] else 0.0)
                snapshots.append(ReplaySnapshot(
                    op_index=stop, db_size=len(session.db),
                    result_size=len(result_ids), result_ids=result_ids,
                    mrr=float(mrr)))
        service_report: dict[str, Any] = {}
        if driver is not None:
            driver.barrier()
            service_report = driver.service_report()
        return ReplayResult(
            scenario=trace.scenario, algorithm=spec.display_name,
            trace_hash=trace.content_hash,
            n_operations=workload.n_operations, n_batches=n_batches,
            update_seconds=total, init_seconds=init_seconds,
            snapshots=snapshots,
            counters=dict(session.stats()), op_latencies_ms=latencies,
            service=service_report)
    finally:
        # Sessions may own external resources (WAL handles, a parallel
        # worker pool + shared segments); replay must not leak them.
        closer = getattr(session, "close", None)
        if callable(closer):
            closer()


def run_scenario(name_or_scenario: str | Scenario,
                 algorithms: Iterable[str] = ("fd-rms",), *, r: int,
                 k: int = 1, seed: int = 0, n: int | None = None,
                 eval_samples: int = 2000,
                 options: Mapping[str, Any] | None = None,
                 ) -> tuple[Trace, list[ReplayResult]]:
    """Compile a scenario once and replay it with each algorithm.

    All algorithms see the *same* compiled trace (and the same frozen
    utility test set), so their metrics are directly comparable.
    """
    if isinstance(name_or_scenario, Scenario):
        scenario = name_or_scenario
    else:
        scenario = get_scenario(name_or_scenario)
    trace = scenario.compile(seed=seed, n=n)
    evaluator = RegretEvaluator(trace.d, n_samples=eval_samples,
                                seed=EVAL_SEED)
    results = [replay_trace(trace, algo, r=r, k=k, seed=seed,
                            evaluator=evaluator, options=options)
               for algo in algorithms]
    return trace, results
