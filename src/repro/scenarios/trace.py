"""Serializable operation traces with content hashes.

A :class:`Trace` is the compiled, fully materialized form of a scenario:
the initial database, the exact operation sequence (with pre-assigned
tuple ids), the snapshot marks, and an optional batch plan. Traces are
what the replay driver consumes and what CI pins: the
:attr:`Trace.content_hash` is a SHA-256 over a canonical JSONL
serialization, so "same scenario, same seed, same trace" is checkable
byte-for-byte across machines.

File format (``.jsonl``): one JSON object or array per line.

* line 1 — header object: scenario name, seed, dimensions, snapshot
  marks, batch plan, compile parameters, and the content hash;
* one ``["init", id, [values...]]`` line per initial tuple;
* one ``["+", id, [values...]]`` / ``["-", id, [values...]]`` line per
  operation (deletions carry the victim's value, as
  :class:`~repro.data.Operation` does).

The hash covers every line with the header's ``content_hash`` field
removed, so a loaded file can be verified independently of how it was
produced. Floats are serialized with Python's shortest round-trip repr,
which is deterministic and lossless for float64.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from types import MappingProxyType
from collections.abc import Iterator, Mapping
from typing import Any

import numpy as np

from repro._types import FloatArray

from repro.data.database import DELETE, INSERT, Operation
from repro.data.workload import DynamicWorkload

_FORMAT_VERSION = 1
_KIND = "scenario-trace"


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or fails verification."""


@dataclass(frozen=True)
class Trace:
    """A compiled scenario: workload tape + provenance + batch plan.

    Attributes
    ----------
    scenario : str
        Name of the scenario this trace was compiled from.
    seed : int
        Compile seed (dataset draw and arrival randomness).
    workload : DynamicWorkload
        Initial database, operations, and snapshot marks.
    batch_plan : tuple of int, or None
        Sizes of the operation slices replay feeds to ``apply_batch``;
        ``None`` means one operation at a time. Sizes sum to the number
        of operations.
    params : mapping
        The resolved compile-time parameters, for provenance.
    """

    scenario: str
    seed: int
    workload: DynamicWorkload
    batch_plan: tuple[int, ...] | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           MappingProxyType(dict(self.params)))
        if self.batch_plan is not None:
            plan = tuple(int(b) for b in self.batch_plan)
            if any(b < 1 for b in plan):
                raise ValueError("batch_plan sizes must be >= 1")
            if sum(plan) != self.workload.n_operations:
                raise ValueError(
                    f"batch_plan covers {sum(plan)} ops, workload has "
                    f"{self.workload.n_operations}")
            object.__setattr__(self, "batch_plan", plan)

    @property
    def n_operations(self) -> int:
        return self.workload.n_operations

    @property
    def d(self) -> int:
        return self.workload.d

    @cached_property
    def content_hash(self) -> str:
        """``sha256:<hex>`` over the canonical serialization."""
        digest = hashlib.sha256()
        for line in _canonical_lines(self, content_hash=None):
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return f"sha256:{digest.hexdigest()}"

    def header(self) -> dict[str, Any]:
        """The file header (including the content hash)."""
        return _header(self, content_hash=self.content_hash)


def hash_key(scenario: str, n: int, seed: int) -> str:
    """Key for golden trace-hash files (``<name>:n=<n>:seed=<seed>``).

    Both the writer (``benchmarks/bench_scenarios.py --write-hashes``)
    and the checker (``repro replay --expect-hashes``) go through this
    helper so the file contract lives in one place.
    """
    return f"{scenario}:n={int(n)}:seed={int(seed)}"


def jsonable_scalar(value: Any, *, round_floats: int | None = None) -> Any:
    """Coerce numpy scalars for JSON; optionally round floats.

    Shared by the trace serializer (exact values — they feed the
    content hash) and the replay metrics (rounded — they feed reports
    and digests).
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        value = float(value)
        if round_floats is not None:
            value = round(value, round_floats)
        return value
    return value


def _point_list(point: FloatArray) -> list[float]:
    return [float(v) for v in point]


def _header(trace: Trace, *, content_hash: str | None) -> dict[str, Any]:
    header: dict[str, Any] = {
        "kind": _KIND,
        "version": _FORMAT_VERSION,
        "scenario": trace.scenario,
        "seed": int(trace.seed),
        "d": trace.d,
        "n_initial": int(trace.workload.initial.shape[0]),
        "n_ops": trace.n_operations,
        "snapshots": [int(s) for s in trace.workload.snapshots],
        "batch_plan": (list(trace.batch_plan)
                       if trace.batch_plan is not None else None),
        "params": {k: jsonable_scalar(v)
                   for k, v in sorted(trace.params.items())},
    }
    if content_hash is not None:
        header["content_hash"] = content_hash
    return header


def _canonical_lines(trace: Trace, *,
                     content_hash: str | None) -> Iterator[str]:
    yield json.dumps(_header(trace, content_hash=content_hash),
                     sort_keys=True, separators=(",", ":"))
    for tid, row in enumerate(trace.workload.initial):
        yield json.dumps(["init", tid, _point_list(row)],
                         separators=(",", ":"))
    for op in trace.workload.operations:
        yield json.dumps([op.kind, op.tuple_id, _point_list(op.point)],
                         separators=(",", ":"))


def save_trace(trace: Trace, path: str | Path) -> str:
    """Write ``trace`` as JSONL; returns its ``sha256:`` content hash."""
    content_hash = trace.content_hash
    with Path(path).open("w", encoding="utf-8") as handle:
        for line in _canonical_lines(trace, content_hash=content_hash):
            handle.write(line)
            handle.write("\n")
    return content_hash


def load_trace(path: str | Path, *, verify: bool = True) -> Trace:
    """Reload a trace saved with :func:`save_trace`.

    With ``verify=True`` (default) the recomputed content hash must
    match the one recorded in the header; a mismatch (truncated file,
    edited operations) raises :class:`TraceFormatError`.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        try:
            header = json.loads(handle.readline())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # UnicodeDecodeError covers binary garbage: text-mode reads
            # decode lazily, so it surfaces at readline, not open.
            raise TraceFormatError(f"{path}: malformed header") from exc
        if not isinstance(header, dict) or header.get("kind") != _KIND:
            raise TraceFormatError(f"{path} is not a scenario trace")
        if int(header.get("version", -1)) > _FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: format v{header.get('version')} is newer than "
                f"this library (v{_FORMAT_VERSION})")
        d = int(header["d"])
        n_initial = int(header["n_initial"])
        n_ops = int(header["n_ops"])
        initial = np.empty((n_initial, d), dtype=np.float64)
        operations: list[Operation] = []

        def body_line(what: str) -> tuple[Any, Any, Any]:
            # UnicodeDecodeError (binary garbage mid-file) is a
            # ValueError subclass, so it maps to TraceFormatError too.
            try:
                tag, tid, values = json.loads(handle.readline())
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"{path}: truncated or malformed {what} line") from exc
            return tag, tid, values

        for i in range(n_initial):
            tag, tid, values = body_line(f"init[{i}]")
            if tag != "init" or tid != i:
                raise TraceFormatError(f"{path}: bad init line {i}")
            initial[i] = values
        for i in range(n_ops):
            kind, tid, values = body_line(f"op[{i}]")
            if kind not in (INSERT, DELETE):
                raise TraceFormatError(f"{path}: bad op kind {kind!r}")
            operations.append(Operation(
                kind, np.asarray(values, dtype=np.float64),
                tuple_id=None if tid is None else int(tid)))
        try:
            trailing = handle.readline().strip()
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"{path}: binary garbage after "
                                   f"{n_ops} operations") from exc
        if trailing:
            raise TraceFormatError(f"{path}: trailing data after "
                                   f"{n_ops} operations")
    workload = DynamicWorkload(
        initial=initial, operations=operations,
        snapshots=tuple(int(s) for s in header["snapshots"]))
    batch_plan = header.get("batch_plan")
    trace = Trace(scenario=str(header["scenario"]),
                  seed=int(header["seed"]), workload=workload,
                  batch_plan=None if batch_plan is None
                  else tuple(batch_plan),
                  params=header.get("params", {}))
    if verify:
        recorded = header.get("content_hash")
        if recorded != trace.content_hash:
            raise TraceFormatError(
                f"{path}: content hash mismatch (header {recorded}, "
                f"recomputed {trace.content_hash})")
    return trace
