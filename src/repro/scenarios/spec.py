"""Declarative scenario specs and the scenario registry.

A :class:`Scenario` describes a dynamic workload *declaratively* — which
dataset to draw, how operations arrive, and when to snapshot results —
without fixing a dataset size or seed. Compiling a scenario
(:meth:`Scenario.compile`) materializes it into a fully deterministic,
serializable operation :class:`~repro.scenarios.trace.Trace` that any
registered algorithm can replay through the streaming Session API.

The split mirrors the algorithm registry in :mod:`repro.api.registry`:

* **arrival patterns** (``@arrival``) are reusable generators that turn
  a point matrix plus an RNG into a
  :class:`~repro.data.DynamicWorkload` and an optional batch plan;
* **scenarios** (``register_scenario``) bind an arrival pattern to a
  dataset, parameters, and a snapshot policy under a stable name.

Adding a new workload shape is therefore a ~20-line spec, not a new
harness: write (or reuse) an arrival pattern, then register a
:class:`Scenario` naming it. The built-in catalogue lives in
:mod:`repro.scenarios.builtins` and is loaded lazily on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Mapping

import numpy as np


class UnknownScenarioError(KeyError):
    """Raised when a name resolves to no registered scenario."""

    def __init__(self, name: str, choices: list[str]) -> None:
        self.name = name
        self.choices = list(choices)
        super().__init__(
            f"unknown scenario {name!r}; choose from {', '.join(choices)}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


class UnknownArrivalError(KeyError):
    """Raised when a scenario names an unregistered arrival pattern."""

    def __init__(self, name: str, choices: list[str]) -> None:
        self.name = name
        self.choices = list(choices)
        super().__init__(
            f"unknown arrival pattern {name!r}; registered patterns: "
            f"{', '.join(choices)}")

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class Scenario:
    """One declarative dynamic-workload specification.

    Attributes
    ----------
    name : str
        Stable registry key (lowercase, dash-separated).
    summary : str
        One-line description shown by ``repro scenarios``.
    dataset : str
        Any :func:`repro.data.make_dataset` name (BB, AQ, CT, Movie,
        Indep, AntiCor); the compiled size defaults to ``n``.
    n : int
        Default dataset size; override per-compile with ``compile(n=...)``.
    arrival : str
        Name of a registered arrival pattern (see :func:`arrival`).
    params : mapping
        Extra keyword arguments for the arrival pattern. Sizes are
        expressed as fractions of ``n`` so scenarios scale cleanly.
    n_snapshots : int
        Snapshot policy: how many evenly spaced recording marks the
        compiled workload carries.
    service : mapping
        Supervisor hints for supervised replays (``repro replay
        --supervised``, ``repro serve-sim``): keys are
        :class:`~repro.service.policy.SupervisorConfig` fields plus the
        driver's ``read_every``/``tenants``. Purely a runtime default —
        never part of the compiled trace or its content hash.
    """

    name: str
    summary: str
    dataset: str = "Indep"
    n: int = 2000
    arrival: str = "paper"
    params: Mapping[str, Any] = field(default_factory=dict)
    n_snapshots: int = 10
    service: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           MappingProxyType(dict(self.params)))
        object.__setattr__(self, "service",
                           MappingProxyType(dict(self.service)))

    def scaled(self, n: int) -> "Scenario":
        """A copy of this scenario with dataset size ``n``."""
        return replace(self, n=int(n))

    def compile(self, *, seed: int = 0, n: int | None = None):
        """Materialize the scenario into a deterministic operation trace.

        The dataset is drawn with ``seed`` and the arrival pattern with
        an RNG derived from ``(seed, scenario name)``, so the same
        ``(scenario, seed, n)`` always compiles to the same trace —
        byte-for-byte, across platforms (PCG64 and the JSON float repr
        are both platform-stable). That invariant is what the trace
        content hash asserts.
        """
        from repro.data import make_dataset
        from repro.scenarios.trace import Trace

        n = int(self.n if n is None else n)
        seed = int(seed)
        points = make_dataset(self.dataset, n=n, seed=seed)
        salt = sum(ord(c) for c in self.name)
        rng = np.random.default_rng([seed, salt])
        builder = get_arrival(self.arrival)
        workload, batch_plan = builder(points, rng=rng,
                                       n_snapshots=self.n_snapshots,
                                       **dict(self.params))
        return Trace(scenario=self.name, seed=seed, workload=workload,
                     batch_plan=batch_plan,
                     params={"dataset": self.dataset, "n": n,
                             "arrival": self.arrival, **dict(self.params)})


# ----------------------------------------------------------------------
# Arrival-pattern registry
# ----------------------------------------------------------------------

# A builder maps ``(points, *, rng, n_snapshots, **params)`` to
# ``(DynamicWorkload, batch_plan)`` where ``batch_plan`` is either None
# (replay one operation at a time) or a tuple of batch sizes summing to
# the number of operations.
ArrivalBuilder = Callable[..., tuple]

_ARRIVALS: dict[str, ArrivalBuilder] = {}


def arrival(name: str) -> Callable[[ArrivalBuilder], ArrivalBuilder]:
    """Decorator registering an arrival-pattern builder under ``name``."""
    def decorate(func: ArrivalBuilder) -> ArrivalBuilder:
        key = _normalize(name)
        existing = _ARRIVALS.get(key)
        if existing is not None and existing is not func:
            raise ValueError(f"arrival pattern {key!r} already registered")
        _ARRIVALS[key] = func
        return func
    return decorate


def get_arrival(name: str) -> ArrivalBuilder:
    """Resolve an arrival pattern by name (case-insensitive)."""
    _ensure_builtins()
    key = _normalize(name)
    try:
        return _ARRIVALS[key]
    except KeyError:
        raise UnknownArrivalError(name, sorted(_ARRIVALS)) from None


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------

_SCENARIOS: dict[str, Scenario] = {}
_builtins_loaded = False


def _normalize(name: str) -> str:
    return str(name).strip().lower()


def register_scenario(scenario: Scenario) -> Scenario:
    """Insert a scenario into the registry under its normalized name."""
    key = _normalize(scenario.name)
    scenario = replace(scenario, name=key)
    existing = _SCENARIOS.get(key)
    if existing is not None:
        raise ValueError(f"scenario {key!r} is already registered")
    _SCENARIOS[key] = scenario
    return scenario


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        import repro.scenarios.builtins  # noqa: F401  (registers built-ins)
        _builtins_loaded = True


def get_scenario(name: str) -> Scenario:
    """Resolve ``name`` to a registered scenario (case-insensitive)."""
    _ensure_builtins()
    key = _normalize(name)
    try:
        return _SCENARIOS[key]
    except KeyError:
        raise UnknownScenarioError(name, scenario_names()) from None


def list_scenarios() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    _ensure_builtins()
    return sorted(_SCENARIOS.values(), key=lambda s: s.name)


def scenario_names() -> list[str]:
    """Sorted names of all registered scenarios."""
    _ensure_builtins()
    return sorted(_SCENARIOS)
