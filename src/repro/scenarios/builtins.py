"""The built-in scenario catalogue and its arrival patterns.

Ten workload shapes ship with the library, spanning the paper's own
protocol and the dynamic regimes the ROADMAP asks for:

=======================  ===============================================
``paper``                §IV-A: 50% initial, 50% inserted, then 50%
                         deleted
``sliding-window``       fixed-size window, every arrival evicts the
                         oldest
``insert-burst``         insert-only growth arriving in variable bursts
``delete-heavy``         decaying database: deletions dominate
                         insertions
``clustered-drift``      inserts drawn from clusters whose centers
                         drift, FIFO eviction keeps the database moving
                         through space
``skyline-churn``        adversarial: near-corner dominators appear and
                         vanish again, churning the skyline's apex on
                         nearly every operation
``mixed-batch``          50/50 churn applied as a mix of single
                         operations and batches (exercises
                         ``apply_batch`` mid-stream)
``overload-flashcrowd``  singleton trickle punctuated by giant bursts —
                         the supervised runtime's overload/shedding
                         workload
``chaos-churn``          delete-leaning churn in steady mid-size
                         batches — the runtime fault-injection workload
``overload-multitenant`` singleton-heavy churn sized for the network
                         service's admission coalescing — the
                         ``repro serve`` / ``serve-load`` workload
=======================  ===============================================

Each is a :class:`~repro.scenarios.spec.Scenario` instance binding an
arrival pattern to a dataset and parameters; compile any of them with
``get_scenario(name).compile(seed=..., n=...)``.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import DELETE, INSERT, Operation
from repro.data.workload import (
    DynamicWorkload,
    _snapshot_marks,
    make_paper_workload,
    make_skewed_workload,
    make_sliding_window_workload,
)
from repro.scenarios.spec import Scenario, arrival, register_scenario

# ----------------------------------------------------------------------
# Arrival patterns
# ----------------------------------------------------------------------


@arrival("paper")
def paper_arrival(points, *, rng, n_snapshots, initial_fraction=0.5,
                  delete_fraction=0.5):
    """The paper's fully-dynamic protocol (§IV-A)."""
    workload = make_paper_workload(points, seed=rng,
                                   initial_fraction=initial_fraction,
                                   delete_fraction=delete_fraction,
                                   n_snapshots=n_snapshots)
    return workload, None


@arrival("sliding-window")
def sliding_window_arrival(points, *, rng, n_snapshots,
                           window_fraction=0.25):
    """Fixed-size window over the stream: insert + evict-oldest pairs."""
    n = points.shape[0]
    window = max(1, min(n - 1, int(round(n * window_fraction))))
    workload = make_sliding_window_workload(points, window=window,
                                            n_snapshots=n_snapshots)
    return workload, None


@arrival("burst-inserts")
def burst_inserts_arrival(points, *, rng, n_snapshots,
                          initial_fraction=0.1, burst_min=8, burst_max=96):
    """Insert-only growth: the stream arrives in variable-size bursts.

    The batch plan records the burst boundaries, so replay feeds each
    burst to ``Session.apply_batch`` as one slice — the shape that the
    batched insert pipeline (one GEMM per run) is built for.
    """
    n = points.shape[0]
    n0 = max(1, int(round(n * initial_fraction)))
    ops = [Operation(INSERT, points[row].copy(), tuple_id=row)
           for row in range(n0, n)]
    plan: list[int] = []
    remaining = len(ops)
    while remaining > 0:
        size = int(rng.integers(burst_min, burst_max + 1))
        size = min(size, remaining)
        plan.append(size)
        remaining -= size
    workload = DynamicWorkload(initial=points[:n0].copy(), operations=ops,
                               snapshots=_snapshot_marks(len(ops),
                                                         n_snapshots))
    return workload, tuple(plan)


@arrival("skewed")
def skewed_arrival(points, *, rng, n_snapshots, insert_fraction=0.5,
                   ops_per_tuple=1.0, initial_fraction=0.5):
    """Churn with a controlled insert/delete mix (uniform victims)."""
    n_operations = max(1, int(round(points.shape[0] * ops_per_tuple)))
    workload = make_skewed_workload(points,
                                    insert_fraction=insert_fraction,
                                    n_operations=n_operations,
                                    initial_fraction=initial_fraction,
                                    n_snapshots=n_snapshots, seed=rng)
    return workload, None


@arrival("clustered-drift")
def clustered_drift_arrival(points, *, rng, n_snapshots,
                            initial_fraction=0.3, ops_per_tuple=1.2,
                            clusters=4, spread=0.15):
    """Inserts from drifting clusters with FIFO eviction.

    Cluster centers start at random interior positions and move along
    straight lines (reflected at the ``[0.1, 0.9]`` walls) as the stream
    progresses; each inserted point is a dataset row shrunk around the
    current center of a random cluster. Every insert evicts the oldest
    alive tuple, so the database itself migrates through value space —
    the concept-drift regime of IoT/sensor fleets.
    """
    n, d = points.shape
    n0 = max(1, int(round(n * initial_fraction)))
    n_ops = max(2, int(round(n * ops_per_tuple)))
    n_pairs = n_ops // 2
    centers = 0.2 + 0.6 * rng.random((clusters, d))
    velocity = rng.normal(0.0, 1.0, size=(clusters, d))
    velocity /= np.maximum(np.linalg.norm(velocity, axis=1, keepdims=True),
                           1e-12)
    ops: list[Operation] = []
    next_id = n0
    oldest = 0
    for step in range(n_pairs):
        c = int(rng.integers(clusters))
        # Reflect the drifted center back into [0.1, 0.9].
        pos = centers[c] + velocity[c] * (0.8 * step / max(1, n_pairs))
        pos = 0.1 + np.abs((pos - 0.1) % 1.6)
        pos = np.where(pos > 0.9, 1.8 - pos, pos)
        row = points[int(rng.integers(n))]
        point = np.clip(pos + spread * (row - 0.5), 0.0, 1.0)
        ops.append(Operation(INSERT, point, tuple_id=next_id))
        next_id += 1
        if oldest < n0:
            victim_point = points[oldest].copy()
        else:
            victim_point = ops[2 * (oldest - n0)].point
        ops.append(Operation(DELETE, victim_point, tuple_id=oldest))
        oldest += 1
    workload = DynamicWorkload(initial=points[:n0].copy(), operations=ops,
                               snapshots=_snapshot_marks(len(ops),
                                                         n_snapshots))
    return workload, None


@arrival("skyline-churn")
def skyline_churn_arrival(points, *, rng, n_snapshots,
                          initial_fraction=0.5, ops_per_tuple=1.0,
                          lag=8, eps0=0.05):
    """Adversarial churn at the skyline's apex.

    Each round inserts a fresh dominator just below the unit corner —
    within ``eps`` of ``(1, ..., 1)`` with ``eps`` shrinking
    harmonically, so every insert dominates the dataset's top region
    and most earlier dominators (strict pairwise domination of *all*
    predecessors would need ``eps`` to halve each round, which exhausts
    float64 resolution near 1.0 within ~50 rounds). ``lag`` rounds
    later that point is deleted again, forcing the skyline and every
    top-k structure to recover. Nearly every operation touches the
    skyline's apex — the worst case for recompute-style baselines.
    """
    n, d = points.shape
    n0 = max(1, int(round(n * initial_fraction)))
    n_ops = max(2, int(round(n * ops_per_tuple)))
    ops: list[Operation] = []
    pending: list[int] = []
    pending_points: dict[int, np.ndarray] = {}
    next_id = n0
    round_no = 0
    while len(ops) < n_ops:
        if pending and (len(pending) > lag
                        or len(ops) == n_ops - len(pending)):
            victim = pending.pop(0)
            ops.append(Operation(DELETE, pending_points.pop(victim),
                                 tuple_id=victim))
            continue
        eps = eps0 / (1.0 + round_no)
        mix = rng.random(d)
        point = 1.0 - eps * (0.5 + 0.5 * mix)
        ops.append(Operation(INSERT, point, tuple_id=next_id))
        pending.append(next_id)
        pending_points[next_id] = point
        next_id += 1
        round_no += 1
    workload = DynamicWorkload(initial=points[:n0].copy(), operations=ops,
                               snapshots=_snapshot_marks(len(ops),
                                                         n_snapshots))
    return workload, None


@arrival("mixed-batch")
def mixed_batch_arrival(points, *, rng, n_snapshots, insert_fraction=0.5,
                        ops_per_tuple=1.0, initial_fraction=0.5,
                        single_prob=0.5, max_batch=64):
    """50/50 churn delivered as a mix of single ops and batches."""
    workload, _ = skewed_arrival(points, rng=rng, n_snapshots=n_snapshots,
                                 insert_fraction=insert_fraction,
                                 ops_per_tuple=ops_per_tuple,
                                 initial_fraction=initial_fraction)
    plan: list[int] = []
    remaining = workload.n_operations
    while remaining > 0:
        if rng.random() < single_prob:
            size = 1
        else:
            size = int(rng.integers(2, max_batch + 1))
        plan.append(min(size, remaining))
        remaining -= plan[-1]
    return workload, tuple(plan)


@arrival("flash-crowd")
def flash_crowd_arrival(points, *, rng, n_snapshots, insert_fraction=0.6,
                        ops_per_tuple=1.5, initial_fraction=0.4,
                        trickle=32, burst_fraction=0.15):
    """Steady trickle of single ops punctuated by giant arrival bursts.

    The operation stream itself is plain skewed churn; the batch plan
    is the point: long runs of singleton arrivals, then one burst
    carrying ``burst_fraction`` of the whole stream at once. Replayed
    through the supervised runtime this is the overload shape — a
    burst lands faster than any pump budget can drain it, so deadline
    reads right after it *must* shed to stale views instead of
    blocking (the SLO the chaos-smoke CI leg asserts).
    """
    workload, _ = skewed_arrival(points, rng=rng, n_snapshots=n_snapshots,
                                 insert_fraction=insert_fraction,
                                 ops_per_tuple=ops_per_tuple,
                                 initial_fraction=initial_fraction)
    total = workload.n_operations
    burst = max(2, int(round(total * burst_fraction)))
    plan: list[int] = []
    remaining = total
    while remaining > 0:
        take = min(int(trickle), remaining)
        plan.extend([1] * take)
        remaining -= take
        if remaining > 0:
            size = min(burst, remaining)
            plan.append(size)
            remaining -= size
    return workload, tuple(plan)


@arrival("churn-batches")
def churn_batches_arrival(points, *, rng, n_snapshots,
                          insert_fraction=0.45, ops_per_tuple=1.2,
                          initial_fraction=0.5, batch_min=16,
                          batch_max=48):
    """Delete-leaning churn in steady mid-size batches.

    Designed as the chaos-injection workload: every wave mixes inserts
    and deletes (so transient faults, pool kills, and retries hit both
    engine pipelines), and batch sizes stay in the range where the
    supervisor's cost model actually splits and coalesces waves.
    """
    workload, _ = skewed_arrival(points, rng=rng, n_snapshots=n_snapshots,
                                 insert_fraction=insert_fraction,
                                 ops_per_tuple=ops_per_tuple,
                                 initial_fraction=initial_fraction)
    plan: list[int] = []
    remaining = workload.n_operations
    while remaining > 0:
        size = int(rng.integers(batch_min, batch_max + 1))
        plan.append(min(size, remaining))
        remaining -= plan[-1]
    return workload, tuple(plan)


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------

BUILTIN_SCENARIOS = tuple(register_scenario(s) for s in (
    Scenario(
        name="paper",
        summary="the paper's §IV-A protocol: 50% initial, 50% inserted, "
                "then 50% of all tuples deleted",
        dataset="Indep", n=2000, arrival="paper",
    ),
    Scenario(
        name="sliding-window",
        summary="fixed-size window over a sensor stream; every arrival "
                "evicts the oldest tuple (maximal steady churn)",
        dataset="AQ", n=2000, arrival="sliding-window",
        params={"window_fraction": 0.25},
    ),
    Scenario(
        name="insert-burst",
        summary="insert-only onboarding burst: the database grows 10x "
                "in variable-size batched bursts",
        dataset="BB", n=2000, arrival="burst-inserts",
        params={"initial_fraction": 0.1, "burst_min": 8, "burst_max": 96},
    ),
    Scenario(
        name="delete-heavy",
        summary="decaying catalog: 85% deletions shrink the database "
                "toward its skyline",
        dataset="Movie", n=2000, arrival="skewed",
        params={"insert_fraction": 0.15, "ops_per_tuple": 0.8,
                "initial_fraction": 0.7},
    ),
    Scenario(
        name="clustered-drift",
        summary="concept drift: inserts from drifting clusters with "
                "FIFO eviction migrate the database through value space",
        dataset="Indep", n=2000, arrival="clustered-drift",
        params={"initial_fraction": 0.3, "ops_per_tuple": 1.2,
                "clusters": 4, "spread": 0.15},
    ),
    Scenario(
        name="skyline-churn",
        summary="adversarial: near-corner dominators appear and vanish, "
                "churning the skyline's apex on nearly every op",
        dataset="AntiCor", n=2000, arrival="skyline-churn",
        params={"initial_fraction": 0.5, "ops_per_tuple": 1.0, "lag": 8},
    ),
    Scenario(
        name="mixed-batch",
        summary="50/50 churn delivered as a mix of single operations "
                "and batches up to 64 ops (exercises apply_batch)",
        dataset="Indep", n=2000, arrival="mixed-batch",
        params={"single_prob": 0.5, "max_batch": 64},
    ),
    Scenario(
        name="overload-flashcrowd",
        summary="flash-crowd overload: singleton trickle punctuated by "
                "bursts of 15% of the stream; supervised replay must "
                "shed reads to stale views, never block",
        dataset="Indep", n=2000, arrival="flash-crowd",
        params={"insert_fraction": 0.6, "ops_per_tuple": 1.5,
                "initial_fraction": 0.4, "trickle": 32,
                "burst_fraction": 0.15},
        service={"max_wave": 64, "wave_budget_s": 0.002,
                 "pump_budget_s": 0.004, "read_deadline_s": 0.002,
                 "queue_limit": 2048, "read_every": 1, "tenants": 4},
    ),
    Scenario(
        name="chaos-churn",
        summary="delete-leaning churn in steady 16-48 op batches; the "
                "fault-injection workload (digest parity under chaos)",
        dataset="AntiCor", n=2000, arrival="churn-batches",
        params={"insert_fraction": 0.45, "ops_per_tuple": 1.2,
                "initial_fraction": 0.5, "batch_min": 16,
                "batch_max": 48},
        service={"max_wave": 32, "checkpoint_every_ops": 256,
                 "read_every": 4, "tenants": 2},
    ),
    Scenario(
        name="overload-multitenant",
        summary="singleton-heavy churn for the network service: mostly "
                "single-op requests the admission layer must coalesce "
                "into waves, with small batches mixed in",
        dataset="AQ", n=2000, arrival="mixed-batch",
        params={"insert_fraction": 0.55, "ops_per_tuple": 1.0,
                "initial_fraction": 0.5, "single_prob": 0.8,
                "max_batch": 16},
        service={"max_wave": 32, "wave_budget_s": 0.002,
                 "pump_budget_s": 0.004, "read_deadline_s": 0.002,
                 "read_every": 2, "tenants": 2},
    ),
))
