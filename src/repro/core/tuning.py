"""Parameter tuning for FD-RMS (the §III-C protocol).

The paper sets ε per query by trial and error: "by setting ε to the one
that is slightly lower than ε_{k,r} [the optimal regret, whose upper
bound can be inferred from practical results], FD-RMS performs better in
terms of both efficiency and solution quality". :func:`suggest_epsilon`
automates exactly that: estimate ``ε*_{k,r}`` with one cheap sampled
greedy run on (a sample of) the data, then return a fixed fraction of
it. The Fig. 5 sweep (``benchmarks/bench_fig5_epsilon.py``) shows the
resulting operating point sits on the flat part of the quality curve.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_star import greedy_star
from repro.core.regret import max_k_regret_ratio_sampled
from repro.utils import as_point_matrix, check_k, resolve_rng


def suggest_epsilon(points, k: int, r: int, *, fraction: float = 0.6,
                    floor: float = 1e-4, cap: float = 0.2,
                    n_samples: int = 3_000, max_points: int = 4_000,
                    seed=None) -> float:
    """Data-driven ε for :class:`repro.core.FDRMS`.

    Estimates the optimal regret ``ε*_{k,r}`` with a sampled greedy
    selection (GREEDY* degenerates to sampled GREEDY at k = 1) and
    returns ``fraction`` of the estimate, clamped to ``[floor, cap]``.

    Parameters
    ----------
    points : (n, d) array
        The (initial) database; subsampled to ``max_points`` rows for
        the estimate.
    k, r : int
        The query parameters.
    fraction : float
        How far below the estimate to operate (paper: "slightly lower").
    """
    pts = as_point_matrix(points)
    check_k(k)
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = resolve_rng(seed)
    if pts.shape[0] > max_points:
        rows = rng.choice(pts.shape[0], size=max_points, replace=False)
        pts = pts[rows]
    if r >= pts.shape[0]:
        return floor
    idx = greedy_star(pts, r, k=k, n_samples=n_samples, seed=rng)
    estimate = max_k_regret_ratio_sampled(pts, pts[idx], k,
                                          n_samples=n_samples, seed=rng)
    return float(np.clip(fraction * estimate, floor, cap))
