"""The paper's contribution: FD-RMS and its dynamic set-cover machinery."""

from repro.core.topk import (
    SCORE_TOL,
    ApproxTopKIndex,
    DeltaLog,
    MemberStore,
    MembershipDelta,
)
from repro.core.set_cover import StableSetCover, greedy_cover_size
from repro.core.fdrms import FDRMS
from repro.core.regret import (
    cached_test_utilities,
    k_regret_ratio,
    max_k_regret_ratio_sampled,
    max_regret_ratio_lp,
    RegretEvaluator,
)
from repro.core.minsize import min_size_curve, min_size_rms
from repro.core.tuning import suggest_epsilon

__all__ = [
    "SCORE_TOL",
    "ApproxTopKIndex",
    "DeltaLog",
    "MemberStore",
    "MembershipDelta",
    "StableSetCover",
    "greedy_cover_size",
    "FDRMS",
    "cached_test_utilities",
    "k_regret_ratio",
    "max_k_regret_ratio_sampled",
    "max_regret_ratio_lp",
    "RegretEvaluator",
    "min_size_rms",
    "min_size_curve",
    "suggest_epsilon",
]
