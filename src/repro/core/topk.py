"""Maintenance of ε-approximate top-k sets ``Φ_{k,ε}(u_i, P_t)``.

For each sampled utility ``u_i``, FD-RMS tracks the set of tuples whose
score is at least ``τ_i = (1 - ε) · ω_k(u_i, P_t)`` (§II-A). This module
keeps those sets current across tuple insertions and deletions using the
dual-tree of §III-C:

* the **k-d tree** (tuple index) answers exact top-k and score-range
  queries against the live database;
* the **cone tree** (utility index) finds, for an inserted tuple, the
  utilities whose threshold the tuple reaches — all others are untouched.

Membership invariant, for every utility ``i`` and time ``t``::

    members[i] = { p alive : <u_i, p> >= τ_i },  τ_i = (1-ε)·ω_k(u_i, P_t)

with the convention ``τ_i = 0`` while the database holds at most ``k``
tuples (then everything is a top-k tuple).

Each update returns the exact list of membership changes it caused
(:class:`MembershipDelta`), which FD-RMS feeds to the dynamic set-cover
layer as the set operations ``σ`` of Algorithm 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.data.database import Database
from repro.index.conetree import ConeTree
from repro.index.kdtree import KDTree
from repro.utils import check_epsilon, check_k

ADD = "+"
REMOVE = "-"


def _default_index_factory(ids, points, d: int) -> KDTree:
    """The default tuple index: a k-d tree (possibly empty)."""
    if len(ids) == 0:
        return KDTree(d)
    return KDTree.build(ids, points)


@dataclass(frozen=True)
class MembershipDelta:
    """One change of ``Φ_{k,ε}(u, P)``: tuple ``pid`` joined/left set ``u``."""

    u_index: int
    tuple_id: int
    kind: str  # ADD or REMOVE


class _MemberList:
    """Sorted container of (score, tuple_id) pairs for one utility.

    Ascending by (score, id); supports O(log s) insert/remove, O(1)
    k-th-largest lookup, and bulk eviction of the low-score prefix.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, tuple_id: int) -> bool:
        return any(tid == tuple_id for _, tid in self.entries)

    def add(self, score: float, tuple_id: int) -> None:
        bisect.insort(self.entries, (score, tuple_id))

    def remove(self, score: float, tuple_id: int) -> None:
        idx = bisect.bisect_left(self.entries, (score, tuple_id))
        if idx >= len(self.entries) or self.entries[idx] != (score, tuple_id):
            raise KeyError(f"({score}, {tuple_id}) not in member list")
        del self.entries[idx]

    def kth_largest(self, k: int) -> float:
        """Score of the k-th best member (requires ``len >= k``)."""
        return self.entries[-k][0]

    def evict_below(self, threshold: float) -> list[tuple[float, int]]:
        """Drop and return all entries with score < threshold."""
        idx = bisect.bisect_left(self.entries, (threshold, -1))
        evicted = self.entries[:idx]
        del self.entries[:idx]
        return evicted

    def ids(self) -> list[int]:
        return [tid for _, tid in self.entries]


class ApproxTopKIndex:
    """Maintains ``Φ_{k,ε}(u_i, P_t)`` for a pool of ``M`` utilities.

    Parameters
    ----------
    db : Database
        The dynamic database; updates must be applied to ``db`` *through*
        :meth:`insert` / :meth:`delete` of this index (it forwards them),
        or applied first and then notified — see the two methods.
    utilities : (M, d) array
        Unit utility vectors; the pool is fixed for the index lifetime.
    k : int
        Rank parameter of the k-RMS query.
    eps : float
        Approximation factor ε of the top-k sets.
    index_factory : callable(ids, points, d) -> tuple index, optional
        Builds the tuple index TI. The default is the k-d tree; §III-C
        allows any space-partitioning index with the same interface
        (``insert`` / ``delete`` / ``top_k`` / ``range_query``), e.g.
        :class:`repro.index.quadtree.QuadTree`.
    """

    def __init__(self, db: Database, utilities, k: int, eps: float, *,
                 index_factory=None) -> None:
        self._db = db
        self._u = np.ascontiguousarray(utilities, dtype=np.float64)
        if self._u.ndim != 2 or self._u.shape[1] != db.d:
            raise ValueError("utilities must be (M, d) with d matching the database")
        self._m_total = self._u.shape[0]
        self._k = check_k(k)
        self._eps = check_epsilon(eps)
        self._members: list[_MemberList] = [_MemberList() for _ in range(self._m_total)]
        self._inverted: dict[int, set[int]] = {}
        ids, pts = db.snapshot()
        if index_factory is None:
            index_factory = _default_index_factory
        self._kdtree = index_factory(ids, pts, db.d)
        self._cone = ConeTree(self._u)
        self._bootstrap(ids, pts)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def pool_size(self) -> int:
        """Number of utility vectors in the pool (M)."""
        return self._m_total

    def utility(self, idx: int) -> np.ndarray:
        return self._u[idx].copy()

    def members_of(self, u_index: int) -> list[int]:
        """Tuple ids currently in ``Φ_{k,ε}(u_index, P_t)``."""
        return self._members[u_index].ids()

    def sets_containing(self, tuple_id: int) -> frozenset[int]:
        """``S(p)``: utility indices whose approximate top-k holds ``tuple_id``."""
        return frozenset(self._inverted.get(tuple_id, frozenset()))

    def threshold(self, u_index: int) -> float:
        """Current ``τ_i`` of utility ``u_index``."""
        return self._cone.threshold(u_index)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point) -> tuple[int, list[MembershipDelta]]:
        """Insert ``point`` into the database; maintain all top-k sets.

        Returns the new tuple id and the membership deltas (the new tuple
        joining sets, plus any tuples evicted when thresholds rose).
        """
        pid = self._db.insert(point)
        vec = self._db.point(pid)
        self._kdtree.insert(pid, vec)
        deltas: list[MembershipDelta] = []
        n = len(self._db)
        if n <= self._k:
            # Everything is a top-k tuple: the new point joins every set
            # and all thresholds stay at 0.
            for i in range(self._m_total):
                self._add_member(i, float(self._u[i] @ vec), pid, deltas)
            return pid, deltas
        if n == self._k + 1:
            # The database just outgrew k: thresholds become meaningful
            # for the first time; initialize them for every utility.
            for i in range(self._m_total):
                self._add_member(i, float(self._u[i] @ vec), pid, deltas)
                self._refresh_threshold(i, deltas)
            return pid, deltas
        for i in self._cone.reached_by(vec):
            self._add_member(i, float(self._u[i] @ vec), pid, deltas)
            self._refresh_threshold(i, deltas)
        return pid, deltas

    def delete(self, tuple_id: int) -> list[MembershipDelta]:
        """Delete ``tuple_id`` from the database; maintain all top-k sets.

        Only utilities whose approximate top-k holds the tuple are
        touched (found via the inverted index ``S(p)``). When the tuple
        was among the exact top-k of a utility, the k-d tree recomputes
        ``ω_k`` and a range query rebuilds the member set.
        """
        vec = self._db.delete(tuple_id)
        self._kdtree.delete(tuple_id)
        affected = sorted(self._inverted.get(tuple_id, frozenset()))
        deltas: list[MembershipDelta] = []
        for i in affected:
            score = float(self._u[i] @ vec)
            was_topk = len(self._db) < self._k or score >= self._kth_member_score(i)
            self._remove_member(i, score, tuple_id, deltas)
            if was_topk:
                self._rebuild_utility(i, deltas)
        return deltas

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bootstrap(self, ids: np.ndarray, pts: np.ndarray) -> None:
        """Vectorized initial computation of every ``Φ_{k,ε}``."""
        n = ids.shape[0]
        if n == 0:
            for i in range(self._m_total):
                self._cone.activate(i, 0.0)
            return
        chunk = max(1, int(4_000_000 // max(1, n)))
        for start in range(0, self._m_total, chunk):
            block = self._u[start:start + chunk]
            scores = pts @ block.T  # (n, b)
            if n <= self._k:
                taus = np.zeros(block.shape[0])
            else:
                kth = np.partition(scores, n - self._k, axis=0)[n - self._k]
                taus = (1.0 - self._eps) * kth
            for col in range(block.shape[0]):
                i = start + col
                tau = float(taus[col])
                hit = np.flatnonzero(scores[:, col] >= tau)
                mlist = self._members[i]
                for row in hit:
                    pid = int(ids[row])
                    mlist.add(float(scores[row, col]), pid)
                    self._inverted.setdefault(pid, set()).add(i)
                self._cone.activate(i, tau)

    def _kth_member_score(self, i: int) -> float:
        """``ω_k(u_i, P)`` read off the member list (members ⊇ top-k)."""
        mlist = self._members[i]
        if len(mlist) < self._k:
            # Member list smaller than k can only happen while n < k,
            # where τ = 0 and members = all tuples.
            return mlist.entries[0][0] if mlist.entries else 0.0
        return mlist.kth_largest(self._k)

    def _add_member(self, i: int, score: float, pid: int,
                    deltas: list[MembershipDelta]) -> None:
        self._members[i].add(score, pid)
        self._inverted.setdefault(pid, set()).add(i)
        deltas.append(MembershipDelta(i, pid, ADD))

    def _remove_member(self, i: int, score: float, pid: int,
                       deltas: list[MembershipDelta]) -> None:
        self._members[i].remove(score, pid)
        owners = self._inverted.get(pid)
        if owners is not None:
            owners.discard(i)
            if not owners:
                del self._inverted[pid]
        deltas.append(MembershipDelta(i, pid, REMOVE))

    def _refresh_threshold(self, i: int, deltas: list[MembershipDelta]) -> None:
        """Recompute ``τ_i`` from the member list and evict the fallen.

        Valid whenever the member list still contains the exact top-k
        (always true after additions; deletions of top-k tuples go
        through :meth:`_rebuild_utility` instead).
        """
        if len(self._db) <= self._k:
            tau = 0.0
        else:
            tau = (1.0 - self._eps) * self._kth_member_score(i)
        for score, pid in self._members[i].evict_below(tau):
            owners = self._inverted.get(pid)
            if owners is not None:
                owners.discard(i)
                if not owners:
                    del self._inverted[pid]
            deltas.append(MembershipDelta(i, pid, REMOVE))
        self._cone.set_threshold(i, tau)

    def _rebuild_utility(self, i: int, deltas: list[MembershipDelta]) -> None:
        """Recompute ``Φ_{k,ε}(u_i)`` from the k-d tree after a top-k loss."""
        u = self._u[i]
        n = len(self._db)
        if n == 0:
            for score, pid in list(self._members[i].entries):
                self._remove_member(i, score, pid, deltas)
            self._cone.set_threshold(i, 0.0)
            return
        if n <= self._k:
            tau = 0.0
        else:
            _, topk_scores = self._kdtree.top_k(u, self._k)
            tau = (1.0 - self._eps) * float(topk_scores[-1])
        current = {pid: score for score, pid in self._members[i].entries}
        ids, scores = self._kdtree.range_query(u, tau)
        fresh = {int(pid): float(s) for pid, s in zip(ids, scores)}
        for pid, score in current.items():
            if pid not in fresh:
                self._remove_member(i, score, pid, deltas)
        for pid, score in fresh.items():
            if pid not in current:
                self._add_member(i, score, pid, deltas)
        self._cone.set_threshold(i, tau)
