"""Maintenance of ε-approximate top-k sets ``Φ_{k,ε}(u_i, P_t)``.

For each sampled utility ``u_i``, FD-RMS tracks the set of tuples whose
score is at least ``τ_i = (1 - ε) · ω_k(u_i, P_t)`` (§II-A). This module
keeps those sets current across tuple insertions and deletions using the
dual-tree of §III-C:

* the **k-d tree** (tuple index) answers exact top-k and score-range
  queries against the live database;
* the **cone tree** (utility index) finds, for an inserted tuple, the
  utilities whose threshold the tuple reaches — all others are untouched.

Membership invariant, for every utility ``i`` and time ``t``::

    members[i] = { p alive : <u_i, p> >= τ_i },  τ_i = (1-ε)·ω_k(u_i, P_t)

with the convention ``τ_i = 0`` while the database holds at most ``k``
tuples (then everything is a top-k tuple).

Storage layout
--------------
Membership lives in a **structure-of-arrays** :class:`MemberStore`, not
per-utility Python containers: every utility keeps its members as a pair
of parallel NumPy arrays (tuple ids + admission scores, in arrival
order), the k largest member scores sit in one ``(M, k)`` matrix (so
``ω_k`` reads are O(1)), a per-utility running minimum makes "would this
threshold evict anything?" a single vectorized comparison, and the
inverted index ``S(p)`` is a pid-indexed table of utility-id arrays.
Membership changes are recorded into a :class:`DeltaLog` — parallel int
arrays — instead of per-change :class:`MembershipDelta` objects; the
object form is materialized only at the public API boundary.

Each update returns the exact list of membership changes it caused,
which FD-RMS feeds to the dynamic set-cover layer as the set operations
``σ`` of Algorithm 1. The recorded order is part of the engine contract
(the stable cover is history-dependent), so every path — vectorized
bootstrap, batched insert runs, deletions — emits deltas in exactly the
per-operation order of the original per-member implementation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro._types import AnyArray, FloatArray, IndexArray
from repro.data.database import INSERT, Database, iter_op_runs
from repro.index.conetree import ConeTree
from repro.index.kdtree import KDTree
from repro.parallel import blocks as _pblocks
from repro.parallel.backend import ExecutionBackend
from repro.parallel.compiled import eviction_positions, reached_utilities
from repro.utils import check_epsilon, check_k

ADD = "+"
REMOVE = "-"

#: Integer delta codes used by :class:`DeltaLog` (sign convention:
#: positive = member added, negative = member removed).
ADD_CODE = 1
REMOVE_CODE = -1

#: Score-threshold tolerance shared by membership updates and the audit
#: paths (``ApproxTopKIndex`` internals, ``FDRMS.verify``). Scores are
#: computed by different BLAS kernels along different code paths (bulk
#: GEMM at bootstrap, gathered mat-vec in tree queries, per-row dots in
#: single-op updates), which may disagree in the last ulp; comparisons
#: against a threshold therefore allow this absolute slack instead of
#: hardcoding ``1e-12`` at each site.
SCORE_TOL = 1e-12

_EMPTY_IDS = np.empty(0, dtype=np.intp)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)

#: Tuple-index staging threshold. Insertions never query the tuple
#: index, so freshly inserted points are *staged* and flushed into the
#: tree in bulk (one vectorized wave load) once this many accumulate —
#: or earlier, the moment a tree query is needed. Deletions are staged
#: symmetrically as *tombstones* and applied with one bulk
#: ``delete_many`` wave. Per-point descent costs then amortize even
#: when runs are short.
_STAGE_LIMIT = 512

#: Database size up to which top-k set repairs skip the tuple index
#: entirely: one gather of the alive points plus one ``(n × q)`` GEMM
#: across all q affected utilities replaces q tree descents. Above the
#: limit the tree's pruning wins and the per-utility query path is used.
_BRUTE_REPAIR_LIMIT = 16384

_MISSING = object()


def _default_index_factory(ids: IndexArray, points: FloatArray, d: int) -> KDTree:
    """The default tuple index: a k-d tree (possibly empty)."""
    if len(ids) == 0:
        return KDTree(d)
    return KDTree.build(ids, points)


def _sub_state(state: dict, prefix: str) -> dict:
    """Strip ``prefix`` from the keys of a composite state dict."""
    n = len(prefix)
    # reprolint: disable=RPL001 -- key relabeling; consumers read by name
    return {key[n:]: val for key, val in state.items()
            if key.startswith(prefix)}


@dataclass(frozen=True)
class MembershipDelta:
    """One change of ``Φ_{k,ε}(u, P)``: tuple ``pid`` joined/left set ``u``."""

    u_index: int
    tuple_id: int
    kind: str  # ADD or REMOVE


class DeltaLog:
    """Membership changes of one operation as parallel int arrays.

    Rows are ``(u_index, tuple_id, kind_code)`` in emission order; the
    hot consumers (the FD-RMS cover layer) read the raw columns, while
    :meth:`to_deltas` materializes :class:`MembershipDelta` objects for
    the public API.
    """

    __slots__ = ("_u", "_pid", "_kind", "_n")

    def __init__(self) -> None:
        # Columns are allocated lazily: many operations (weak inserts,
        # deletes of non-members) produce no deltas at all.
        self._u = _EMPTY_IDS
        self._pid = _EMPTY_IDS
        self._kind = np.empty(0, dtype=np.int8)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = self._u.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 16)
        for name in ("_u", "_pid", "_kind"):
            old = getattr(self, name)
            # reprolint: disable=RPL008 -- amortized doubling; O(log n) allocs
            fresh = np.empty(new_cap, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, name, fresh)

    def append(self, u: int, pid: int, kind: int) -> None:
        self._reserve(1)
        n = self._n
        self._u[n] = u
        self._pid[n] = pid
        self._kind[n] = kind
        self._n = n + 1

    def extend_one_pid(self, us: ArrayLike, pid: int, kind: int) -> None:
        """Record ``pid`` joining/leaving every utility in ``us`` (in order)."""
        us = np.asarray(us, dtype=np.intp)
        if us.size == 0:
            return
        self._reserve(us.size)
        n, e = self._n, self._n + us.size
        self._u[n:e] = us
        self._pid[n:e] = pid
        self._kind[n:e] = kind
        self._n = e

    def extend_one_utility(self, u: int, pids: ArrayLike, kind: int) -> None:
        """Record every tuple in ``pids`` (in order) joining/leaving ``u``."""
        pids = np.asarray(pids, dtype=np.intp)
        if pids.size == 0:
            return
        self._reserve(pids.size)
        n, e = self._n, self._n + pids.size
        self._u[n:e] = u
        self._pid[n:e] = pids
        self._kind[n:e] = kind
        self._n = e

    def columns(self) -> tuple[IndexArray, IndexArray, NDArray[np.int8]]:
        """``(u_index, tuple_id, kind_code)`` rows as trimmed views."""
        n = self._n
        return self._u[:n], self._pid[:n], self._kind[:n]

    def to_deltas(self) -> list[MembershipDelta]:
        """Materialize the log as :class:`MembershipDelta` objects."""
        u, pid, kind = self.columns()
        return [MembershipDelta(int(i), int(p), ADD if k > 0 else REMOVE)
                for i, p, k in zip(u.tolist(), pid.tolist(), kind.tolist())]


class MemberStore:
    """Structure-of-arrays store of every ``Φ_{k,ε}(u_i)`` plus ``S(p)``.

    Per utility ``i`` the members are two parallel arrays (ids and the
    scores they were admitted with) kept in **arrival order** with
    amortized-doubling growth; a member is always removed under the
    exact score it was stored with — re-deriving the score at removal
    time is fragile, because different BLAS kernels can disagree in the
    last ulp (see :data:`SCORE_TOL`). Two derived structures make the
    hot reads O(1):

    * ``(M, k)`` matrix of each utility's k largest member scores
      (ascending per row, ``-inf``-padded while a list holds fewer than
      ``k`` members) — :meth:`kth_largest` / :meth:`max_score` read it
      directly, and a whole batch of thresholds is one gather;
    * a per-utility running **minimum** member score, so "does threshold
      τ evict anything?" is one vectorized comparison instead of a scan.

    The inverted index ``S(p)`` is a pid-indexed table of utility-id
    arrays (pids are dense, never reused), with swap-removal — no
    per-tuple Python sets.
    """

    __slots__ = ("_k", "_m", "_row_ids", "_row_scores", "_row_len",
                 "_topk", "_min", "_inv_rows", "_inv_len")

    def __init__(self, m_total: int, k: int) -> None:
        self._m = int(m_total)
        self._k = int(k)
        self._row_ids: list[IndexArray] = [_EMPTY_IDS] * self._m
        self._row_scores: list[FloatArray] = [_EMPTY_SCORES] * self._m
        self._row_len = np.zeros(self._m, dtype=np.int64)
        self._topk = np.full((self._m, self._k), -np.inf)
        self._min = np.full(self._m, np.inf)
        self._inv_rows: list[IndexArray | None] = []
        self._inv_len: list[int] = []

    # -- member rows ---------------------------------------------------
    def size(self, i: int) -> int:
        return int(self._row_len[i])

    def row(self, i: int) -> tuple[IndexArray, FloatArray]:
        """``(ids, scores)`` of utility ``i`` in arrival order (views)."""
        n = int(self._row_len[i])
        return self._row_ids[i][:n], self._row_scores[i][:n]

    def members_sorted(self, i: int) -> list[int]:
        """Member ids ascending by (score, id) — the legacy list order."""
        ids, scores = self.row(i)
        if ids.size == 0:
            return []
        return ids[np.lexsort((ids, scores))].tolist()

    def score_of(self, i: int, pid: int) -> float:
        """The score ``pid`` was stored with in utility ``i``."""
        n = int(self._row_len[i])
        if n == 0:
            raise KeyError(f"tuple {pid} not in member list")
        match = self._row_ids[i][:n] == pid
        p = int(match.argmax())
        if not match[p]:
            raise KeyError(f"tuple {pid} not in member list")
        return float(self._row_scores[i][p])

    def kth_largest(self, i: int) -> float:
        """``ω_k(u_i, P)`` read off the member list (members ⊇ top-k).

        A member list smaller than ``k`` can only happen while the
        database holds fewer than ``k`` tuples (then τ = 0 and members =
        all tuples); the smallest stored score (0.0 when empty) is
        returned so threshold formulas degrade exactly as the reference
        implementation did.
        """
        if self._row_len[i] >= self._k:
            return float(self._topk[i, 0])
        if self._row_len[i] == 0:
            return 0.0
        return float(self._min[i])

    def max_score(self, i: int) -> float:
        """Largest stored member score of utility ``i`` (0.0 if empty)."""
        if self._row_len[i] == 0:
            return 0.0
        return float(self._topk[i, self._k - 1])

    def kth_vector(self, idxs: IndexArray) -> FloatArray:
        """Vectorized :meth:`kth_largest` for full rows (len >= k)."""
        return self._topk[idxs, 0]

    def min_vector(self, idxs: IndexArray) -> FloatArray:
        """Smallest stored member score per utility in ``idxs``."""
        return self._min[idxs]

    # -- mutation ------------------------------------------------------
    def _append(self, i: int, pid: int, score: float) -> None:
        n = int(self._row_len[i])
        ids = self._row_ids[i]
        if n == ids.shape[0]:
            cap = max(4, 2 * n)
            grown = np.empty(cap, dtype=np.intp)
            grown[:n] = ids
            ids = self._row_ids[i] = grown
            grown_s = np.empty(cap, dtype=np.float64)
            grown_s[:n] = self._row_scores[i][:n]
            self._row_scores[i] = grown_s
        ids[n] = pid
        self._row_scores[i][n] = score
        self._row_len[i] = n + 1

    def _topk_absorb(self, idxs: IndexArray, scores: FloatArray) -> None:
        """Fold one new score per row into the top-k score matrix."""
        if self._k == 1:
            self._topk[idxs, 0] = np.maximum(self._topk[idxs, 0], scores)
        else:
            cat = np.column_stack([self._topk[idxs], scores])
            cat.sort(axis=1)
            self._topk[idxs] = cat[:, 1:]

    def add_one(self, i: int, score: float, pid: int) -> None:
        """Add one member to one utility (inverted index included)."""
        self._append(i, pid, score)
        row = self._topk[i]
        if score > row[0]:
            row = np.append(row, score)
            row.sort()
            self._topk[i] = row[1:]
        if score < self._min[i]:
            self._min[i] = score
        self.add_owner(pid, i)

    def add_members(self, idxs: IndexArray, scores: FloatArray,
                    pid: int) -> None:
        """Fresh tuple ``pid`` joins every utility in ``idxs`` at once.

        ``pid`` must be new to the store (tuple ids are never reused),
        so its inverted row is exactly ``idxs``.
        """
        for i, s in zip(idxs.tolist(), scores.tolist()):
            self._append(i, pid, s)
        self._topk_absorb(idxs, scores)
        self._min[idxs] = np.minimum(self._min[idxs], scores)
        self._ensure_pid(pid)
        self._inv_rows[pid] = np.array(idxs, dtype=np.intp)
        self._inv_len[pid] = int(idxs.size)

    def remove(self, i: int, pid: int, *, drop_owner: bool = True) -> float:
        """Remove ``pid`` from utility ``i``; returns its stored score.

        Arrival order of the remaining members is preserved. The top-k
        score matrix is repaired only when the removed score could sit
        in it (a member strictly below ``ω_k`` cannot); in the engine
        that case is always followed by :meth:`replace_row`, so the
        repair is effectively free on the hot path. A caller about to
        discard the whole inverted row of ``pid`` anyway (tuple
        deletion) passes ``drop_owner=False`` and calls
        :meth:`clear_owners` once instead.
        """
        n = int(self._row_len[i])
        if n == 0:
            raise KeyError(f"tuple {pid} not in member list")
        ids = self._row_ids[i]
        match = ids[:n] == pid
        p = int(match.argmax())
        if not match[p]:
            raise KeyError(f"tuple {pid} not in member list")
        scores = self._row_scores[i]
        score = float(scores[p])
        ids[p:n - 1] = ids[p + 1:n]
        scores[p:n - 1] = scores[p + 1:n]
        self._row_len[i] = n - 1
        if n == 1:
            self._min[i] = np.inf
        # reprolint: disable=RPL002 -- exact identity with the cached stored min
        elif score == self._min[i]:
            self._min[i] = scores[:n - 1].min()
        if score >= self._topk[i, 0]:
            self._recompute_topk(i)
        if drop_owner:
            self.remove_owner(pid, i)
        return score

    def evict_below(self, i: int, tau: float) -> tuple[IndexArray, FloatArray]:
        """Drop all members of ``i`` with score < ``tau``.

        Returns the evicted ``(scores, ids)`` ascending by (score, id) —
        the emission order of the legacy sorted member list. The
        inverted index is *not* touched; the caller interleaves owner
        removal with delta recording.
        """
        n = int(self._row_len[i])
        ids, scores = self._row_ids[i][:n], self._row_scores[i][:n]
        evict = scores < tau
        if not evict.any():
            return _EMPTY_SCORES, _EMPTY_IDS
        ev_ids, ev_scores = ids[evict], scores[evict]
        order = np.lexsort((ev_ids, ev_scores))
        keep_ids, keep_scores = ids[~evict], scores[~evict]
        m = keep_ids.size
        self._row_ids[i][:m] = keep_ids
        self._row_scores[i][:m] = keep_scores
        self._row_len[i] = m
        self._min[i] = keep_scores.min() if m else np.inf
        if ev_scores.max() >= self._topk[i, 0]:
            # Unreachable through the engine (τ never exceeds ω_k, so
            # top-k members survive eviction), but keeps the store
            # self-consistent for arbitrary thresholds.
            self._recompute_topk(i)
        return ev_scores[order], ev_ids[order]

    def replace_row(self, i: int, ids: IndexArray, scores: FloatArray) -> None:
        """Install a fresh member row (arrival order = array order).

        Recomputes the derived top-k scores and minimum; the inverted
        index is the caller's responsibility (it knows the exact
        add/remove sets).
        """
        n = ids.shape[0]
        self._row_ids[i] = np.array(ids, dtype=np.intp)
        self._row_scores[i] = np.array(scores, dtype=np.float64)
        self._row_len[i] = n
        self._recompute_topk(i)
        self._min[i] = scores.min() if n else np.inf

    def _recompute_topk(self, i: int) -> None:
        """Rebuild row ``i`` of the top-k score matrix from its members."""
        n = int(self._row_len[i])
        scores = self._row_scores[i][:n]
        k = self._k
        row = np.full(k, -np.inf)
        if n > k:
            row[:] = np.partition(scores, n - k)[n - k:]
            row.sort()
        elif n:
            row[k - n:] = np.sort(scores)
        self._topk[i] = row

    def set_row_bootstrap(self, i: int, ids: IndexArray, scores: FloatArray,
                          topk_row: FloatArray, min_score: float) -> None:
        """Bootstrap fill of one utility with precomputed derived state.

        ``ids``/``scores`` may be views into a shared extraction buffer;
        rows are disjoint slices, so later in-place compaction cannot
        alias, and the first append reallocates into owned storage.
        """
        self._row_ids[i] = ids
        self._row_scores[i] = scores
        self._row_len[i] = ids.shape[0]
        self._topk[i] = topk_row
        self._min[i] = min_score

    # -- inverted index ------------------------------------------------
    def _ensure_pid(self, pid: int) -> None:
        if pid >= len(self._inv_rows):
            grow = pid + 1 - len(self._inv_rows)
            self._inv_rows.extend([None] * grow)
            self._inv_len.extend([0] * grow)

    def set_inverted_bootstrap(self, pids: IndexArray, starts: AnyArray,
                               ends: AnyArray, owners: IndexArray) -> None:
        """Bulk-install ``S(p)`` rows as slices of one owner array."""
        if pids.size == 0:
            return
        self._ensure_pid(int(pids[-1]))
        inv_rows, inv_len = self._inv_rows, self._inv_len
        for pid, s, e in zip(pids.tolist(), starts.tolist(), ends.tolist()):
            inv_rows[pid] = owners[s:e]
            inv_len[pid] = e - s

    def owners(self, pid: int) -> IndexArray:
        """``S(p)`` as an unordered utility-id array (a view)."""
        if pid < 0 or pid >= len(self._inv_rows):
            return _EMPTY_IDS
        row = self._inv_rows[pid]
        if row is None:
            return _EMPTY_IDS
        return row[: self._inv_len[pid]]

    def owners_sorted(self, pid: int) -> list[int]:
        return sorted(self.owners(pid).tolist())

    def sets_containing(self, pid: int) -> frozenset[int]:
        return frozenset(self.owners(pid).tolist())

    def add_owner(self, pid: int, i: int) -> None:
        self._ensure_pid(pid)
        n = self._inv_len[pid]
        row = self._inv_rows[pid]
        if row is None or n == row.shape[0]:
            cap = max(4, 2 * n)
            grown = np.empty(cap, dtype=np.intp)
            if n:
                grown[:n] = row[:n]
            row = self._inv_rows[pid] = grown
        row[n] = i
        self._inv_len[pid] = n + 1

    def clear_owners(self, pid: int) -> None:
        """Drop the whole inverted row of ``pid`` (tuple deletion)."""
        if 0 <= pid < len(self._inv_rows):
            self._inv_rows[pid] = None
            self._inv_len[pid] = 0

    def kth_vector_mixed(self, idxs: IndexArray) -> FloatArray:
        """Vectorized :meth:`kth_largest` honoring the short-row cases."""
        lens = self._row_len[idxs]
        return np.where(lens >= self._k, self._topk[idxs, 0],
                        np.where(lens == 0, 0.0, self._min[idxs]))

    def remove_owner(self, pid: int, i: int) -> None:
        """Drop utility ``i`` from ``S(pid)`` (swap-removal, unordered)."""
        n = self._inv_len[pid]
        if n == 0:
            return
        row = self._inv_rows[pid]
        match = row[:n] == i
        p = int(match.argmax())
        if not match[p]:
            return
        row[p] = row[n - 1]
        self._inv_len[pid] = n - 1

    # -- persistence ---------------------------------------------------
    def export_state(self) -> dict:
        """Flat-array snapshot: member rows packed CSR in arrival order.

        Arrival order is logical state (removal deltas replay it), so
        rows concatenate exactly as stored; the inverted index is
        unordered by contract but serialized as-is for cheapness.
        """
        m = self._m
        lens = self._row_len
        ids_flat = (np.concatenate([self._row_ids[i][: int(lens[i])]
                                    for i in range(m)])
                    if m else np.empty(0, dtype=np.intp))
        scores_flat = (np.concatenate([self._row_scores[i][: int(lens[i])]
                                       for i in range(m)])
                       if m else np.empty(0, dtype=np.float64))
        inv_len = np.asarray(self._inv_len, dtype=np.int64)
        inv_flat = ([self._inv_rows[p][: int(inv_len[p])]
                     for p in np.flatnonzero(inv_len).tolist()])
        return {
            "row_len": lens.copy(),
            "ids_flat": ids_flat,
            "scores_flat": scores_flat,
            "topk": self._topk.copy(),
            "min": self._min.copy(),
            "inv_len": inv_len,
            "inv_flat": (np.concatenate(inv_flat) if inv_flat
                         else np.empty(0, dtype=np.intp)),
        }

    @classmethod
    def from_state(cls, state, m_total: int, k: int) -> "MemberStore":
        """Rebuild a store from :meth:`export_state` arrays.

        Rows are installed as disjoint views of the flat arrays (the
        bootstrap pattern): in-place compaction cannot alias across
        rows, and the first append reallocates into owned storage.
        """
        store = cls(m_total, k)
        lens = np.asarray(state["row_len"], dtype=np.int64)
        if lens.shape[0] != m_total:
            raise ValueError("member-store state does not match pool size")
        store._row_len = lens.copy()
        ids_flat = np.asarray(state["ids_flat"], dtype=np.intp).copy()
        scores_flat = np.asarray(state["scores_flat"],
                                 dtype=np.float64).copy()
        bounds = np.zeros(m_total + 1, dtype=np.int64)
        np.cumsum(lens, out=bounds[1:])
        if int(bounds[-1]) != ids_flat.shape[0] or \
                scores_flat.shape[0] != ids_flat.shape[0]:
            raise ValueError("member rows are inconsistent with row_len")
        for i in range(m_total):
            s, e = int(bounds[i]), int(bounds[i + 1])
            if e > s:
                store._row_ids[i] = ids_flat[s:e]
                store._row_scores[i] = scores_flat[s:e]
        topk = np.ascontiguousarray(state["topk"], dtype=np.float64)
        if topk.shape != (m_total, k):
            raise ValueError("top-k matrix shape mismatch")
        store._topk = topk.copy()
        store._min = np.asarray(state["min"], dtype=np.float64).copy()
        inv_len = np.asarray(state["inv_len"], dtype=np.int64)
        inv_flat = np.asarray(state["inv_flat"], dtype=np.intp).copy()
        store._inv_len = [int(x) for x in inv_len]
        store._inv_rows = [None] * inv_len.shape[0]
        pos = 0
        for p in np.flatnonzero(inv_len).tolist():
            ln = int(inv_len[p])
            store._inv_rows[p] = inv_flat[pos:pos + ln]
            pos += ln
        if pos != inv_flat.shape[0]:
            raise ValueError("inverted rows are inconsistent with inv_len")
        return store


class ApproxTopKIndex:
    """Maintains ``Φ_{k,ε}(u_i, P_t)`` for a pool of ``M`` utilities.

    Parameters
    ----------
    db : Database
        The dynamic database; updates must be applied to ``db`` *through*
        :meth:`insert` / :meth:`delete` of this index (it forwards them),
        or applied first and then notified — see the two methods.
    utilities : (M, d) array
        Unit utility vectors; the pool is fixed for the index lifetime.
    k : int
        Rank parameter of the k-RMS query.
    eps : float
        Approximation factor ε of the top-k sets.
    index_factory : callable(ids, points, d) -> tuple index, optional
        Builds the tuple index TI. The default is the k-d tree; §III-C
        allows any space-partitioning index with the same interface
        (``insert`` / ``delete`` / ``top_k`` / ``range_query``), e.g.
        :class:`repro.index.quadtree.QuadTree`.
    cone_factory : callable(utilities) -> utility index, optional
        Builds the utility index UI (default: the cone tree). Mainly an
        ablation/benchmark hook; any object with the ``ConeTree``
        interface (``activate`` / ``set_threshold`` / ``threshold`` /
        ``reached_by``) works.

    Attributes
    ----------
    build_profile : dict[str, float]
        Cold-start phase breakdown in seconds (tree builds, bootstrap
        GEMM + partition, membership fill, threshold activation).
    """

    def __init__(self, db: Database, utilities: ArrayLike, k: int, eps: float, *,
                 index_factory: Callable[[IndexArray, FloatArray, int], Any]
                 | None = None,
                 cone_factory: Callable[[FloatArray], Any] | None = None,
                 backend: ExecutionBackend | None = None) -> None:
        self._db = db
        self._backend = backend
        self._u = np.ascontiguousarray(utilities, dtype=np.float64)
        if self._u.ndim != 2 or self._u.shape[1] != db.d:
            raise ValueError("utilities must be (M, d) with d matching the database")
        self._m_total = self._u.shape[0]
        self._k = check_k(k)
        self._eps = check_epsilon(eps)
        self._store = MemberStore(self._m_total, self._k)
        self.build_profile: dict[str, float] = {}
        ids, pts = db.snapshot()
        if index_factory is None:
            index_factory = _default_index_factory
        t0 = time.perf_counter()
        self._kdtree = index_factory(ids, pts, db.d)
        # Staged (pid -> point) insertions not yet in the tuple index,
        # and staged deletions (tombstones) not yet removed from it;
        # see _stage_point / _flush_staged.
        self._staged: dict[int, FloatArray] = {}
        self._tombstones: list[int] = []
        t1 = time.perf_counter()
        if cone_factory is None:
            cone_factory = ConeTree
        self._cone = cone_factory(self._u)
        t2 = time.perf_counter()
        self.build_profile["kdtree_build"] = t1 - t0
        self.build_profile["conetree_build"] = t2 - t1
        self._bootstrap(ids, pts)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def pool_size(self) -> int:
        """Number of utility vectors in the pool (M)."""
        return self._m_total

    def utility(self, idx: int) -> FloatArray:
        return self._u[idx].copy()

    def members_of(self, u_index: int) -> list[int]:
        """Tuple ids currently in ``Φ_{k,ε}(u_index, P_t)``."""
        return self._store.members_sorted(u_index)

    def member_row(self, u_index: int) -> IndexArray:
        """Member ids of one utility as a raw array (arrival order).

        Order-free bulk access for array consumers (the set-cover size
        probes of Algorithm 2); :meth:`members_of` keeps the sorted-list
        contract.
        """
        return self._store.row(u_index)[0]

    def sets_containing(self, tuple_id: int) -> frozenset[int]:
        """``S(p)``: utility indices whose approximate top-k holds ``tuple_id``."""
        return self._store.sets_containing(tuple_id)

    def threshold(self, u_index: int) -> float:
        """Current ``τ_i`` of utility ``u_index``."""
        return self._cone.threshold(u_index)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: ArrayLike) -> tuple[int, list[MembershipDelta]]:
        """Insert ``point`` into the database; maintain all top-k sets.

        Returns the new tuple id and the membership deltas (the new tuple
        joining sets, plus any tuples evicted when thresholds rose).
        """
        pid, log = self.insert_log(point)
        return pid, log.to_deltas()

    def insert_log(self, point: ArrayLike) -> tuple[int, DeltaLog]:
        """:meth:`insert` returning the raw :class:`DeltaLog` (hot path)."""
        pid = self._db.insert(point)
        vec = self._db.point(pid)
        self._stage_point(pid, vec)
        log = DeltaLog()
        n = len(self._db)
        row = self._u @ vec
        if n <= self._k + 1:
            # While |P| <= k everything is a top-k tuple (τ = 0); at
            # |P| = k + 1 thresholds become meaningful for the first
            # time. Either way every utility absorbs the point.
            reached = np.arange(self._m_total, dtype=np.intp)
        else:
            reached = np.asarray(self._cone.reached_by(vec), dtype=np.intp)
        self._absorb_new_tuple(pid, row, n, reached, log)
        return pid, log

    def begin_insert_run(self, points: ArrayLike) -> "_InsertRun":
        """Start a batched run of consecutive insertions.

        All tuples are stored in the database and the tuple index up
        front (insertions never query the tuple index, so bulk loading
        is safe), and the whole ``(batch × M)`` score matrix is computed
        with one GEMM. The returned cursor's :meth:`_InsertRun.step`
        then replays the *membership* maintenance one operation at a
        time — in arrival order, against per-op thresholds — so the
        deltas it yields are exactly the sequential ones, computed
        without any per-tuple tree traversal.
        """
        return _InsertRun(self, points)

    def begin_delete_run(self, tuple_ids: Iterable[int]) -> "_DeleteRun":
        """Start a batched run of consecutive deletions.

        All victims are removed from the database up front with one
        ``delete_many`` (the cursor keeps a pre-batch snapshot so each
        step still repairs against the alive set *as of its turn*), and
        tuple-index removals are staged as tombstones flushed in bulk
        waves. The returned cursor's :meth:`_DeleteRun.step` replays
        the membership maintenance one operation at a time, so the
        delta stream is exactly the sequential one.
        """
        return _DeleteRun(self, tuple_ids)

    def apply_batch(
        self, ops: Sequence[Any]
    ) -> list[tuple[int | None, list[MembershipDelta]]]:
        """Apply a workload slice; returns per-op ``(id, deltas)`` pairs.

        Runs of consecutive insertions go through
        :meth:`begin_insert_run` (one GEMM instead of per-tuple cone
        traversals); runs of consecutive deletions go through
        :meth:`begin_delete_run` (one bulk database removal, tombstoned
        tuple-index removals, shared repair snapshots). The id is the
        inserted tuple's id for insertions, ``None`` for deletions.
        """
        out: list[tuple[int | None, list[MembershipDelta]]] = []
        for run in iter_op_runs(ops):
            if run[0].kind == INSERT:
                cursor = self.begin_insert_run([op.point for op in run])
                for _ in run:
                    out.append(cursor.step())
            else:
                dcursor = self.begin_delete_run(
                    [op.tuple_id for op in run])
                for _ in run:
                    out.append((None, dcursor.step()))
        return out

    def delete(self, tuple_id: int) -> list[MembershipDelta]:
        """Delete ``tuple_id`` from the database; maintain all top-k sets.

        Only utilities whose approximate top-k holds the tuple are
        touched (found via the inverted index ``S(p)``). When the tuple
        was among the exact top-k of a utility, the k-d tree recomputes
        ``ω_k`` and a range query rebuilds the member set.
        """
        return self.delete_log(tuple_id).to_deltas()

    def delete_log(self, tuple_id: int) -> DeltaLog:
        """:meth:`delete` returning the raw :class:`DeltaLog` (hot path)."""
        self._db.delete(tuple_id)
        self._stage_tombstone(int(tuple_id))
        return self._delete_core(int(tuple_id), len(self._db), None)

    def _stage_tombstone(self, tuple_id: int) -> None:
        """Buffer one tuple-index removal (flush when the wave fills)."""
        if self._staged.pop(tuple_id, _MISSING) is _MISSING:
            self._tombstones.append(tuple_id)
            if len(self._tombstones) >= _STAGE_LIMIT:
                self._flush_staged()

    def _delete_core(self, tuple_id: int, n_db: int,
                     run: "_DeleteRun | None") -> DeltaLog:
        """Membership maintenance of one deletion (database already
        updated).

        ``n_db`` is the database size *as of this operation* (batched
        runs remove the whole batch up front, so ``len(db)`` would run
        behind); ``run`` supplies the alive-as-of-this-op snapshot for
        batched wave repairs (``None`` on the sequential path).
        """
        store = self._store
        affected = np.asarray(store.owners_sorted(tuple_id), dtype=np.intp)
        log = DeltaLog()
        if affected.size == 0:
            return log
        # ω_k per affected utility, read before any removal (a shrinking
        # list changes it); the admission score comes back from the
        # removal itself — one row scan per utility. Comparing the two
        # (within SCORE_TOL) decides whether ω_k may have dropped.
        kth = store.kth_vector_mixed(affected)
        scores = np.empty(affected.size)
        for pos, i in enumerate(affected.tolist()):
            scores[pos] = store.remove(i, tuple_id, drop_owner=False)
        store.clear_owners(tuple_id)
        if n_db < self._k:
            was_topk = np.ones(affected.size, dtype=bool)
        else:
            was_topk = scores >= kth - SCORE_TOL
        rebuild_pos = np.flatnonzero(was_topk)
        if rebuild_pos.size == 0:
            log.extend_one_pid(affected, tuple_id, REMOVE_CODE)
            return log
        # One wave computes every affected utility's repair against the
        # same post-deletion state (repairs touch disjoint member rows,
        # so precomputing them is exactly the sequential result), then
        # the deltas interleave: each utility's REMOVE precedes its
        # rebuild deltas.
        repairs = self._compute_repairs(affected[rebuild_pos], n_db, run)
        prev = 0
        for p, repair in zip(rebuild_pos.tolist(), repairs):
            log.extend_one_pid(affected[prev:p + 1], tuple_id, REMOVE_CODE)
            self._apply_repair(int(affected[p]), repair, log)
            prev = p + 1
        log.extend_one_pid(affected[prev:], tuple_id, REMOVE_CODE)
        return log

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stage_point(self, pid: int, vec: FloatArray) -> None:
        """Buffer one insertion for the tuple index (flush when full)."""
        self._staged[pid] = vec
        if len(self._staged) >= _STAGE_LIMIT:
            self._flush_staged()

    def _flush_staged(self) -> None:
        """Sync the tuple index: staged insertions, then tombstones.

        A pid is never in both buffers (deleting a staged pid cancels
        the staging instead of tombstoning), so the two bulk waves
        commute with the per-op order they replace.
        """
        staged = self._staged
        if staged:
            ids = np.fromiter(staged.keys(), dtype=np.intp,
                              count=len(staged))
            # reprolint: disable=RPL001 -- staging dict order is op order (aligned)
            pts = np.asarray(list(staged.values()), dtype=np.float64)
            staged.clear()
            bulk = getattr(self._kdtree, "insert_many", None)
            if bulk is not None:
                bulk(ids, pts)
            else:  # alternate tuple indexes (e.g. the quadtree)
                for pid, vec in zip(ids.tolist(), pts):
                    self._kdtree.insert(pid, vec)
        if self._tombstones:
            victims = self._tombstones
            self._tombstones = []
            bulk_del = getattr(self._kdtree, "delete_many", None)
            if bulk_del is not None:
                bulk_del(victims)
            else:  # alternate tuple indexes (e.g. the quadtree)
                for pid in victims:
                    self._kdtree.delete(pid)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Flat-array snapshot of the index (checkpointing).

        Staged tuple-index work is flushed first — the staging buffers
        are a pure physical optimization, so an empty-buffer snapshot is
        logically identical and restore starts clean. Only the default
        tree types serialize; custom factories have no schema.
        """
        if type(self._kdtree) is not KDTree or \
                type(self._cone) is not ConeTree:
            raise TypeError(
                "only the default KDTree/ConeTree indexes are serializable")
        self._flush_staged()
        state = {"u": self._u.copy()}
        for prefix, sub in (("kd_", self._kdtree.export_state()),
                            ("cone_", self._cone.export_state()),
                            ("ms_", self._store.export_state())):
            # reprolint: disable=RPL001 -- key relabeling; read by name
            for key, val in sub.items():
                state[prefix + key] = val
        return state

    @classmethod
    def from_state(cls, state, db: Database, k: int, eps: float,
                   backend: ExecutionBackend | None = None
                   ) -> "ApproxTopKIndex":
        """Rebuild an index from :meth:`export_state` arrays."""
        self = object.__new__(cls)
        self._db = db
        self._backend = backend
        self._u = np.ascontiguousarray(state["u"], dtype=np.float64).copy()
        if self._u.ndim != 2 or self._u.shape[1] != db.d:
            raise ValueError("utilities must be (M, d) with d matching "
                             "the database")
        self._m_total = self._u.shape[0]
        self._k = check_k(k)
        self._eps = check_epsilon(eps)
        self._store = MemberStore.from_state(
            _sub_state(state, "ms_"), self._m_total, self._k)
        self._kdtree = KDTree.from_state(_sub_state(state, "kd_"))
        self._staged = {}
        self._tombstones = []
        self._cone = ConeTree(self._u)
        self._cone.restore_state(_sub_state(state, "cone_"))
        self.build_profile = {}
        return self

    def logical_arrays(self):
        """Yield ``(name, array)`` pairs covering the logical state.

        Feeds the engine state digest: utilities, member rows in arrival
        order, the threshold/active vectors. Derived structures (top-k
        matrix, running mins, inverted index, tree layout) are functions
        of these and the database, so they are deliberately excluded —
        the digest must be invariant to physical layout.
        """
        self._flush_staged()
        yield "u", self._u
        ms = self._store.export_state()
        yield "member_len", ms["row_len"]
        yield "member_ids", ms["ids_flat"]
        yield "member_scores", ms["scores_flat"]
        yield "tau", np.asarray(self._thresholds_vector())
        yield "active", np.asarray(self._cone.active_mask())

    def _bootstrap(self, ids: IndexArray, pts: FloatArray) -> None:
        """Vectorized initial computation of every ``Φ_{k,ε}``.

        One GEMM + one partition per utility chunk produce scores,
        thresholds, and the ``(M, k)`` top-score matrix; memberships are
        extracted with a single boolean scatter per chunk and installed
        as array slices — no per-member Python loop. The inverted index
        is assembled once at the end from the flat (pid, utility) pairs.
        """
        n = ids.shape[0]
        m_total, k, store = self._m_total, self._k, self._store
        t_gemm = t_fill = 0.0
        inv_pids: list[IndexArray] = []
        inv_owners: list[IndexArray] = []
        all_taus = np.zeros(m_total)
        if n > 0 and self._backend is not None:
            # Backend path: the same canonical chunks (the rule below is
            # shared via repro.parallel.blocks), each computed by the
            # bootstrap_chunk kernel — the exact per-chunk NumPy calls
            # of the inline loop — then installed strictly in chunk
            # order. Byte-identical to the inline path at any worker
            # count.
            backend = self._backend
            chunks = _pblocks.bootstrap_chunks(n, m_total)
            t0 = time.perf_counter()
            pts_ref = backend.ship(pts)
            ids_ref = backend.ship(ids)
            u_ref = backend.share("u", 0, self._u)
            results = backend.map_blocks("bootstrap_chunk", [
                {"pts": pts_ref, "ids": ids_ref, "u": u_ref,
                 "start": start, "end": end, "k": k, "eps": self._eps}
                for start, end in chunks])
            t1 = time.perf_counter()
            t_gemm = t1 - t0
            for (start, end), chunk_out in zip(chunks, results):
                (taus, topk_rows, bounds, cols,
                 member_pids, member_scores, mins) = chunk_out
                for col in range(end - start):
                    s, e = bounds[col], bounds[col + 1]
                    store.set_row_bootstrap(
                        start + col, member_pids[s:e], member_scores[s:e],
                        topk_rows[col], float(mins[col]) if e > s else np.inf)
                inv_pids.append(member_pids)
                inv_owners.append(cols + start)
                all_taus[start:end] = taus
            t_fill = time.perf_counter() - t1
        elif n > 0:
            chunk = max(1, int(_pblocks.BOOTSTRAP_CHUNK_ELEMS // max(1, n)))
            for start in range(0, m_total, chunk):
                block = self._u[start:start + chunk]
                b = block.shape[0]
                t0 = time.perf_counter()
                scores = pts @ block.T  # (n, b)
                if n <= k:
                    # reprolint: disable=RPL008 -- per-GEMM-chunk, not per-op
                    taus = np.zeros(b)
                    topk_rows = np.full((b, k), -np.inf)
                    topk_rows[:, k - n:] = np.sort(scores, axis=0).T
                else:
                    part = np.partition(scores, range(n - k, n), axis=0)
                    topk_rows = part[n - k:].T  # (b, k) ascending
                    taus = (1.0 - self._eps) * topk_rows[:, 0]
                t1 = time.perf_counter()
                # Column-major membership extraction: one boolean gather
                # yields every utility's members (ascending row order,
                # matching the legacy per-column fill).
                hits = scores.T >= taus[:, None]  # (b, n)
                counts = hits.sum(axis=1)
                bounds = np.r_[0, np.cumsum(counts)]
                cols, rows = np.nonzero(hits)
                member_pids = ids[rows]
                member_scores = scores.T[hits]
                if member_scores.size:
                    mins = np.minimum.reduceat(member_scores, bounds[:-1])
                else:
                    # reprolint: disable=RPL008 -- per-GEMM-chunk, not per-op
                    mins = np.empty(0)
                for col in range(b):
                    s, e = bounds[col], bounds[col + 1]
                    store.set_row_bootstrap(
                        start + col, member_pids[s:e], member_scores[s:e],
                        topk_rows[col], float(mins[col]) if e > s else np.inf)
                inv_pids.append(member_pids)
                inv_owners.append(cols + start)
                all_taus[start:start + b] = taus
                t_gemm += t1 - t0
                t_fill += time.perf_counter() - t1
        t2 = time.perf_counter()
        if inv_pids:
            pids = np.concatenate(inv_pids)
            owners = np.concatenate(inv_owners).astype(np.intp)
            # Stable sort by pid keeps owners ascending within each pid
            # (pairs are generated utility-major).
            order = np.argsort(pids, kind="stable")
            pids, owners = pids[order], owners[order]
            upids_pos = np.flatnonzero(np.r_[True, pids[1:] != pids[:-1]])
            starts = upids_pos
            ends = np.r_[upids_pos[1:], pids.size]
            store.set_inverted_bootstrap(pids[starts], starts, ends, owners)
        t3 = time.perf_counter()
        bulk_activate = getattr(self._cone, "activate_many", None)
        if bulk_activate is not None:
            bulk_activate(np.arange(m_total, dtype=np.intp), all_taus)
        else:
            for i in range(m_total):
                self._cone.activate(i, float(all_taus[i]))
        t4 = time.perf_counter()
        self.build_profile["bootstrap_gemm"] = t_gemm
        self.build_profile["membership_fill"] = t_fill + (t3 - t2)
        self.build_profile["threshold_activate"] = t4 - t3

    def _absorb_new_tuple(self, pid: int, row: FloatArray, n: int,
                          reached: AnyArray, log: DeltaLog) -> None:
        """Membership maintenance for one inserted tuple, vectorized.

        ``row`` is the tuple's precomputed score against every utility,
        ``n`` the database size *as of this operation* (batched runs
        pre-load the database, so ``len(db)`` would run ahead), and
        ``reached`` the (ascending) utility indices whose threshold the
        tuple meets. Thresholds for the whole reach are refreshed with
        one gather; only utilities whose minimum member score falls
        below their new τ pay an eviction pass. Deltas are emitted in
        the legacy per-utility order: each utility's ADD, then its
        evictions ascending by (score, id).
        """
        if reached.size == 0:
            return
        store = self._store
        scores = row[reached]
        store.add_members(reached, scores, pid)
        if n <= self._k:
            # τ stays 0 while |P| <= k: no refresh, no eviction.
            log.extend_one_pid(reached, pid, ADD_CODE)
            return
        taus = (1.0 - self._eps) * store.kth_vector(reached)
        evict_pos = eviction_positions(store.min_vector(reached), taus)
        if evict_pos.size == 0:
            log.extend_one_pid(reached, pid, ADD_CODE)
        else:
            prev = 0
            for p in evict_pos.tolist():
                # The evicting utility's own ADD precedes its REMOVEs.
                log.extend_one_pid(reached[prev:p + 1], pid, ADD_CODE)
                i = int(reached[p])
                _, ev_ids = store.evict_below(i, float(taus[p]))
                for evicted in ev_ids.tolist():
                    store.remove_owner(evicted, i)
                log.extend_one_utility(i, ev_ids, REMOVE_CODE)
                prev = p + 1
            log.extend_one_pid(reached[prev:], pid, ADD_CODE)
        batcher = getattr(self._cone, "set_thresholds", None)
        if batcher is not None:
            batcher(reached, taus)
        else:
            for i, tau in zip(reached.tolist(), taus.tolist()):
                self._cone.set_threshold(i, float(tau))

    def _compute_repairs(self, idxs: IndexArray, n_db: int,
                         run: "_DeleteRun | None"
                         ) -> list[tuple[float, IndexArray, FloatArray] | None]:
        """Fresh ``(τ, member ids, member scores)`` per utility in ``idxs``.

        All repairs see the same post-deletion database state, so they
        are computed in one wave. Below :data:`_BRUTE_REPAIR_LIMIT` the
        alive points are gathered once and scored against every
        affected utility with a single GEMM — no tuple-index descent at
        all; above it, each utility pays one pruned ``top_k`` plus one
        ``range_query`` against the (bulk-synced) tree. Member lists
        come back descending by score, ties toward the smaller id —
        the tuple index's output order.
        """
        if n_db == 0:
            return [None] * len(idxs)
        if n_db <= _BRUTE_REPAIR_LIMIT:
            if run is not None:
                ids, pts = run.alive_snapshot()
            else:
                ids, pts = self._db.snapshot()
            backend = self._backend
            q = idxs.shape[0]
            if backend is not None and \
                    n_db * q >= _pblocks.REPAIR_PAR_MIN_ELEMS:
                # Shard the wave over canonical column blocks of the
                # gathered utilities; block results extend in order.
                ids_ref = backend.ship(ids)
                pts_ref = backend.ship(pts)
                u_ref = backend.ship(self._u[idxs])
                wave: list[tuple[float, IndexArray, FloatArray] | None] = []
                for block in backend.map_blocks("repair_columns", [
                        {"ids": ids_ref, "pts": pts_ref, "u_sel": u_ref,
                         "start": s, "end": e, "n_db": n_db,
                         "k": self._k, "eps": self._eps}
                        for s, e in _pblocks.repair_col_blocks(q)]):
                    wave.extend(block)
                return wave
            scores = pts @ self._u[idxs].T  # (n, q): the repair wave
            out = []
            # reprolint: disable=RPL004 -- one pass per repaired utility (q small);
            for col in range(idxs.shape[0]):
                s = scores[:, col]
                if n_db <= self._k:
                    tau = 0.0
                else:
                    kth = np.partition(s, n_db - self._k)[n_db - self._k]
                    tau = (1.0 - self._eps) * float(kth)
                hit = s >= tau
                hit_ids, hit_scores = ids[hit], s[hit]
                order = np.lexsort((hit_ids, -hit_scores))
                out.append((tau, hit_ids[order], hit_scores[order]))
            return out
        self._flush_staged()  # the queries below must see every tuple
        out = []
        for i in idxs.tolist():
            u = self._u[i]
            if n_db <= self._k:
                tau = 0.0
            else:
                _, topk_scores = self._kdtree.top_k(u, self._k)
                tau = (1.0 - self._eps) * float(topk_scores[-1])
            fresh_ids, fresh_scores = self._kdtree.range_query(u, tau)
            out.append((tau, np.asarray(fresh_ids, dtype=np.intp),
                        np.asarray(fresh_scores)))
        return out

    def _apply_repair(
        self,
        i: int,
        repair: tuple[float, IndexArray, FloatArray] | None,
        log: DeltaLog,
    ) -> None:
        """Install one utility's recomputed ``Φ_{k,ε}`` after a top-k loss."""
        store = self._store
        cur_ids, cur_scores = store.row(i)
        if repair is None:  # database empty
            # Emit removals in the legacy sorted-list order.
            order = np.lexsort((cur_ids, cur_scores))
            gone = cur_ids[order].copy()
            store.replace_row(i, _EMPTY_IDS, _EMPTY_SCORES)
            for pid in gone.tolist():
                store.remove_owner(pid, i)
            log.extend_one_utility(i, gone, REMOVE_CODE)
            self._cone.set_threshold(i, 0.0)
            return
        tau, fresh_ids, fresh_scores = repair
        fresh_ids = np.asarray(fresh_ids, dtype=np.intp)
        stale = ~np.isin(cur_ids, fresh_ids)
        added = ~np.isin(fresh_ids, cur_ids)
        gone = cur_ids[stale].copy()
        new_ids = fresh_ids[added]
        new_scores = np.asarray(fresh_scores)[added]
        # Survivors keep their admission order and stored scores; fresh
        # members append in query order (descending score) — exactly the
        # legacy dict-replay order.
        store.replace_row(i, np.concatenate([cur_ids[~stale], new_ids]),
                          np.concatenate([cur_scores[~stale], new_scores]))
        for pid in gone.tolist():
            store.remove_owner(pid, i)
        log.extend_one_utility(i, gone, REMOVE_CODE)
        for pid in new_ids.tolist():
            store.add_owner(int(pid), i)
        log.extend_one_utility(i, new_ids, ADD_CODE)
        self._cone.set_threshold(i, tau)

    def _thresholds_vector(self) -> FloatArray:
        """All ``τ_i`` as one vector (from the cone tree when possible)."""
        getter = getattr(self._cone, "thresholds", None)
        if getter is not None:
            return getter()
        return np.asarray([self._cone.threshold(i)
                           for i in range(self._m_total)])


class _InsertRun:
    """Cursor over a batched run of consecutive insertions.

    Construction bulk-loads the database and the tuple index and
    computes the ``(batch × M)`` score matrix in one GEMM; each
    :meth:`step` then performs the membership/threshold maintenance of
    exactly one insertion, in arrival order. Because insertions never
    query the tuple index, the bulk load cannot be observed by the
    per-op maintenance, so the delta stream is identical to calling
    ``ApproxTopKIndex.insert`` once per point — the per-op work is one
    vectorized threshold comparison instead of a cone-tree traversal.
    """

    __slots__ = ("_index", "_pids", "_scores", "_pos", "_n0")

    def __init__(self, index: ApproxTopKIndex, points: ArrayLike) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        self._index = index
        self._n0 = len(index._db)
        self._pids = index._db.insert_many(pts)
        if pts.shape[0] >= _STAGE_LIMIT:
            # Big runs go straight to the tree's own bulk loader; short
            # runs accumulate in the staging buffer instead, so their
            # per-point descents amortize across many runs.
            index._flush_staged()
            bulk = getattr(index._kdtree, "insert_many", None)
            if bulk is not None:
                bulk(self._pids, pts)
            else:  # alternate tuple indexes (e.g. the quadtree)
                for pid, vec in zip(self._pids, pts):
                    index._kdtree.insert(int(pid), vec)
        else:
            staged = index._staged
            for pid, vec in zip(self._pids.tolist(), pts):
                staged[pid] = vec
            if len(staged) >= _STAGE_LIMIT:
                index._flush_staged()
        backend = index._backend
        if backend is not None and \
                pts.shape[0] * index._m_total >= _pblocks.SCORE_PAR_MIN_ELEMS:
            # Shard the (batch × M) GEMM over canonical row blocks and
            # stack in block order; the dispatch threshold and block
            # size are pure functions of problem size, so any worker
            # count (or the serial backend) produces the same bits.
            pts_ref = backend.ship(pts)
            u_ref = backend.share("u", 0, index._u)
            row_scores = backend.map_blocks("score_rows", [
                {"pts": pts_ref, "u": u_ref, "start": s, "end": e}
                for s, e in _pblocks.score_row_blocks(pts.shape[0])])
            self._scores = np.concatenate(row_scores, axis=0)
        else:
            self._scores = pts @ index._u.T
        self._pos = 0

    @property
    def n_before(self) -> int:
        """Database size before the next (unstepped) operation."""
        return self._n0 + self._pos

    @property
    def remaining(self) -> int:
        return len(self._pids) - self._pos

    def step(self) -> tuple[int, list[MembershipDelta]]:
        """Run the membership maintenance of the next insertion."""
        pid, log = self.step_log()
        return pid, log.to_deltas()

    def step_log(self) -> tuple[int, DeltaLog]:
        """:meth:`step` returning the raw :class:`DeltaLog` (hot path)."""
        if self._pos >= len(self._pids):
            raise StopIteration("insert run exhausted")
        index = self._index
        t = self._pos
        self._pos += 1
        pid = int(self._pids[t])
        row = self._scores[t]
        n = self._n0 + t + 1  # sequential database size after this op
        log = DeltaLog()
        if n <= index._k + 1:
            reached = np.arange(index._m_total, dtype=np.intp)
        else:
            # Exact comparison through the feature-detected compiled
            # shim (numba prange when available, same NumPy expression
            # otherwise) — identical results either way.
            reached = reached_utilities(row, index._thresholds_vector())
        index._absorb_new_tuple(pid, row, n, reached, log)
        return pid, log


class _DeleteRun:
    """Cursor over a batched run of consecutive deletions.

    Construction removes every victim from the database with one
    ``delete_many`` (keeping the returned victim values); each
    :meth:`step` then performs the membership maintenance of exactly
    one deletion, in arrival order, against the database state *as of
    that operation*:

    * the database size is tracked by the cursor (``len(db)`` already
      reflects the whole batch);
    * tuple-index removals are staged as tombstones and applied in bulk
      waves — by the time a step needs a tree query, exactly the
      victims of operations up to that step have been tombstoned, so
      the flushed tree matches the sequential one point-for-point;
    * brute-force repair waves reconstruct the alive-as-of-the-step
      snapshot from the post-batch database plus the retained values of
      the not-yet-processed victims — the same rows, in the same
      ascending-id order, as the sequential path's snapshot.

    The delta stream is therefore identical to calling
    ``ApproxTopKIndex.delete`` once per victim.
    """

    __slots__ = ("_index", "_ids", "_victim_pts", "_pos", "_n0")

    def __init__(self, index: ApproxTopKIndex, tuple_ids: Iterable[int]) -> None:
        ids = np.asarray(list(tuple_ids), dtype=np.intp)
        self._index = index
        self._ids = ids
        self._n0 = len(index._db)
        # Atomic bulk removal; the returned values back the snapshots.
        self._victim_pts = index._db.delete_many(ids)
        self._pos = 0

    @property
    def n_before(self) -> int:
        """Database size before the next (unstepped) operation."""
        return self._n0 - self._pos

    @property
    def remaining(self) -> int:
        return len(self._ids) - self._pos

    def step(self) -> list[MembershipDelta]:
        """Run the membership maintenance of the next deletion."""
        return self.step_log().to_deltas()

    def step_log(self) -> DeltaLog:
        """:meth:`step` returning the raw :class:`DeltaLog` (hot path)."""
        if self._pos >= len(self._ids):
            raise StopIteration("delete run exhausted")
        index = self._index
        t = self._pos
        self._pos += 1
        tid = int(self._ids[t])
        index._stage_tombstone(tid)
        # Sequential database size after this op (the db ran ahead).
        return index._delete_core(tid, self._n0 - (t + 1), self)

    def alive_snapshot(self) -> tuple[IndexArray, FloatArray]:
        """``(ids, points)`` alive as of the current step, id-ascending.

        Equals what ``db.snapshot()`` returns on the sequential path at
        the same operation: the post-batch alive set plus the victims
        of the not-yet-processed steps.
        """
        db = self._index._db
        base_ids = db.ids()
        base_pts = db.points()
        extra = self._ids[self._pos:]
        if extra.size == 0:
            return base_ids, base_pts
        all_ids = np.concatenate([base_ids, extra])
        all_pts = np.concatenate([base_pts, self._victim_pts[self._pos:]])
        order = np.argsort(all_ids)
        return all_ids[order], all_pts[order]
