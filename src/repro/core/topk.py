"""Maintenance of ε-approximate top-k sets ``Φ_{k,ε}(u_i, P_t)``.

For each sampled utility ``u_i``, FD-RMS tracks the set of tuples whose
score is at least ``τ_i = (1 - ε) · ω_k(u_i, P_t)`` (§II-A). This module
keeps those sets current across tuple insertions and deletions using the
dual-tree of §III-C:

* the **k-d tree** (tuple index) answers exact top-k and score-range
  queries against the live database;
* the **cone tree** (utility index) finds, for an inserted tuple, the
  utilities whose threshold the tuple reaches — all others are untouched.

Membership invariant, for every utility ``i`` and time ``t``::

    members[i] = { p alive : <u_i, p> >= τ_i },  τ_i = (1-ε)·ω_k(u_i, P_t)

with the convention ``τ_i = 0`` while the database holds at most ``k``
tuples (then everything is a top-k tuple).

Each update returns the exact list of membership changes it caused
(:class:`MembershipDelta`), which FD-RMS feeds to the dynamic set-cover
layer as the set operations ``σ`` of Algorithm 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.data.database import INSERT, Database, iter_op_runs
from repro.index.conetree import ConeTree
from repro.index.kdtree import KDTree
from repro.utils import check_epsilon, check_k

ADD = "+"
REMOVE = "-"

#: Score-threshold tolerance shared by membership updates and the audit
#: paths (``ApproxTopKIndex`` internals, ``FDRMS.verify``). Scores are
#: computed by different BLAS kernels along different code paths (bulk
#: GEMM at bootstrap, gathered mat-vec in tree queries, per-row dots in
#: single-op updates), which may disagree in the last ulp; comparisons
#: against a threshold therefore allow this absolute slack instead of
#: hardcoding ``1e-12`` at each site.
SCORE_TOL = 1e-12


def _default_index_factory(ids, points, d: int) -> KDTree:
    """The default tuple index: a k-d tree (possibly empty)."""
    if len(ids) == 0:
        return KDTree(d)
    return KDTree.build(ids, points)


@dataclass(frozen=True)
class MembershipDelta:
    """One change of ``Φ_{k,ε}(u, P)``: tuple ``pid`` joined/left set ``u``."""

    u_index: int
    tuple_id: int
    kind: str  # ADD or REMOVE


class _MemberList:
    """Sorted container of (score, tuple_id) pairs for one utility.

    Ascending by (score, id); supports O(log s) insert/remove, O(1)
    k-th-largest lookup, and bulk eviction of the low-score prefix. A
    side id → score map makes removal address members by id alone, so a
    member is always removed under the exact score it was stored with —
    re-deriving the score at removal time is fragile, because different
    BLAS kernels can disagree in the last ulp (see :data:`SCORE_TOL`).
    """

    __slots__ = ("entries", "score_by_id")

    def __init__(self) -> None:
        self.entries: list[tuple[float, int]] = []
        self.score_by_id: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self.score_by_id

    def add(self, score: float, tuple_id: int) -> None:
        bisect.insort(self.entries, (score, tuple_id))
        self.score_by_id[tuple_id] = score

    def score_of(self, tuple_id: int) -> float:
        """The score ``tuple_id`` was stored with."""
        return self.score_by_id[tuple_id]

    def remove(self, tuple_id: int) -> float:
        """Remove ``tuple_id``; returns the score it was stored with."""
        score = self.score_by_id.pop(tuple_id, None)
        if score is None:
            raise KeyError(f"tuple {tuple_id} not in member list")
        idx = bisect.bisect_left(self.entries, (score, tuple_id))
        del self.entries[idx]
        return score

    def kth_largest(self, k: int) -> float:
        """Score of the k-th best member (requires ``len >= k``)."""
        return self.entries[-k][0]

    def evict_below(self, threshold: float) -> list[tuple[float, int]]:
        """Drop and return all entries with score < threshold."""
        idx = bisect.bisect_left(self.entries, (threshold, -1))
        evicted = self.entries[:idx]
        del self.entries[:idx]
        for _, tid in evicted:
            del self.score_by_id[tid]
        return evicted

    def ids(self) -> list[int]:
        return [tid for _, tid in self.entries]


class ApproxTopKIndex:
    """Maintains ``Φ_{k,ε}(u_i, P_t)`` for a pool of ``M`` utilities.

    Parameters
    ----------
    db : Database
        The dynamic database; updates must be applied to ``db`` *through*
        :meth:`insert` / :meth:`delete` of this index (it forwards them),
        or applied first and then notified — see the two methods.
    utilities : (M, d) array
        Unit utility vectors; the pool is fixed for the index lifetime.
    k : int
        Rank parameter of the k-RMS query.
    eps : float
        Approximation factor ε of the top-k sets.
    index_factory : callable(ids, points, d) -> tuple index, optional
        Builds the tuple index TI. The default is the k-d tree; §III-C
        allows any space-partitioning index with the same interface
        (``insert`` / ``delete`` / ``top_k`` / ``range_query``), e.g.
        :class:`repro.index.quadtree.QuadTree`.
    cone_factory : callable(utilities) -> utility index, optional
        Builds the utility index UI (default: the cone tree). Mainly an
        ablation/benchmark hook; any object with the ``ConeTree``
        interface (``activate`` / ``set_threshold`` / ``threshold`` /
        ``reached_by``) works.
    """

    def __init__(self, db: Database, utilities, k: int, eps: float, *,
                 index_factory=None, cone_factory=None) -> None:
        self._db = db
        self._u = np.ascontiguousarray(utilities, dtype=np.float64)
        if self._u.ndim != 2 or self._u.shape[1] != db.d:
            raise ValueError("utilities must be (M, d) with d matching the database")
        self._m_total = self._u.shape[0]
        self._k = check_k(k)
        self._eps = check_epsilon(eps)
        self._members: list[_MemberList] = [_MemberList() for _ in range(self._m_total)]
        self._inverted: dict[int, set[int]] = {}
        ids, pts = db.snapshot()
        if index_factory is None:
            index_factory = _default_index_factory
        self._kdtree = index_factory(ids, pts, db.d)
        if cone_factory is None:
            cone_factory = ConeTree
        self._cone = cone_factory(self._u)
        self._bootstrap(ids, pts)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def pool_size(self) -> int:
        """Number of utility vectors in the pool (M)."""
        return self._m_total

    def utility(self, idx: int) -> np.ndarray:
        return self._u[idx].copy()

    def members_of(self, u_index: int) -> list[int]:
        """Tuple ids currently in ``Φ_{k,ε}(u_index, P_t)``."""
        return self._members[u_index].ids()

    def sets_containing(self, tuple_id: int) -> frozenset[int]:
        """``S(p)``: utility indices whose approximate top-k holds ``tuple_id``."""
        return frozenset(self._inverted.get(tuple_id, frozenset()))

    def threshold(self, u_index: int) -> float:
        """Current ``τ_i`` of utility ``u_index``."""
        return self._cone.threshold(u_index)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point) -> tuple[int, list[MembershipDelta]]:
        """Insert ``point`` into the database; maintain all top-k sets.

        Returns the new tuple id and the membership deltas (the new tuple
        joining sets, plus any tuples evicted when thresholds rose).
        """
        pid = self._db.insert(point)
        vec = self._db.point(pid)
        self._kdtree.insert(pid, vec)
        deltas: list[MembershipDelta] = []
        n = len(self._db)
        row = self._u @ vec
        if n <= self._k + 1:
            # While |P| <= k everything is a top-k tuple (τ = 0); at
            # |P| = k + 1 thresholds become meaningful for the first
            # time. Either way every utility absorbs the point.
            reached = range(self._m_total)
        else:
            reached = self._cone.reached_by(vec)
        self._absorb_new_tuple(pid, row, n, reached, deltas)
        return pid, deltas

    def begin_insert_run(self, points) -> "_InsertRun":
        """Start a batched run of consecutive insertions.

        All tuples are stored in the database and the tuple index up
        front (insertions never query the tuple index, so bulk loading
        is safe), and the whole ``(batch × M)`` score matrix is computed
        with one GEMM. The returned cursor's :meth:`_InsertRun.step`
        then replays the *membership* maintenance one operation at a
        time — in arrival order, against per-op thresholds — so the
        deltas it yields are exactly the sequential ones, computed
        without any per-tuple tree traversal.
        """
        return _InsertRun(self, points)

    def apply_batch(self, ops) -> list[tuple[int | None, list[MembershipDelta]]]:
        """Apply a workload slice; returns per-op ``(id, deltas)`` pairs.

        Runs of consecutive insertions go through
        :meth:`begin_insert_run` (one GEMM instead of per-tuple cone
        traversals); deletions are applied one at a time, since each
        must see the tuple index exactly as of its turn. The id is the
        inserted tuple's id for insertions, ``None`` for deletions.
        """
        out: list[tuple[int | None, list[MembershipDelta]]] = []
        for run in iter_op_runs(ops):
            if run[0].kind == INSERT:
                cursor = self.begin_insert_run([op.point for op in run])
                for _ in run:
                    out.append(cursor.step())
            else:
                for op in run:
                    out.append((None, self.delete(op.tuple_id)))
        return out

    def delete(self, tuple_id: int) -> list[MembershipDelta]:
        """Delete ``tuple_id`` from the database; maintain all top-k sets.

        Only utilities whose approximate top-k holds the tuple are
        touched (found via the inverted index ``S(p)``). When the tuple
        was among the exact top-k of a utility, the k-d tree recomputes
        ``ω_k`` and a range query rebuilds the member set.
        """
        self._db.delete(tuple_id)
        self._kdtree.delete(tuple_id)
        affected = sorted(self._inverted.get(tuple_id, frozenset()))
        deltas: list[MembershipDelta] = []
        for i in affected:
            # The stored score is the value the member was admitted with;
            # comparing it (within SCORE_TOL) against the stored k-th
            # member score decides whether ω_k may have dropped.
            score = self._members[i].score_of(tuple_id)
            was_topk = (len(self._db) < self._k
                        or score >= self._kth_member_score(i) - SCORE_TOL)
            self._remove_member(i, tuple_id, deltas)
            if was_topk:
                self._rebuild_utility(i, deltas)
        return deltas

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bootstrap(self, ids: np.ndarray, pts: np.ndarray) -> None:
        """Vectorized initial computation of every ``Φ_{k,ε}``."""
        n = ids.shape[0]
        if n == 0:
            for i in range(self._m_total):
                self._cone.activate(i, 0.0)
            return
        chunk = max(1, int(4_000_000 // max(1, n)))
        for start in range(0, self._m_total, chunk):
            block = self._u[start:start + chunk]
            scores = pts @ block.T  # (n, b)
            if n <= self._k:
                taus = np.zeros(block.shape[0])
            else:
                kth = np.partition(scores, n - self._k, axis=0)[n - self._k]
                taus = (1.0 - self._eps) * kth
            for col in range(block.shape[0]):
                i = start + col
                tau = float(taus[col])
                hit = np.flatnonzero(scores[:, col] >= tau)
                mlist = self._members[i]
                for row in hit:
                    pid = int(ids[row])
                    mlist.add(float(scores[row, col]), pid)
                    self._inverted.setdefault(pid, set()).add(i)
                self._cone.activate(i, tau)

    def _kth_member_score(self, i: int) -> float:
        """``ω_k(u_i, P)`` read off the member list (members ⊇ top-k)."""
        mlist = self._members[i]
        if len(mlist) < self._k:
            # Member list smaller than k can only happen while n < k,
            # where τ = 0 and members = all tuples.
            return mlist.entries[0][0] if mlist.entries else 0.0
        return mlist.kth_largest(self._k)

    def _add_member(self, i: int, score: float, pid: int,
                    deltas: list[MembershipDelta]) -> None:
        self._members[i].add(score, pid)
        self._inverted.setdefault(pid, set()).add(i)
        deltas.append(MembershipDelta(i, pid, ADD))

    def _remove_member(self, i: int, pid: int,
                       deltas: list[MembershipDelta]) -> None:
        self._members[i].remove(pid)
        owners = self._inverted.get(pid)
        if owners is not None:
            owners.discard(i)
            if not owners:
                del self._inverted[pid]
        deltas.append(MembershipDelta(i, pid, REMOVE))

    def _absorb_new_tuple(self, pid: int, row: np.ndarray, n: int,
                          reached, deltas: list[MembershipDelta]) -> None:
        """Membership maintenance for one inserted tuple.

        ``row`` is the tuple's precomputed score against every utility,
        ``n`` the database size *as of this operation* (batched runs
        pre-load the database, so ``len(db)`` would run ahead), and
        ``reached`` the utility indices whose threshold the tuple meets.
        """
        refresh = n > self._k
        batcher = getattr(self._cone, "set_thresholds", None)
        collect: list[tuple[int, float]] | None = \
            [] if (refresh and batcher is not None) else None
        for i in reached:
            i = int(i)
            self._add_member(i, float(row[i]), pid, deltas)
            if refresh:
                self._refresh_threshold(i, deltas, n, collect)
        if collect:
            batcher([i for i, _ in collect], [t for _, t in collect])

    def _refresh_threshold(self, i: int, deltas: list[MembershipDelta],
                           n: int | None = None,
                           collect: list[tuple[int, float]] | None = None
                           ) -> None:
        """Recompute ``τ_i`` from the member list and evict the fallen.

        Valid whenever the member list still contains the exact top-k
        (always true after additions; deletions of top-k tuples go
        through :meth:`_rebuild_utility` instead). ``n`` overrides the
        database size for batched runs; with ``collect`` the cone-tree
        threshold write is deferred so the caller can flush one batched
        ``set_thresholds`` per operation.
        """
        if n is None:
            n = len(self._db)
        if n <= self._k:
            tau = 0.0
        else:
            tau = (1.0 - self._eps) * self._kth_member_score(i)
        for score, pid in self._members[i].evict_below(tau):
            owners = self._inverted.get(pid)
            if owners is not None:
                owners.discard(i)
                if not owners:
                    del self._inverted[pid]
            deltas.append(MembershipDelta(i, pid, REMOVE))
        if collect is not None:
            collect.append((i, tau))
        else:
            self._cone.set_threshold(i, tau)

    def _rebuild_utility(self, i: int, deltas: list[MembershipDelta]) -> None:
        """Recompute ``Φ_{k,ε}(u_i)`` from the k-d tree after a top-k loss."""
        u = self._u[i]
        n = len(self._db)
        if n == 0:
            for pid in self._members[i].ids():
                self._remove_member(i, pid, deltas)
            self._cone.set_threshold(i, 0.0)
            return
        if n <= self._k:
            tau = 0.0
        else:
            _, topk_scores = self._kdtree.top_k(u, self._k)
            tau = (1.0 - self._eps) * float(topk_scores[-1])
        current = dict(self._members[i].score_by_id)
        ids, scores = self._kdtree.range_query(u, tau)
        fresh = {int(pid): float(s) for pid, s in zip(ids, scores)}
        for pid in current:
            if pid not in fresh:
                self._remove_member(i, pid, deltas)
        for pid, score in fresh.items():
            if pid not in current:
                self._add_member(i, score, pid, deltas)
        self._cone.set_threshold(i, tau)

    def _thresholds_vector(self) -> np.ndarray:
        """All ``τ_i`` as one vector (from the cone tree when possible)."""
        getter = getattr(self._cone, "thresholds", None)
        if getter is not None:
            return getter()
        return np.asarray([self._cone.threshold(i)
                           for i in range(self._m_total)])


class _InsertRun:
    """Cursor over a batched run of consecutive insertions.

    Construction bulk-loads the database and the tuple index and
    computes the ``(batch × M)`` score matrix in one GEMM; each
    :meth:`step` then performs the membership/threshold maintenance of
    exactly one insertion, in arrival order. Because insertions never
    query the tuple index, the bulk load cannot be observed by the
    per-op maintenance, so the delta stream is identical to calling
    ``ApproxTopKIndex.insert`` once per point — the per-op work is one
    vectorized threshold comparison instead of a cone-tree traversal.
    """

    __slots__ = ("_index", "_pids", "_scores", "_pos", "_n0")

    def __init__(self, index: ApproxTopKIndex, points) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        self._index = index
        self._n0 = len(index._db)
        self._pids = index._db.insert_many(pts)
        tree = index._kdtree
        bulk = getattr(tree, "insert_many", None)
        if bulk is not None:
            bulk(self._pids, pts)
        else:  # alternate tuple indexes (e.g. the quadtree)
            for pid, vec in zip(self._pids, pts):
                tree.insert(int(pid), vec)
        self._scores = pts @ index._u.T
        self._pos = 0

    @property
    def n_before(self) -> int:
        """Database size before the next (unstepped) operation."""
        return self._n0 + self._pos

    @property
    def remaining(self) -> int:
        return len(self._pids) - self._pos

    def step(self) -> tuple[int, list[MembershipDelta]]:
        """Run the membership maintenance of the next insertion."""
        if self._pos >= len(self._pids):
            raise StopIteration("insert run exhausted")
        index = self._index
        t = self._pos
        self._pos += 1
        pid = int(self._pids[t])
        row = self._scores[t]
        n = self._n0 + t + 1  # sequential database size after this op
        deltas: list[MembershipDelta] = []
        if n <= index._k + 1:
            reached = range(index._m_total)
        else:
            reached = np.flatnonzero(row >= index._thresholds_vector())
        index._absorb_new_tuple(pid, row, n, reached, deltas)
        return pid, deltas
