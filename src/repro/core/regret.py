"""Regret-ratio computation and estimation.

Implements the quantities of §II-A:

* ``rr_k(u, Q)`` — the k-regret ratio of ``Q`` over ``P`` for one
  utility vector (:func:`k_regret_ratio`);
* ``mrr_k(Q) = max_u rr_k(u, Q)`` — estimated over a large random
  utility sample, exactly as the paper's evaluation does with 500 K test
  vectors (:func:`max_k_regret_ratio_sampled`, :class:`RegretEvaluator`);
* an **exact** LP-based ``mrr_1`` for ``k = 1``
  (:func:`max_regret_ratio_lp`), used by tests to validate the sampled
  estimator and by the LP-driven baselines.

All sampled estimators are vectorized and batched so that ``n × m``
score matrices never exceed a bounded memory footprint.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro._types import FloatArray, SeedLike
from repro.geometry.hull import extreme_points
from repro.geometry.lp import worst_case_ratio
from repro.geometry.sampling import sample_utilities
from repro.utils import as_point_matrix, check_k, resolve_rng

# ----------------------------------------------------------------------
# Cached utility test sets. The paper's measurement protocol evaluates
# every snapshot/algorithm against the SAME large random test set, so
# re-drawing a fresh sample per call both wastes the dominant share of
# evaluation time and makes estimates incomparable. Draws requested with
# a reproducible seed (None or an int — not a stateful Generator) are
# memoized here and shared across calls.
# ----------------------------------------------------------------------

_SAMPLE_CACHE: dict[tuple[int, int, int | None, bool], FloatArray] = {}
_SAMPLE_CACHE_MAX = 8


def cached_test_utilities(n_samples: int, d: int, seed: SeedLike = None, *,
                          with_basis: bool = False) -> FloatArray:
    """A memoized utility test set of ``n_samples`` vectors in ``d`` dims.

    ``with_basis=True`` prefixes the ``d`` standard basis vectors (which
    catch single-attribute regret exactly), drawing ``n_samples - d``
    random directions. Passing a stateful ``numpy.random.Generator`` as
    ``seed`` bypasses the cache (the draw is not reproducible).
    """
    key_seed: int | None | bool
    if seed is None:
        key_seed = None
    elif isinstance(seed, (int, np.integer)):
        key_seed = int(seed)
    else:
        key_seed = False  # stateful generator: not cacheable
    if key_seed is not False:
        key = (int(n_samples), int(d), key_seed, bool(with_basis))
        hit = _SAMPLE_CACHE.get(key)
        if hit is not None:
            return hit
    if with_basis:
        utilities = np.vstack([
            np.eye(d),
            sample_utilities(n_samples - d, d, seed=resolve_rng(seed)),
        ])
    else:
        utilities = sample_utilities(n_samples, d, seed=resolve_rng(seed))
    utilities.flags.writeable = False
    if key_seed is not False:
        if len(_SAMPLE_CACHE) >= _SAMPLE_CACHE_MAX:
            _SAMPLE_CACHE.pop(next(iter(_SAMPLE_CACHE)))
        _SAMPLE_CACHE[key] = utilities
    return utilities


def k_regret_ratio(u: ArrayLike, points_p: ArrayLike, points_q: ArrayLike,
                   k: int = 1) -> float:
    """Exact ``rr_k(u, Q)`` for a single utility vector.

    ``rr_k(u, Q) = max(0, 1 - ω(u, Q) / ω_k(u, P))``. When ``P`` holds
    fewer than ``k`` tuples, the k-th best score degrades to the minimum
    (every tuple is a top-k tuple). A nonpositive ``ω_k`` yields 0 — no
    utility can regret a score that is not positive.
    """
    p = as_point_matrix(points_p, name="points_p")
    q = as_point_matrix(points_q, name="points_q")
    u = np.asarray(u, dtype=np.float64).reshape(-1)
    k = check_k(k)
    sp = p @ u
    kth = float(np.partition(sp, -min(k, sp.size))[-min(k, sp.size)])
    if kth <= 0.0:
        return 0.0
    best = float(np.max(q @ u))
    return float(max(0.0, 1.0 - best / kth))


def max_k_regret_ratio_sampled(points_p: ArrayLike, points_q: ArrayLike,
                               k: int = 1, *,
                               n_samples: int = 100_000,
                               seed: SeedLike = None,
                               batch: int = 2048,
                               utilities: ArrayLike | None = None) -> float:
    """Monte-Carlo estimate of ``mrr_k(Q)`` over ``n_samples`` utilities.

    This mirrors the paper's measurement protocol (§IV-A): draw a large
    test set of random utility vectors and report the maximum observed
    k-regret ratio. Pass ``utilities`` to pin an explicit test set;
    without one, the draw for a given ``(n_samples, d, seed)`` is cached
    and **reused across calls** (snapshots of a stream, competing
    algorithms), so repeated estimates are mutually comparable and skip
    the re-draw. Pass a stateful Generator as ``seed`` to force a fresh
    draw.
    """
    p = as_point_matrix(points_p, name="points_p")
    q = as_point_matrix(points_q, name="points_q")
    if p.shape[1] != q.shape[1]:
        raise ValueError("points_p and points_q must share dimensionality")
    k = check_k(k)
    if utilities is None:
        utilities = cached_test_utilities(n_samples, p.shape[1], seed)
    else:
        utilities = np.asarray(utilities, dtype=np.float64)
    worst = 0.0
    n = p.shape[0]
    kk = min(k, n)
    for start in range(0, utilities.shape[0], batch):
        block = utilities[start:start + batch]
        sp = p @ block.T                     # (n, b)
        kth = np.partition(sp, n - kk, axis=0)[n - kk]
        best = (q @ block.T).max(axis=0)     # (b,)
        with np.errstate(divide="ignore", invalid="ignore"):
            rr = 1.0 - np.divide(best, kth, out=np.ones_like(best),
                                 where=kth > 0)
        rr[kth <= 0] = 0.0
        block_worst = float(rr.max(initial=0.0))
        if block_worst > worst:
            worst = block_worst
    return float(np.clip(worst, 0.0, 1.0))


def max_regret_ratio_lp(points_p: ArrayLike, points_q: ArrayLike, *,
                        prefilter: str = "hull",
                        seed: SeedLike = None) -> float:
    """Exact ``mrr_1(Q)`` via one LP per candidate tuple (k = 1 only).

    The maximum over utilities of ``1 - ω(u, Q)/ω(u, P)`` equals the
    maximum over tuples ``p ∈ P`` of the LP value
    ``max_u {1 - ω(u, Q) : <u, p> = 1, u >= 0}`` — see
    :func:`repro.geometry.lp.worst_case_ratio`. Since only tuples that
    are top-1 for some direction can attain the maximum, candidates are
    pre-filtered to the convex-hull extremes by default
    (``prefilter='none'`` scans everything; ``'hull'`` is exact).
    """
    p = as_point_matrix(points_p, name="points_p")
    q = as_point_matrix(points_q, name="points_q")
    if prefilter == "hull":
        candidates = p[extreme_points(p, seed=seed)]
    elif prefilter == "none":
        candidates = p
    else:
        raise ValueError(f"unknown prefilter {prefilter!r}")
    worst = 0.0
    for row in candidates:
        value = worst_case_ratio(row, q)
        if value > worst:
            worst = value
    return float(worst)


class RegretEvaluator:
    """A fixed utility test set for consistent ``mrr_k`` comparisons.

    The paper evaluates every recorded result against the *same* 500 K
    random utility vectors; this class freezes such a test set so that
    different algorithms and snapshots are measured identically.

    Parameters
    ----------
    d : int
        Dimensionality.
    n_samples : int
        Size of the test set (includes the ``d`` basis vectors, which
        catch single-attribute regret exactly).
    seed : int | Generator | None
    """

    def __init__(self, d: int, *, n_samples: int = 100_000,
                 seed: SeedLike = None) -> None:
        if n_samples < d:
            raise ValueError(f"n_samples must be >= d, got {n_samples}")
        # The drawn test set is cached module-wide: building evaluators
        # with the same (d, n_samples, seed) — e.g. one per snapshot or
        # per solve() call — shares one frozen sample.
        self._utilities = cached_test_utilities(n_samples, d, seed,
                                                with_basis=True)
        self._d = d

    @property
    def utilities(self) -> FloatArray:
        return self._utilities

    @property
    def n_samples(self) -> int:
        return self._utilities.shape[0]

    def evaluate(self, points_p: ArrayLike, points_q: ArrayLike,
                 k: int = 1) -> float:
        """Estimated ``mrr_k`` of ``Q`` over ``P`` on the frozen test set."""
        return max_k_regret_ratio_sampled(
            points_p, points_q, k, utilities=self._utilities)
