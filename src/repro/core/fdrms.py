"""FD-RMS: the fully-dynamic k-RMS algorithm (Algorithms 2–4).

The pipeline, per §III of the paper:

1. Draw ``M`` utility vectors (the first ``d`` are the standard basis,
   the rest uniform on ``U``) and maintain each one's ε-approximate
   top-k set ``Φ_{k,ε}(u_i, P_t)`` (:class:`repro.core.ApproxTopKIndex`).
2. Build the set system ``Σ = (U, S)`` over the first ``m`` utilities:
   ``S(p) = {u_i : i < m, p ∈ Φ_{k,ε}(u_i, P_t)}``.
3. Maintain a *stable* set-cover solution ``C`` on ``Σ``
   (:class:`repro.core.StableSetCover`); the k-RMS result is
   ``Q_t = {p : S(p) ∈ C}``.
4. Keep ``|C| = r`` by growing/shrinking the active prefix ``m``
   (Algorithm 4, UPDATEM).

INITIALIZATION (Algorithm 2) binary-searches ``m ∈ [r, M]`` so the
greedy cover has exactly ``r`` sets; UPDATE (Algorithm 3) translates the
membership deltas produced by the top-k maintainer into the set
operations ``σ`` of Algorithm 1.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro._types import FloatArray, SeedLike
from repro.core.set_cover import StableSetCover, greedy_cover_size
from repro.core.topk import (
    SCORE_TOL,
    ApproxTopKIndex,
    DeltaLog,
)
from repro.data.database import INSERT, Database, iter_op_runs
from repro.geometry.sampling import sample_utilities_with_basis
from repro.parallel.backend import resolve_backend
from repro.utils import check_epsilon, check_k, check_size_constraint


def _sub(arrays: dict[str, Any], prefix: str) -> dict[str, Any]:
    """Strip ``prefix`` from the keys of a composite state mapping."""
    n = len(prefix)
    # reprolint: disable=RPL001 -- key relabeling; consumers read by name
    return {key[n:]: val for key, val in arrays.items()
            if key.startswith(prefix)}


class FDRMS:
    """Fully-dynamic maintenance of a ``RMS(k, r)`` result.

    Parameters
    ----------
    db : Database
        The dynamic database ``P_0``; all further updates must go through
        :meth:`insert` / :meth:`delete` of this object.
    k : int
        Rank parameter (``k = 1`` is the classic r-regret query).
    r : int
        Result size constraint (``r >= d``).
    eps : float
        Approximation factor ε of the top-k sets. Larger ε → denser set
        system → more utility vectors needed → better quality, more work
        (see Fig. 5 of the paper and ``benchmarks/bench_fig5_epsilon.py``).
    m_max : int
        Upper bound ``M`` on the number of utility vectors (``M > r``).
    seed : int | numpy.random.Generator | None
        Randomness for the utility sample.
    index_factory, cone_factory : callables, optional
        Forwarded to :class:`~repro.core.ApproxTopKIndex` — swap the
        tuple/utility index implementations (ablation and benchmarking).

    Attributes
    ----------
    m : int
        Current number of active utility vectors.
    """

    def __init__(self, db: Database, k: int, r: int, eps: float, *,
                 m_max: int = 1024, seed: SeedLike = None,
                 index_factory: Callable[..., Any] | None = None,
                 cone_factory: Callable[..., Any] | None = None,
                 parallel: int | str | None = None) -> None:
        self._db = db
        self._k = check_k(k)
        self._r = check_size_constraint(r, db.d)
        self._eps = check_epsilon(eps)
        if m_max <= r:
            raise ValueError(f"m_max must exceed r, got m_max={m_max}, r={r}")
        self._m_max = int(m_max)
        self._backend = resolve_backend(parallel)
        t0 = time.perf_counter()
        utilities = sample_utilities_with_basis(self._m_max, db.d, seed=seed)
        t1 = time.perf_counter()
        self._topk = ApproxTopKIndex(db, utilities, self._k, self._eps,
                                     index_factory=index_factory,
                                     cone_factory=cone_factory,
                                     backend=self._backend)
        t2 = time.perf_counter()
        self._cover = StableSetCover()
        self._m = self._r
        self._stats = {"inserts": 0, "deletes": 0, "deltas": 0,
                       "m_changes": 0, "cover_rebuilds": 0}
        if len(db) > 0:
            self._m = self._initialize()
            self._update_m()
        t3 = time.perf_counter()
        #: Cold-start phase breakdown in seconds (Algorithm 2 split into
        #: the top-k bootstrap phases and the set-cover greedy).
        self.init_profile: dict[str, float] = {
            "utility_sample": t1 - t0,
            **self._topk.build_profile,
            "cover_greedy": t3 - t2,
        }

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def r(self) -> int:
        return self._r

    @property
    def eps(self) -> float:
        return self._eps

    @property
    def m(self) -> int:
        """Number of active utility vectors (Algorithm 4 adjusts this)."""
        return self._m

    @property
    def m_max(self) -> int:
        return self._m_max

    @property
    def database(self) -> Database:
        return self._db

    @property
    def backend(self):
        """The execution backend (None for the inline engine).

        Exposed for the service layer: the supervisor's circuit
        breaker watches ``backend.degraded`` and drives
        ``backend.restore()`` re-pool probes.
        """
        return self._backend

    @property
    def parallel_workers(self) -> int:
        """Worker count of the execution backend (0 = inline engine).

        Deliberately an attribute rather than a :meth:`statistics`
        counter: stats feed replay determinism digests, which must be
        invariant across worker counts.
        """
        backend = self._backend
        return 0 if backend is None else backend.workers

    def close(self) -> None:
        """Release backend resources (worker pool, shared segments).

        Idempotent; a no-op for the inline engine. The engine stays
        usable — a later parallel wave lazily recreates its resources.
        """
        if self._backend is not None:
            self._backend.close()

    def statistics(self) -> dict[str, int]:
        """Maintenance counters (operations, deltas, m changes, ...).

        ``stabilize_steps`` exposes the cumulative STABILIZE work of the
        underlying set cover — the quantity bounded by Lemma 2.
        """
        out = dict(self._stats)
        out["stabilize_steps"] = self._cover.stabilize_steps
        out["m"] = self._m
        out["solution_size"] = self._cover.solution_size()
        return out

    def result(self) -> list[int]:
        """Current k-RMS result ``Q_t`` as sorted tuple ids."""
        return sorted(self._cover.solution())

    def result_points(self) -> FloatArray:
        """Current result as an ``(|Q_t|, d)`` matrix."""
        ids = self.result()
        if not ids:
            return np.empty((0, self._db.d))
        return self._db.points(ids)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """``(config, arrays)`` snapshot of the full engine state.

        ``config`` is JSON-able (scalars + counters) and travels in the
        checkpoint manifest; ``arrays`` is a flat name → ndarray mapping
        ready for ``np.savez``. Together they are sufficient to rebuild
        an engine that is *physically* identical — same tree layout,
        free-list order, adjacency order — so every future operation
        takes exactly the same path as in the exported instance.
        """
        config: dict[str, Any] = {
            "k": self._k, "r": self._r, "eps": self._eps,
            "m_max": self._m_max, "m": self._m, "d": self._db.d,
            "stats": dict(self._stats),
        }
        arrays: dict[str, Any] = {}
        for prefix, sub in (("db_", self._db.export_state()),
                            ("topk_", self._topk.export_state()),
                            ("cover_", self._cover.export_state())):
            # reprolint: disable=RPL001 -- key relabeling; read by name
            for key, val in sub.items():
                arrays[prefix + key] = val
        return config, arrays

    @classmethod
    def from_state(cls, config: dict[str, Any], arrays: dict[str, Any],
                   parallel: int | str | None = None) -> "FDRMS":
        """Rebuild an engine from :meth:`export_state` output.

        ``parallel`` selects the execution backend of the restored
        engine; it is a physical execution option, not state, so it is
        never recorded in checkpoints and may differ from the exporting
        engine's setting.
        """
        self = object.__new__(cls)
        db = Database.from_state(_sub(arrays, "db_"))
        if db.d != int(config["d"]):
            raise ValueError("database dimension does not match config")
        self._db = db
        self._k = check_k(int(config["k"]))
        self._r = check_size_constraint(int(config["r"]), db.d)
        self._eps = check_epsilon(float(config["eps"]))
        self._m_max = int(config["m_max"])
        if self._m_max <= self._r:
            raise ValueError("m_max must exceed r")
        self._backend = resolve_backend(parallel)
        self._topk = ApproxTopKIndex.from_state(
            _sub(arrays, "topk_"), db, self._k, self._eps,
            backend=self._backend)
        self._cover = StableSetCover.from_state(_sub(arrays, "cover_"))
        m = int(config["m"])
        if not self._r <= m <= self._m_max:
            raise ValueError(f"active prefix m={m} out of range")
        self._m = m
        stats = config["stats"]
        self._stats = {"inserts": int(stats["inserts"]),
                       "deletes": int(stats["deletes"]),
                       "deltas": int(stats["deltas"]),
                       "m_changes": int(stats["m_changes"]),
                       "cover_rebuilds": int(stats["cover_rebuilds"])}
        self.init_profile = {}
        return self

    def state_digest(self) -> str:
        """sha256 over the engine's *logical* state.

        Hashes only observable state — alive tuples, member rows in
        arrival order, thresholds, the cover assignment, counters —
        never physical layout (tree shape, array capacities, free-list
        or adjacency order). Two engines that reached the same logical
        state through different execution paths (cold start vs restore,
        batched vs sequential) digest identically; this is the parity
        check behind crash recovery.
        """
        h = hashlib.sha256()

        def absorb(name: str, arr: Any) -> None:
            a = np.ascontiguousarray(arr)
            h.update(f"{name}:{a.dtype.str}:{a.shape}".encode())
            h.update(a.tobytes())

        absorb("config", np.asarray(
            [self._k, self._r, self._m, self._m_max], dtype=np.int64))
        absorb("eps", np.asarray([self._eps]))
        ids, pts = self._db.snapshot()
        order = np.argsort(ids)
        absorb("db_ids", ids[order])
        absorb("db_points", pts[order])
        for name, arr in self._topk.logical_arrays():
            absorb("topk_" + name, arr)
        for name, arr in self._cover.logical_arrays():
            absorb("cover_" + name, arr)
        # reprolint: disable=RPL007 -- keys sorted: digest input is ordered
        for key in sorted(self._stats):
            absorb("stat_" + key,
                   np.asarray([self._stats[key]], dtype=np.int64))
        absorb("stabilize_steps", np.asarray(
            [self._cover.stabilize_steps], dtype=np.int64))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Updates (Algorithm 3)
    # ------------------------------------------------------------------
    def insert(self, point: ArrayLike) -> int:
        """Process ``Δ_t = <p, +>``; returns the new tuple id."""
        fresh_start = len(self._db) == 0
        pid, log = self._topk.insert_log(point)
        self._absorb_insert_deltas(log, fresh_start)
        return pid

    def _absorb_insert_deltas(self, log: DeltaLog,
                              fresh_start: bool) -> None:
        """Cover-layer half of one insertion (shared with batching)."""
        self._stats["inserts"] += 1
        self._stats["deltas"] += len(log)
        if fresh_start:
            self._rebuild_cover()
        else:
            self._apply_deltas(log)
        if self._cover.solution_size() != self._r:
            self._update_m()

    def apply_batch(self, ops: Sequence[Any]) -> list[int | None]:
        """Process a workload slice; returns per-op ids (None = delete).

        Equivalent to applying each :class:`~repro.data.Operation` with
        :meth:`insert` / :meth:`delete` in order — same final result,
        same statistics — but runs of same-kind operations flow through
        the top-k maintainer's batched cursors: insert runs bulk-load
        the database and tuple index and score the whole run with one
        ``(batch × M)`` GEMM; delete runs bulk-remove the victims and
        stage tuple-index tombstones, repairing top-k sets in
        vectorized waves. The membership deltas are still materialized
        per operation and fed to the set-cover layer in arrival order
        (the stable cover is history-dependent, so coalescing across
        operations would change the result).
        """
        out: list[int | None] = []
        for run in iter_op_runs(ops):
            if run[0].kind != INSERT:
                cursor = self._topk.begin_delete_run(
                    [op.tuple_id for op in run])
                for op in run:
                    n_after = cursor.n_before - 1
                    log = cursor.step_log()
                    self._absorb_delete_deltas(int(op.tuple_id), log,
                                               n_after)
                    out.append(None)
                continue
            cursor = self._topk.begin_insert_run(
                np.asarray([op.point for op in run]))
            for _ in run:
                fresh_start = cursor.n_before == 0
                pid, log = cursor.step_log()
                self._absorb_insert_deltas(log, fresh_start)
                out.append(pid)
        return out

    def delete(self, tuple_id: int) -> None:
        """Process ``Δ_t = <p, ->``."""
        log = self._topk.delete_log(tuple_id)
        self._absorb_delete_deltas(int(tuple_id), log, len(self._db))

    def delete_many(self, tuple_ids: Iterable[int]) -> None:
        """Process a batch of deletions through the batched pipeline.

        Same final state and statistics as calling :meth:`delete` per
        id, but the database removal is one bulk operation and the
        top-k repairs run as waves (see
        :meth:`ApproxTopKIndex.begin_delete_run`).
        """
        ids = [int(t) for t in tuple_ids]
        if not ids:
            return
        cursor = self._topk.begin_delete_run(ids)
        for tid in ids:
            n_after = cursor.n_before - 1
            log = cursor.step_log()
            self._absorb_delete_deltas(tid, log, n_after)

    def _absorb_delete_deltas(self, tuple_id: int, log: DeltaLog,
                              n_db: int) -> None:
        """Cover-layer half of one deletion (shared with batching).

        ``n_db`` is the database size as of this operation (batched
        runs empty the database up front, so ``len(db)`` would run
        ahead).
        """
        self._stats["deletes"] += 1
        self._stats["deltas"] += len(log)
        if n_db == 0:
            self._cover = StableSetCover()
            self._m = self._r
            return
        # Additions first so every element keeps a containing set, then
        # removals of *other* tuples (numerical edge cases), finally the
        # wholesale removal of S(p) with reassignment (Alg. 3 lines 9-12).
        # The whole burst is one cover batch: violations queue up and a
        # single stabilize pass repairs the solution at the end.
        u, pid, kind = log.columns()
        active = u < self._m
        adds = active & (kind > 0)
        removes = active & (kind < 0) & (pid != tuple_id)
        cover = self._cover
        started = cover.begin_batch()
        try:
            self._apply_delta_rows(u[adds].tolist(), pid[adds].tolist(),
                                   kind[adds].tolist())
            self._apply_delta_rows(u[removes].tolist(),
                                   pid[removes].tolist(),
                                   kind[removes].tolist())
            cover.remove_set(tuple_id)
        finally:
            cover.end_batch(started)
        if self._cover.solution_size() != self._r:
            self._update_m()

    def verify(self, *, deep: bool = False) -> None:
        """Self-check all maintained invariants; raises AssertionError.

        Cheap checks (always): the result is a set of alive tuples, the
        cover is a feasible *stable* cover (Definition 2), the active
        universe is exactly the prefix ``[0, m)``, and every active
        utility with a non-empty approximate top-k is covered by the
        result (the feasibility core of Theorem 2).

        ``deep=True`` additionally recomputes every ``Φ_{k,ε}`` from the
        raw database (O(M·n)) and compares — the full §II-A membership
        invariant. Intended for tests and debugging, not hot paths.
        """
        result = set(self.result())
        for pid in sorted(result):
            assert pid in self._db, f"result tuple {pid} not alive"
        assert self._cover.is_cover(), "cover infeasible"
        assert self._cover.is_stable(), "cover violates Definition 2"
        if len(self._db) > 0:
            assert self._cover.universe == frozenset(range(self._m)), \
                "active universe is not the prefix [0, m)"
            for u_idx in range(self._m):
                members = set(self._topk.members_of(u_idx))
                assert not members or members & result, \
                    f"utility {u_idx} uncovered by the result"
        if not deep:
            return
        ids, pts = self._db.snapshot()
        for u_idx in range(self._m_max):
            u = self._topk.utility(u_idx)
            members = set(self._topk.members_of(u_idx))
            if ids.size == 0:
                assert members == set()
                continue
            scores = pts @ u
            if ids.size <= self._k:
                tau = 0.0
            else:
                kth = float(np.partition(scores, ids.size - self._k)
                            [ids.size - self._k])
                tau = (1.0 - self._eps) * kth
            expect = {int(ids[row])
                      for row in np.flatnonzero(scores >= tau - SCORE_TOL)}
            for pid in sorted(members ^ expect):
                score = float(self._db.point(pid) @ u)
                assert abs(score - tau) < 1e-9, (
                    f"membership drift at utility {u_idx}, tuple {pid}")

    def update(self, tuple_id: int, point: ArrayLike) -> int:
        """Process a value update as deletion + insertion (§II-B).

        Returns the new tuple id of the updated tuple (ids are never
        reused, so the tuple gets a fresh identity).
        """
        self.delete(tuple_id)
        return self.insert(point)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _membership_prefix(self, m: int) -> dict[int, set[int]]:
        """Set system restricted to the first ``m`` utilities.

        Iterates ``members_of`` (the (score, id)-sorted view) rather
        than the cheaper raw member rows on purpose: the resulting dict
        key order — and with it the construction order of the cover's
        internal sets — is part of the engine's determinism contract,
        because the stable cover is history-dependent.
        """
        sets: dict[int, set[int]] = {}
        for u_idx in range(m):
            for pid in self._topk.members_of(u_idx):
                sets.setdefault(pid, set()).add(u_idx)
        return sets

    def _initialize(self) -> int:
        """Algorithm 2: binary search ``m`` so the greedy cover has r sets.

        Probe sizes come from :func:`greedy_cover_size` over the raw
        member-id arrays — the same selection rule as the stateful
        greedy, without building any Python set/dict state — so only
        the final chosen ``m`` pays for a full cover construction.
        """
        rows = [self._topk.member_row(u) for u in range(self._m_max)]
        lo, hi = self._r, self._m_max
        chosen_m: int | None = None
        fallback: tuple[int, int] | None = None  # (size distance, m)
        while lo <= hi:
            m = (lo + hi) // 2
            size = greedy_cover_size(rows[:m])
            dist = abs(size - self._r)
            if fallback is None or dist < fallback[0] or \
                    (dist == fallback[0] and m > fallback[1]):
                fallback = (dist, m)
            if size == self._r or m == self._m_max:
                chosen_m = m
                break
            if size < self._r:
                lo = m + 1
            else:
                hi = m - 1
        if chosen_m is None:
            chosen_m = fallback[1] if fallback is not None else self._r
        self._cover = StableSetCover()
        self._cover.build(self._membership_prefix(chosen_m))
        return chosen_m

    def _rebuild_cover(self) -> None:
        """Fresh greedy cover over the active prefix (edge-case path)."""
        self._stats["cover_rebuilds"] += 1
        self._cover = StableSetCover()
        membership = self._membership_prefix(self._m)
        if membership:
            self._cover.build(membership)

    def _apply_delta_rows(self, us: list[int], ps: list[int],
                          ks: list[int]) -> None:
        """Feed ordered (elem, set, kind) delta rows to the cover.

        The top-k maintainer emits deltas in natural runs — one tuple
        joining many utilities (an insertion's reach), or one utility
        gaining/losing many tuples (evictions and repairs) — so the
        scan hands each maximal run to the cover's bulk operation
        instead of one σ at a time. Must be called inside a cover
        batch; run grouping does not change the result (insertions make
        no assignment decisions, and a removal run reassigns its
        element once at the end, which is the documented group
        semantics).
        """
        cover = self._cover
        n = len(us)
        i = 0
        while i < n:
            k0, u0, p0 = ks[i], us[i], ps[i]
            j = i + 1
            if j < n and ks[j] == k0 and ps[j] == p0 and us[j] != u0:
                while j < n and ks[j] == k0 and ps[j] == p0:
                    j += 1
                if k0 > 0:
                    cover.add_elems_to_set(us[i:j], p0)
                else:
                    for u_idx in us[i:j]:
                        cover.remove_from_set(u_idx, p0)
                i = j
                continue
            while j < n and ks[j] == k0 and us[j] == u0:
                j += 1
            if k0 > 0:
                cover.add_elem_to_sets(u0, ps[i:j])
            else:
                cover.remove_elem_from_sets(u0, ps[i:j])
            i = j

    def _apply_deltas(self, log: DeltaLog) -> None:
        """Translate top-k membership deltas into Algorithm 1 operations.

        One operation's delta burst runs as a single cover batch, so the
        violation queue is drained once at the end instead of after
        every σ.
        """
        u, pid, kind = log.columns()
        if u.size == 0:
            return
        keep = u < self._m
        u, pid, kind = u[keep], pid[keep], kind[keep]
        cover = self._cover
        started = cover.begin_batch()
        try:
            adds = kind > 0
            add_pids = pid[adds]
            if add_pids.size and (add_pids == add_pids[0]).all():
                # Insert-shaped burst: every addition is the new tuple
                # joining its reached utilities. Additions commute with
                # the eviction removals under a deferred stabilize
                # (removals read only levels and φ, which additions
                # never touch; each utility's own addition already
                # precedes its evictions in the log), so the whole
                # reach is installed with one vectorized call.
                cover.add_elems_to_set(u[adds].tolist(), int(add_pids[0]))
                rem = ~adds
                self._apply_delta_rows(u[rem].tolist(), pid[rem].tolist(),
                                       kind[rem].tolist())
            else:
                self._apply_delta_rows(u.tolist(), pid.tolist(),
                                       kind.tolist())
        finally:
            cover.end_batch(started)

    def _update_m(self) -> None:
        """Algorithm 4: resize the active utility prefix until |C| = r."""
        m_before = self._m
        while self._cover.solution_size() < self._r and self._m < self._m_max:
            u_idx = self._m
            members = self._topk.members_of(u_idx)
            if not members:
                break  # database empty; nothing to cover with
            self._cover.add_element(u_idx, members)
            self._m += 1
        while self._cover.solution_size() > self._r and self._m > self._r:
            self._m -= 1
            self._cover.remove_element(self._m)
        if self._m != m_before:
            self._stats["m_changes"] += 1
