"""Dynamic set cover with *stable* solutions (Algorithm 1 of the paper).

A set-cover solution ``C`` assigns every universe element ``u`` to one
set ``φ(u) ∈ C`` containing it; ``cov(S)`` is the set of elements
assigned to ``S``. Sets are organized in levels: ``S ∈ L_j`` iff
``2^j <= |cov(S)| < 2^{j+1}``. The solution is **stable**
(Definition 2) when

1. every set sits in the level matching its cover size, and
2. no candidate set ``S ∈ 𝒮`` (in the solution or not) has
   ``|S ∩ A_j| >= 2^{j+1}`` for any level ``j``, where ``A_j`` is the set
   of elements assigned at level ``j``.

Theorem 1: any stable solution is ``(2 + 2·log2 m)``-approximate.

This implementation supports the four operations of Algorithm 1 —
element insertion/removal in the universe and element insertion/removal
in a candidate set — plus whole-set removal (needed when a tuple is
deleted).

Storage layout
--------------
Elements and sets are identified by **small nonnegative integers**
(FD-RMS uses utility indices and tuple ids; both are dense), and every
piece of per-element / per-set state lives in flat NumPy arrays indexed
by those ids — the same structure-of-arrays discipline as
:class:`repro.core.topk.MemberStore`:

* the membership relation is a pair of adjacency tables (id-indexed
  lists of integer arrays with amortized-doubling growth and
  swap-removal), one per direction;
* the solution state is four id-indexed arrays: ``φ`` (assigned set or
  -1), the element's assignment level, the set's level (-1 = not in
  ``C``), and ``|cov(S)|``;
* instead of materialized per-(set, level) buckets, a dense
  ``(sets × levels)`` **count matrix** tracks ``|S ∩ A_j|``; a bucket's
  members are recovered on demand (one vectorized filter of the set's
  member row) only when STABILIZE actually absorbs it;
* the Condition-2 dirty queue is a binary heap of packed ``(level <<
  48) | set_id`` integer keys deduplicated by a ``(sets × levels)``
  boolean matrix.

``frozenset`` views of elements/sets exist only at the public API
boundary (:meth:`solution`, :meth:`members`, :meth:`sets_of`, ...); no
internal step builds a Python set or dict.

Determinism contract
--------------------
Every choice the maintenance makes is canonical in the ids — ties
always break toward the **smallest id**: GREEDY ties (largest current
gain first), the reassignment target of an orphaned element (highest
level first, then smallest set id), the processing order of orphans
and of absorbed bucket members (ascending element id), and the drain
order of the violation queue (lowest level, then smallest set id).
The maintained solution is therefore a pure function of the operation
history — independent of hash-table layout, platform, or interpreter —
which is what makes replay determinism digests reproducible by
specification.

To find Condition-2 violations without scanning all of ``𝒮``, any
count-matrix cell reaching ``2^{j+1}`` enqueues a violation, and
STABILIZE drains the queue (lowest level first). A step cap guards the
(practically unreached) worst case by falling back to a fresh greedy
solution, which is stable by Lemma 1. :meth:`batch` defers the drain
across a group of membership operations — the engine wraps each tuple
update in one batch, so a single operation's burst of membership deltas
pays **one** stabilize pass instead of one per delta.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Iterator, Mapping
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro._types import AnyArray, Int64Array

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Bits reserved for the set id inside a packed dirty-queue key; the
#: level occupies the bits above. Heap order on the packed integer is
#: exactly the lexicographic (level, set id) order Algorithm 1 wants.
_KEY_BITS = 48


def _level_of(size: int) -> int:
    """Level index ``j`` with ``2^j <= size < 2^{j+1}`` (size >= 1)."""
    return size.bit_length() - 1


def _check_id(key: Any, kind: str) -> int:
    if type(key) is int:  # fast path: the engine passes plain ints
        if key >= 0:
            return key
        raise ValueError(f"{kind} ids must be nonnegative, got {key}")
    if isinstance(key, (bool, np.bool_)) or not isinstance(
            key, (int, np.integer)):
        raise TypeError(f"{kind} ids must be nonnegative ints, "
                        f"got {key!r}")
    key = int(key)
    if key < 0:
        raise ValueError(f"{kind} ids must be nonnegative, got {key}")
    return key


def _counting_greedy(flat: Int64Array, lens: AnyArray, n_sets: int,
                     select: Callable[[AnyArray], int]) -> list[int]:
    """Shared GREEDY kernel over a flat CSR set system.

    ``flat`` holds, element-major, the dense set index of every
    (element, set) membership pair; ``lens`` the per-element row
    lengths. ``select(gains)`` picks the next dense set index given the
    current uncovered-gain vector (raising :class:`ValueError` when no
    positive gain remains). Returns the dense selection order; gains are
    maintained with counting updates, so the whole run is
    O(total membership) plus the selection rule's own cost. Both the
    size-only probe (:func:`greedy_cover_size`) and the stateful build
    (:meth:`StableSetCover._select_greedy`) run on this kernel — only
    the selection rule differs.
    """
    n_elems = lens.shape[0]
    eptr = np.r_[0, np.cumsum(lens)]
    counts = np.bincount(flat, minlength=n_sets)
    gains = counts.copy()
    # CSR set -> elements: stable sort keeps element-major pair order.
    order = np.argsort(flat, kind="stable")
    set_elems = np.repeat(np.arange(n_elems, dtype=np.intp), lens)[order]
    sptr = np.r_[0, np.cumsum(counts)]
    covered = np.zeros(n_elems, dtype=bool)
    n_uncovered = n_elems
    selection: list[int] = []
    while n_uncovered:
        j = select(gains)
        row = set_elems[sptr[j]:sptr[j + 1]]
        won = row[~covered[row]]
        covered[won] = True
        n_uncovered -= int(won.size)
        # reprolint: disable=RPL008 -- one gather per selected set; total membership bound
        touched = np.concatenate([flat[eptr[e]:eptr[e + 1]]
                                  for e in won.tolist()])
        np.subtract.at(gains, touched, 1)
        selection.append(j)
    return selection


def _select_max_gain(gains: AnyArray) -> int:
    """Largest gain, ties toward the smallest dense index (= smallest id)."""
    j = int(np.argmax(gains))
    # reprolint: disable=RPL002 -- int coverage count (bool sum); == 0 is exact
    if gains[j] == 0:
        raise ValueError("greedy failed: some element is uncoverable")
    return j


def greedy_cover_size(elem_rows: Iterable[AnyArray]) -> int:
    """Solution size of the GREEDY cover over an array set system.

    ``elem_rows[e]`` is an integer array of the set ids containing
    element ``e``. The selection rule is exactly the one of
    :meth:`StableSetCover.build` — largest current uncovered-gain first,
    ties toward the smallest set id (``np.unique`` sorts, so the dense
    argmax tie-break matches the stateful build's) — so the returned
    size equals ``cover.build(...); cover.solution_size()`` without
    paying for any membership state. FD-RMS uses this for the
    Algorithm 2 binary search, where only the size of each probe's
    cover matters.
    """
    n_elems = len(elem_rows)
    if n_elems == 0:
        return 0
    lens = np.fromiter((r.shape[0] for r in elem_rows), np.intp, n_elems)
    if not lens.all():
        raise ValueError("greedy failed: some element is uncoverable")
    flat_sids = np.concatenate(elem_rows)
    sids, dense = np.unique(flat_sids, return_inverse=True)
    return len(_counting_greedy(dense, lens, sids.size, _select_max_gain))


class _Adjacency:
    """Id-indexed rows of integer ids with swap-removal.

    One instance per membership direction (element -> owning sets and
    set -> member elements). Rows grow by amortized doubling; removal
    swaps the last entry into the vacated slot, so rows are unordered —
    every consumer that needs a canonical order sorts the (small) slice
    it looks at. With ``track=True`` a position map shadows each row,
    making the σ-dedup membership test and each removal O(1) instead of
    an array scan (element rows hold every tuple of the utility's
    approximate top-k, which is large at scale); the maps carry no
    ordered state — every decision reads the arrays.
    """

    __slots__ = ("_rows", "_lens", "_pos")

    def __init__(self, *, track: bool = False) -> None:
        self._rows: list[Int64Array | None] = []
        self._lens: list[int] = []
        self._pos: list[dict[int, int] | None] | None = [] if track else None

    def ensure(self, idx: int) -> None:
        if idx < len(self._rows):
            return
        grow = idx + 1 - len(self._rows)
        self._rows.extend([None] * grow)
        self._lens.extend([0] * grow)
        if self._pos is not None:
            self._pos.extend([None] * grow)

    def degree(self, idx: int) -> int:
        if idx >= len(self._rows):
            return 0
        return self._lens[idx]

    def row(self, idx: int) -> Int64Array:
        """The ids adjacent to ``idx`` (an unordered array view)."""
        if idx >= len(self._rows) or self._rows[idx] is None:
            return _EMPTY_IDS
        return self._rows[idx][: self._lens[idx]]

    def contains(self, idx: int, other: int) -> bool:
        if self._pos is not None:
            if idx >= len(self._rows) or self._pos[idx] is None:
                return False
            return other in self._pos[idx]
        return bool((self.row(idx) == other).any())

    def _grow_row(self, idx: int, need: int) -> Int64Array:
        n = self._lens[idx]
        row = self._rows[idx]
        if row is None or need > row.shape[0]:
            grown = np.empty(max(4, need, 2 * n), dtype=np.int64)
            if n:
                grown[:n] = row[:n]
            row = self._rows[idx] = grown
        return row

    def add(self, idx: int, other: int) -> None:
        self.ensure(idx)
        n = self._lens[idx]
        row = self._grow_row(idx, n + 1)
        row[n] = other
        self._lens[idx] = n + 1
        if self._pos is not None:
            if self._pos[idx] is None:
                self._pos[idx] = {}
            self._pos[idx][other] = n

    def remove(self, idx: int, other: int) -> bool:
        """Drop ``other`` from row ``idx``; False when absent."""
        n = self.degree(idx)
        if n == 0:
            return False
        row = self._rows[idx]
        if self._pos is not None:
            pos = self._pos[idx]
            if pos is None:
                return False
            p = pos.pop(other, None)
            if p is None:
                return False
            last = int(row[n - 1])
            if p != n - 1:
                row[p] = last
                pos[last] = p
            self._lens[idx] = n - 1
            return True
        match = row[:n] == other
        p = int(match.argmax())
        if not match[p]:
            return False
        row[p] = row[n - 1]
        self._lens[idx] = n - 1
        return True

    def extend(self, idx: int, others: Int64Array) -> None:
        """Bulk-append ``others`` (all new to the row) to row ``idx``."""
        self.ensure(idx)
        n = self._lens[idx]
        need = n + others.shape[0]
        row = self._grow_row(idx, need)
        row[n:need] = others
        self._lens[idx] = need
        if self._pos is not None:
            pos = self._pos[idx]
            if pos is None:
                pos = self._pos[idx] = {}
            for p, other in enumerate(others.tolist(), start=n):
                pos[other] = p

    def append_each(self, idxs: list[int], other: int) -> None:
        """Append ``other`` to every row in ``idxs`` (one call, no dups)."""
        if not idxs:
            return
        self.ensure(max(idxs))
        rows, lens, poss = self._rows, self._lens, self._pos
        for idx in idxs:
            n = lens[idx]
            row = rows[idx]
            if row is None or n == row.shape[0]:
                # reprolint: disable=RPL008 -- amortized doubling; O(log n) allocs
                grown = np.empty(max(4, 2 * n), dtype=np.int64)
                if n:
                    grown[:n] = row[:n]
                row = rows[idx] = grown
            row[n] = other
            lens[idx] = n + 1
            if poss is not None:
                if poss[idx] is None:
                    poss[idx] = {}
                poss[idx][other] = n

    def remove_many(self, idx: int, others: Int64Array) -> Int64Array:
        """Drop every id in ``others`` present in row ``idx``.

        Returns the removed ids in row (arrival) order; absent ids are
        ignored.
        """
        n = self.degree(idx)
        if n == 0:
            return _EMPTY_IDS
        row = self._rows[idx]
        if self._pos is not None:
            # Position-indexed rows: O(group) swap-removals, but the
            # returned order must still be the pre-removal row order.
            pos = self._pos[idx]
            if pos is None:
                return _EMPTY_IDS
            hits = [(p, o) for o in others.tolist()
                    if (p := pos.get(o)) is not None]
            if not hits:
                return _EMPTY_IDS
            hits.sort()
            removed = np.asarray([o for _, o in hits], dtype=np.int64)
            for o in removed.tolist():
                p = pos.pop(o)
                last = int(row[n - 1])
                if p != n - 1:
                    row[p] = last
                    pos[last] = p
                n -= 1
            self._lens[idx] = n
            return removed
        hit = (row[:n, None] == others).any(axis=1)
        removed = row[:n][hit].copy()
        if removed.size:
            keep = row[:n][~hit]
            row[: keep.size] = keep
            self._lens[idx] = int(keep.size)
        return removed

    def clear(self, idx: int) -> None:
        if idx < len(self._rows):
            self._rows[idx] = None
            self._lens[idx] = 0
            if self._pos is not None:
                self._pos[idx] = None

    # -- persistence ---------------------------------------------------
    def export_rows(self) -> tuple[Int64Array, Int64Array]:
        """``(lens, flat)`` CSR packing of every row, in row order.

        Row order is preserved exactly: swap-removal makes it
        physically arbitrary but history-dependent, and a restored
        instance must take the same future paths as the exported one.
        """
        lens = np.asarray(self._lens, dtype=np.int64)
        rows = [self._rows[i][: int(lens[i])]
                for i in np.flatnonzero(lens).tolist()]
        flat = np.concatenate(rows) if rows else _EMPTY_IDS
        return lens, flat

    @classmethod
    def import_rows(cls, lens, flat, *, track: bool = False) -> "_Adjacency":
        """Rebuild from :meth:`export_rows`; position maps are derived."""
        adj = cls(track=track)
        lens = np.asarray(lens, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64).copy()
        if int(lens.sum()) != flat.shape[0]:
            raise ValueError("adjacency rows are inconsistent with lens")
        n = lens.shape[0]
        adj._lens = [int(x) for x in lens]
        adj._rows = [None] * n
        if track:
            adj._pos = [None] * n
        pos = 0
        for i in np.flatnonzero(lens).tolist():
            ln = int(lens[i])
            row = flat[pos:pos + ln]
            pos += ln
            adj._rows[i] = row
            if track:
                adj._pos[i] = {int(v): p for p, v in enumerate(row)}
        return adj


class StableSetCover:
    """A dynamically maintained, stable set-cover solution.

    Elements and sets are identified by small nonnegative integer ids
    (FD-RMS uses utility indices and tuple ids); all internal state is
    arrays indexed by those ids. The instance owns the membership
    relation: mutate it only through the public methods.
    """

    def __init__(self) -> None:
        self._reset()
        self.stabilize_steps = 0  # cumulative, for diagnostics/benchmarks

    def _reset(self) -> None:
        # Membership relation (the set system Σ). The owners side
        # carries the O(1) dedup shadow (σ arrive as raw deltas).
        self._owners = _Adjacency(track=True)   # elem -> sids
        self._members = _Adjacency()            # sid  -> elems
        self._elem_alive = np.zeros(0, dtype=bool)
        self._n_elems = 0
        # Solution state, id-indexed.
        self._phi = np.full(0, -1, dtype=np.int64)         # elem -> sid
        self._elem_level = np.full(0, -1, dtype=np.int64)  # elem -> j
        self._level = np.full(0, -1, dtype=np.int64)       # sid -> j
        self._cov_size = np.zeros(0, dtype=np.int64)       # sid -> |cov|
        self._n_solution = 0
        # |S ∩ A_j| counts and the dirty queue over them.
        self._bucket_counts = np.zeros((8, 0), dtype=np.int64)
        self._pending: list[int] = []        # heap of (j << 48) | sid
        self._pending_mask = np.zeros((8, 0), dtype=bool)
        self._deferred = False

    # ------------------------------------------------------------------
    # Array growth
    # ------------------------------------------------------------------
    def _ensure_elem(self, elem: int) -> None:
        cap = self._phi.shape[0]
        if elem < cap:
            return
        new_cap = max(elem + 1, 2 * cap, 16)
        self._phi = self._grow1(self._phi, new_cap, -1)
        self._elem_level = self._grow1(self._elem_level, new_cap, -1)
        alive = np.zeros(new_cap, dtype=bool)
        alive[:cap] = self._elem_alive
        self._elem_alive = alive
        self._owners.ensure(elem)

    def _ensure_sid(self, sid: int) -> None:
        cap = self._level.shape[0]
        if sid < cap:
            self._members.ensure(sid)
            return
        new_cap = max(sid + 1, 2 * cap, 16)
        self._level = self._grow1(self._level, new_cap, -1)
        self._cov_size = self._grow1(self._cov_size, new_cap, 0)
        levels = self._bucket_counts.shape[0]
        counts = np.zeros((levels, new_cap), dtype=np.int64)
        counts[:, :cap] = self._bucket_counts
        self._bucket_counts = counts
        mask = np.zeros((levels, new_cap), dtype=bool)
        mask[:, :cap] = self._pending_mask
        self._pending_mask = mask
        self._members.ensure(sid)

    def _ensure_level(self, j: int) -> None:
        levels = self._bucket_counts.shape[0]
        if j < levels:
            return
        new_levels = max(j + 1, 2 * levels)
        counts = np.zeros((new_levels, self._bucket_counts.shape[1]),
                          dtype=np.int64)
        counts[:levels] = self._bucket_counts
        self._bucket_counts = counts
        mask = np.zeros((new_levels, self._pending_mask.shape[1]),
                        dtype=bool)
        mask[:levels] = self._pending_mask
        self._pending_mask = mask

    @staticmethod
    def _grow1(arr: AnyArray, new_cap: int, fill: float) -> AnyArray:
        out = np.full(new_cap, fill, dtype=arr.dtype)
        out[: arr.shape[0]] = arr
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Flat-array snapshot of the full cover state (checkpointing).

        Only valid between operations: the dirty queue must be drained
        and no batch open, which every public entry point guarantees on
        return.
        """
        if self._pending or self._deferred:
            raise ValueError(
                "cannot export a set cover mid-batch or with pending work")
        owners_lens, owners_flat = self._owners.export_rows()
        members_lens, members_flat = self._members.export_rows()
        return {
            "owners_lens": owners_lens,
            "owners_flat": owners_flat,
            "members_lens": members_lens,
            "members_flat": members_flat,
            "elem_alive": self._elem_alive.copy(),
            "phi": self._phi.copy(),
            "elem_level": self._elem_level.copy(),
            "level": self._level.copy(),
            "cov_size": self._cov_size.copy(),
            "n_elems": np.int64(self._n_elems),
            "stabilize_steps": np.int64(self.stabilize_steps),
        }

    @classmethod
    def from_state(cls, state) -> "StableSetCover":
        """Rebuild a cover from :meth:`export_state` arrays.

        Bucket counts and the (empty) dirty queue are derived, not
        stored: ``|S ∩ A_j|`` is one scatter-add over the alive covered
        elements.
        """
        cover = cls()
        cover._owners = _Adjacency.import_rows(
            state["owners_lens"], state["owners_flat"], track=True)
        cover._members = _Adjacency.import_rows(
            state["members_lens"], state["members_flat"])
        cover._elem_alive = np.asarray(state["elem_alive"],
                                       dtype=bool).copy()
        cover._phi = np.asarray(state["phi"], dtype=np.int64).copy()
        cover._elem_level = np.asarray(state["elem_level"],
                                       dtype=np.int64).copy()
        cover._level = np.asarray(state["level"], dtype=np.int64).copy()
        cover._cov_size = np.asarray(state["cov_size"],
                                     dtype=np.int64).copy()
        n_elems = int(state["n_elems"])
        ecap, scap = cover._phi.shape[0], cover._level.shape[0]
        if not (cover._elem_alive.shape[0] == ecap
                == cover._elem_level.shape[0]
                and cover._cov_size.shape[0] == scap
                and 0 <= n_elems <= ecap):
            raise ValueError("set-cover state arrays are inconsistent")
        cover._n_elems = n_elems
        cover._n_solution = int((cover._level >= 0).sum())
        cover.stabilize_steps = int(state["stabilize_steps"])
        if ecap:
            cover._owners.ensure(ecap - 1)
        if scap:
            cover._members.ensure(scap - 1)
        levels = max(8, int(cover._elem_level.max(initial=-1)) + 1,
                     int(cover._level.max(initial=-1)) + 1)
        counts = np.zeros((levels, scap), dtype=np.int64)
        for elem in np.flatnonzero(cover._elem_alive).tolist():
            j = int(cover._elem_level[elem])
            if j >= 0:
                counts[j, cover._owners.row(elem)] += 1
        cover._bucket_counts = counts
        cover._pending = []
        cover._pending_mask = np.zeros((levels, scap), dtype=bool)
        return cover

    def logical_arrays(self):
        """Yield ``(name, array)`` pairs covering the logical state.

        Feeds the engine state digest. The membership relation is
        rendered canonically (owner rows sorted per element) because
        adjacency row order is physical; φ, levels and cover sizes are
        logical outputs of the stable-cover algorithm and hash as-is.
        """
        alive = np.flatnonzero(self._elem_alive)
        yield "alive_elems", alive
        yield "phi", self._phi[alive]
        yield "elem_level", self._elem_level[alive]
        yield "set_level", self._level
        yield "cov_size", self._cov_size
        owner_lens = np.asarray([self._owners.degree(int(e)) for e in alive],
                                dtype=np.int64)
        yield "owner_lens", owner_lens
        rows = [np.sort(self._owners.row(int(e))) for e in alive.tolist()]
        yield "owners_sorted", (np.concatenate(rows) if rows
                                else _EMPTY_IDS)
        yield "stabilize_steps", np.asarray([self.stabilize_steps],
                                            dtype=np.int64)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def universe(self) -> frozenset[int]:
        return frozenset(np.flatnonzero(self._elem_alive).tolist())

    def solution(self) -> frozenset[int]:
        """The sets currently in the cover ``C``."""
        return frozenset(np.flatnonzero(self._level >= 0).tolist())

    def solution_size(self) -> int:
        return self._n_solution

    def cover_of(self, sid: int) -> frozenset[int]:
        """``cov(S)`` of a set (empty if not in the solution)."""
        sid = _check_id(sid, "set")
        if sid >= self._level.shape[0] or self._level[sid] < 0:
            return frozenset()
        return frozenset(np.flatnonzero(self._phi == sid).tolist())

    def assignment(self, elem: int) -> int | None:
        """``φ(elem)`` — the covering set of an element."""
        elem = _check_id(elem, "element")
        if elem >= self._phi.shape[0] or self._phi[elem] < 0:
            raise KeyError(elem)
        return int(self._phi[elem])

    def sets_of(self, elem: int) -> frozenset[int]:
        elem = _check_id(elem, "element")
        return frozenset(self._owners.row(elem).tolist())

    def members(self, sid: int) -> frozenset[int]:
        sid = _check_id(sid, "set")
        return frozenset(self._members.row(sid).tolist())

    # ------------------------------------------------------------------
    # Bulk (re)construction — GREEDY of Algorithm 1
    # ------------------------------------------------------------------
    def build(self, membership: Mapping[int, Iterable[int]]) -> None:
        """Install set system ``membership`` (sid -> iterable of elems)
        and compute a fresh greedy solution (stable by Lemma 1).

        Elements only enter the universe through a containing set, so a
        freshly built system cannot hold an uncoverable element; that
        invariant is asserted by :meth:`is_cover` (and, transitively, by
        ``FDRMS.verify``) rather than re-checked here.
        """
        self._reset()
        # reprolint: disable=RPL001 -- insertion order IS the canonical build order
        for sid, elems in membership.items():
            sid = _check_id(sid, "set")
            self._ensure_sid(sid)
            for elem in elems:
                elem = _check_id(elem, "element")
                self._ensure_elem(elem)
                if not self._elem_alive[elem]:
                    self._elem_alive[elem] = True
                    self._n_elems += 1
                if not self._owners.contains(elem, sid):
                    self._owners.add(elem, sid)
                    self._members.add(sid, elem)
        self._greedy()

    def rebuild(self) -> None:
        """Recompute the solution greedily from the current membership."""
        self._greedy()

    def _select_greedy(self, uncovered: AnyArray) -> list[int]:
        """GREEDY selection order over the flat membership arrays.

        Selects the set with the largest *current* gain, ties toward
        the smaller set id; gains are maintained as a dense counting
        vector, and a lazy heap (keyed by set id) only arbitrates ties
        — exactly the classic lazy-heap greedy, without recomputing any
        ``len(set & set)`` per pop.
        """
        elems = np.flatnonzero(uncovered)
        if elems.size == 0:
            return []
        rows = [self._owners.row(e) for e in elems.tolist()]
        lens = np.fromiter((r.shape[0] for r in rows), np.intp, elems.size)
        flat = np.concatenate(rows) if rows else _EMPTY_IDS
        n_sets = self._level.shape[0]
        heap = [(-int(g), sid) for sid, g in enumerate(
            np.bincount(flat, minlength=n_sets).tolist()) if g > 0]
        heapq.heapify(heap)

        def select(gains: AnyArray) -> int:
            while heap:
                neg_g, sid = heapq.heappop(heap)
                actual = int(gains[sid])
                if actual == 0:
                    continue
                if actual != -neg_g:
                    heapq.heappush(heap, (-actual, sid))
                    continue
                return sid
            raise ValueError("greedy failed: some element is uncoverable")

        return _counting_greedy(flat.astype(np.intp), lens, n_sets, select)

    def _greedy(self) -> None:
        self._phi.fill(-1)
        self._elem_level.fill(-1)
        self._level.fill(-1)
        self._cov_size.fill(0)
        self._n_solution = 0
        self._bucket_counts.fill(0)
        self._pending_mask.fill(False)
        self._pending.clear()
        uncovered = self._elem_alive.copy()
        for sid in self._select_greedy(uncovered):
            mem = self._members.row(sid)
            won = np.sort(mem[uncovered[mem]])
            if won.size == 0:
                continue
            self._phi[won] = sid
            uncovered[won] = False
            self._cov_size[sid] = won.size
            j = _level_of(int(won.size))
            self._level[sid] = j
            self._n_solution += 1
            self._ensure_level(j)
            self._elem_level[won] = j
            # reprolint: disable=RPL008 -- cold-build gather, not a per-op path
            owners = np.concatenate([self._owners.row(e)
                                     for e in won.tolist()])
            np.add.at(self._bucket_counts[j], owners, 1)
            cap = 1 << (j + 1)
            for s in np.unique(owners).tolist():
                if self._bucket_counts[j, s] >= cap:
                    self._queue_push(s, j)
        if uncovered.any():
            raise ValueError("greedy failed: some element is uncoverable")
        self._drain()

    # ------------------------------------------------------------------
    # Dynamic operations (the four σ of Algorithm 1 + whole-set removal)
    # ------------------------------------------------------------------
    def begin_batch(self) -> bool:
        """Start deferring STABILIZE; returns False if already deferred.

        Pair with :meth:`end_batch` (pass the returned flag) — or use
        the :meth:`batch` context manager. Split out as plain calls
        because the engine opens a batch on every tuple update, where
        generator-based context managers are measurable overhead.
        """
        if self._deferred:
            return False
        self._deferred = True
        return True

    def end_batch(self, started: bool = True) -> None:
        """Stop deferring and run the single stabilize pass."""
        if not started:
            return
        self._deferred = False
        self._drain()

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Defer STABILIZE to the end of a group of operations.

        Inside the context, the dynamic operations record Condition-2
        violations but do not drain the queue; one stabilize pass runs
        on exit. The engine wraps each tuple update (a burst of
        membership deltas plus, for deletions, a whole-set removal) in
        one batch — bulk set-cover repair in a single pass. Nested
        batches are flattened into the outermost one.
        """
        started = self.begin_batch()
        try:
            yield self
        finally:
            self.end_batch(started)

    def add_to_set(self, elem: int, sid: int) -> None:
        """σ = (u, S, +): element ``elem`` joins candidate set ``sid``."""
        elem = _check_id(elem, "element")
        sid = _check_id(sid, "set")
        if elem >= self._elem_alive.shape[0] or not self._elem_alive[elem]:
            raise KeyError(f"element {elem!r} is not in the universe")
        if self._owners.contains(elem, sid):
            return
        self._ensure_sid(sid)
        self._owners.add(elem, sid)
        self._members.add(sid, elem)
        lvl = int(self._elem_level[elem])
        if lvl >= 0:
            self._bucket_counts[lvl, sid] += 1
            self._queue_check(sid, lvl)
        self._stabilize()

    def remove_from_set(self, elem: int, sid: int) -> None:
        """σ = (u, S, -): element ``elem`` leaves candidate set ``sid``.

        If ``elem`` was assigned to ``sid``, it is reassigned to another
        containing set (which must exist, else :class:`ValueError`).
        """
        elem = _check_id(elem, "element")
        sid = _check_id(sid, "set")
        if not self._owners.remove(elem, sid):
            return  # no-op if absent
        self._members.remove(sid, elem)
        lvl = int(self._elem_level[elem])
        if lvl >= 0:
            self._bucket_counts[lvl, sid] -= 1
        if self._phi[elem] == sid:
            self._unassign(elem, sid)
            self._assign_somewhere(elem)
        self._stabilize()

    def add_elems_to_set(self, elems: Iterable[int], sid: int) -> None:
        """Bulk σ⁺: every element of ``elems`` joins candidate set ``sid``.

        Equivalent to ``add_to_set(e, sid)`` per element inside one
        :meth:`batch` — membership insertion makes no assignment
        decisions, so bulk application is a pure vectorization, not a
        semantic change. ``elems`` must be distinct universe elements
        that are not yet members of ``sid`` (the engine's delta streams
        guarantee both).
        """
        sid = _check_id(sid, "set")
        n_elems = len(elems)
        if n_elems == 0:
            return
        self._ensure_sid(sid)
        if n_elems <= 8:
            # Small groups: scalar updates beat array-call overhead.
            alive, elem_level = self._elem_alive, self._elem_level
            counts = self._bucket_counts
            for e in elems:
                if e < 0 or e >= alive.shape[0] or not alive[e]:
                    raise KeyError(f"element {e!r} is not in the universe")
            self._members.extend(sid, np.asarray(elems, dtype=np.int64))
            self._owners.append_each(list(elems), sid)
            for e in elems:
                lvl = int(elem_level[e])
                if lvl >= 0:
                    c = counts[lvl, sid] + 1
                    counts[lvl, sid] = c
                    if c >= (1 << (lvl + 1)):
                        self._queue_push(sid, lvl)
            self._stabilize()
            return
        elems_arr = np.asarray(elems, dtype=np.int64)
        bad = (elems_arr < 0) | (elems_arr >= self._elem_alive.shape[0])
        if bad.any():
            raise KeyError(f"element {int(elems_arr[bad][0])!r} is not "
                           "in the universe")
        alive = self._elem_alive[elems_arr]
        if not alive.all():
            missing = elems_arr[~alive][0]
            raise KeyError(f"element {int(missing)!r} is not in the "
                           "universe")
        self._members.extend(sid, elems_arr)
        self._owners.append_each(elems_arr.tolist(), sid)
        lv = self._elem_level[elems_arr]
        lv = lv[lv >= 0]
        if lv.size:
            hist = np.bincount(lv)
            levels = np.flatnonzero(hist)
            self._bucket_counts[: hist.size, sid] += hist
            for j in levels.tolist():
                self._queue_check(sid, int(j))
        self._stabilize()

    def add_elem_to_sets(self, elem: int, sids: Iterable[int]) -> None:
        """Bulk σ⁺: element ``elem`` joins every candidate set in ``sids``.

        Equivalent to ``add_to_set(elem, s)`` per set inside one
        :meth:`batch`; ``sids`` must be distinct sets not yet containing
        ``elem``.
        """
        elem = _check_id(elem, "element")
        if elem >= self._elem_alive.shape[0] or not self._elem_alive[elem]:
            raise KeyError(f"element {elem!r} is not in the universe")
        n_sids = len(sids)
        if n_sids == 0:
            return
        if min(sids) < 0:
            raise ValueError("set ids must be nonnegative")
        self._ensure_sid(max(sids))
        lvl = int(self._elem_level[elem])
        if n_sids <= 8:
            counts = self._bucket_counts
            self._owners.extend(elem, np.asarray(sids, dtype=np.int64))
            self._members.append_each(list(sids), elem)
            if lvl >= 0:
                cap = 1 << (lvl + 1)
                row = counts[lvl]
                for s in sids:
                    c = row[s] + 1
                    row[s] = c
                    if c >= cap:
                        self._queue_push(s, lvl)
            self._stabilize()
            return
        sids_arr = np.asarray(sids, dtype=np.int64)
        self._owners.extend(elem, sids_arr)
        self._members.append_each(sids_arr.tolist(), elem)
        if lvl >= 0:
            row = self._bucket_counts[lvl]
            row[sids_arr] += 1
            cap = 1 << (lvl + 1)
            hot = sids_arr[row[sids_arr] >= cap]
            for s in hot.tolist():
                self._queue_push(int(s), lvl)
        self._stabilize()

    def remove_elem_from_sets(self, elem: int, sids: Iterable[int]) -> None:
        """Bulk σ⁻: element ``elem`` leaves every set in ``sids``.

        All memberships are removed first; if the element's assigned
        set is among them, it is reassigned **once** against the
        remaining containing sets (a sequence of ``remove_from_set``
        calls may reassign repeatedly mid-burst; the engine applies a
        whole operation's removals as one group, so the single final
        reassignment is the canonical semantics). Absent memberships
        are ignored.
        """
        elem = _check_id(elem, "element")
        if elem >= self._elem_alive.shape[0] or not self._elem_alive[elem]:
            return
        if len(sids) == 0:
            return
        sids_arr = np.asarray(sids, dtype=np.int64)
        removed = self._owners.remove_many(elem, sids_arr)
        if removed.size == 0:
            return
        removed_list = removed.tolist()
        for s in removed_list:
            self._members.remove(s, elem)
        lvl = int(self._elem_level[elem])
        if lvl >= 0:
            row = self._bucket_counts[lvl]
            if len(removed_list) <= 8:
                for s in removed_list:
                    row[s] -= 1
            else:
                row[removed] -= 1
        phi = int(self._phi[elem])
        if phi >= 0 and phi in removed_list:
            self._unassign(elem, phi)
            self._assign_somewhere(elem)
        self._stabilize()

    def add_element(self, elem: int, member_sids: Iterable[int]) -> None:
        """σ = (u, U, +): a new element joins the universe.

        ``member_sids`` lists the candidate sets containing it (must be
        non-empty, otherwise no cover exists).
        """
        sids = sorted({_check_id(s, "set") for s in member_sids})
        if not sids:
            raise ValueError(f"element {elem!r} must belong to at least one set")
        elem = _check_id(elem, "element")
        self._ensure_elem(elem)
        if self._elem_alive[elem]:
            raise KeyError(f"element {elem!r} already in the universe")
        self._elem_alive[elem] = True
        self._n_elems += 1
        self._owners.clear(elem)
        self._phi[elem] = -1
        self._elem_level[elem] = -1
        for sid in sids:
            self._ensure_sid(sid)
            self._owners.add(elem, sid)
            self._members.add(sid, elem)
        self._assign_somewhere(elem)
        self._stabilize()

    def remove_element(self, elem: int) -> None:
        """σ = (u, U, -): an element leaves the universe entirely."""
        elem = _check_id(elem, "element")
        if elem >= self._elem_alive.shape[0] or not self._elem_alive[elem]:
            raise KeyError(f"element {elem!r} not in the universe")
        sid = int(self._phi[elem])
        if sid >= 0:
            self._unassign(elem, sid)
        for owner in self._owners.row(elem).tolist():
            self._members.remove(owner, elem)
        self._owners.clear(elem)
        self._elem_alive[elem] = False
        self._n_elems -= 1
        self._stabilize()

    def remove_set(self, sid: int) -> None:
        """Remove candidate set ``sid`` (tuple deletion in FD-RMS).

        Every element assigned to it is reassigned (in ascending
        element order); elements merely *containing* it lose the
        membership.
        """
        sid = _check_id(sid, "set")
        if sid >= self._level.shape[0] or self._members.degree(sid) == 0:
            return
        for elem in self._members.row(sid).tolist():
            self._owners.remove(elem, sid)
        self._members.clear(sid)
        self._bucket_counts[:, sid] = 0
        orphans = np.flatnonzero(self._phi == sid)
        if self._level[sid] >= 0:
            self._level[sid] = -1
            self._n_solution -= 1
        self._cov_size[sid] = 0
        for elem in orphans.tolist():
            self._phi[elem] = -1
            old = int(self._elem_level[elem])
            self._elem_level[elem] = -1
            if old >= 0:
                self._clear_elem_level(elem, old)
        for elem in orphans.tolist():
            self._assign_somewhere(elem)
        self._stabilize()

    # ------------------------------------------------------------------
    # Verification (used by tests; exhaustive, not fast)
    # ------------------------------------------------------------------
    def is_cover(self) -> bool:
        """Every universe element is assigned to a containing set."""
        for elem in np.flatnonzero(self._elem_alive).tolist():
            sid = int(self._phi[elem])
            if sid < 0 or not self._owners.contains(elem, sid):
                return False
        return True

    def is_stable(self) -> bool:
        """Exhaustively check Definition 2 (both conditions)."""
        for sid in np.flatnonzero(self._level >= 0).tolist():
            size = int(self._cov_size[sid])
            if size == 0 or self._level[sid] != _level_of(size):
                return False
        if int(self._cov_size[self._level < 0].sum()) != 0:
            return False
        max_level = int(self._elem_level.max(initial=-1))
        # reprolint: disable=RPL004 -- is_stable is a test/debug invariant check
        for sid in range(self._level.shape[0]):
            mem = self._members.row(sid)
            if mem.size == 0:
                continue
            lv = self._elem_level[mem]
            hist = np.bincount(lv[lv >= 0], minlength=max_level + 1)
            for j, count in enumerate(hist.tolist()):
                if count >= (1 << (j + 1)):
                    return False
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _queue_push(self, sid: int, j: int) -> None:
        if not self._pending_mask[j, sid]:
            self._pending_mask[j, sid] = True
            heapq.heappush(self._pending, (j << _KEY_BITS) | sid)

    def _queue_check(self, sid: int, j: int) -> None:
        if self._bucket_counts[j, sid] >= (1 << (j + 1)):
            self._queue_push(sid, j)

    def _set_elem_level(self, elem: int, new_j: int) -> None:
        """Move ``elem``'s assignment level to ``new_j`` in all counts."""
        old = int(self._elem_level[elem])
        if old == new_j:
            return
        if new_j >= self._bucket_counts.shape[0]:
            self._ensure_level(new_j)
        owners = self._owners.row(elem)
        counts = self._bucket_counts
        if old >= 0:
            counts[old][owners] -= 1
        row = counts[new_j]
        row[owners] += 1
        self._elem_level[elem] = new_j
        cap = 1 << (new_j + 1)
        chk = row[owners] >= cap
        if chk.any():
            for sid in owners[chk].tolist():
                self._queue_push(sid, new_j)

    def _move_elems_level(self, elems: Int64Array, new_j: int) -> None:
        """Vectorized :meth:`_set_elem_level` for a group of elements.

        Count-equivalent to moving each element in turn: the updates
        are additive, the target-level counts only grow during the
        group, and the dedup mask makes the queue pushes a set — so one
        scatter-add per direction replaces a per-element pass.
        """
        if new_j >= self._bucket_counts.shape[0]:
            self._ensure_level(new_j)
        counts = self._bucket_counts
        rows = [self._owners.row(e) for e in elems.tolist()]
        olds = self._elem_level[elems]
        all_owners = np.concatenate(rows)
        old_rep = np.repeat(olds, [r.shape[0] for r in rows])
        assigned = old_rep >= 0
        if assigned.any():
            np.subtract.at(counts, (old_rep[assigned],
                                    all_owners[assigned]), 1)
        row = counts[new_j]
        np.add.at(row, all_owners, 1)
        self._elem_level[elems] = new_j
        cap = 1 << (new_j + 1)
        touched = np.unique(all_owners)
        hot = touched[row[touched] >= cap]
        for sid in hot.tolist():
            self._queue_push(int(sid), new_j)

    def _clear_elem_level(self, elem: int, old_j: int) -> None:
        """Drop ``elem`` from the level counts (it became unassigned)."""
        self._bucket_counts[old_j][self._owners.row(elem)] -= 1

    def _unassign(self, elem: int, sid: int) -> None:
        """Remove ``elem`` from ``cov(sid)`` and relevel the donor."""
        self._cov_size[sid] -= 1
        self._phi[elem] = -1
        old = int(self._elem_level[elem])
        self._elem_level[elem] = -1
        if old >= 0:
            self._clear_elem_level(elem, old)
        self._relevel(sid)

    def _assign_somewhere(self, elem: int) -> None:
        """Assign ``elem`` to a containing set (RELEVEL included).

        Preference order: the containing set already in ``C`` at the
        highest level (minimizes churn and keeps |C| small), ties and
        the none-in-C case toward the smallest set id, which then joins
        ``C`` at level 0.
        """
        candidates = self._owners.row(elem)
        if candidates.size == 0:
            raise ValueError(f"element {elem!r} has no containing set; "
                             "cover would become infeasible")
        levels = self._level[candidates]
        best = int(candidates[levels == levels.max()].min())
        self._phi[elem] = best
        self._cov_size[best] += 1
        self._relevel(best)
        new_j = int(self._level[best])
        if self._elem_level[elem] != new_j:
            # RELEVEL kept the set's level; sync just the new arrival.
            self._set_elem_level(elem, new_j)

    def _relevel(self, sid: int) -> None:
        """RELEVEL of Algorithm 1: sync ``sid``'s level with |cov|."""
        size = int(self._cov_size[sid])
        in_sol = self._level[sid] >= 0
        if size == 0:
            if in_sol:
                self._level[sid] = -1
                self._n_solution -= 1
            return
        new_j = _level_of(size)
        if not in_sol:
            self._n_solution += 1
        if self._level[sid] == new_j:
            # Cover members were in sync before this size change; any
            # freshly assigned element is synced by its caller
            # (_assign_somewhere, the STABILIZE absorption).
            return
        self._level[sid] = new_j
        cov = np.flatnonzero(self._phi == sid)
        mism = cov[self._elem_level[cov] != new_j]
        if mism.size == 0:
            return
        if mism.size == 1:
            self._set_elem_level(int(mism[0]), new_j)
        else:
            self._move_elems_level(mism, new_j)

    def _stabilize(self) -> None:
        if not self._deferred:
            self._drain()

    def _drain(self) -> None:
        """STABILIZE of Algorithm 1, violation-queue driven.

        Processes Condition-2 violations lowest level first, then
        smallest set id; within one absorption, bucket members are
        absorbed in ascending element id order. A step cap (generous;
        never hit in our experiments) falls back to a fresh greedy
        solution, which Lemma 1 guarantees stable.
        """
        m = max(1, self._n_elems)
        cap = 64 + 16 * m * (m.bit_length() + 1)
        steps = 0
        while self._pending:
            key = heapq.heappop(self._pending)
            j, sid = key >> _KEY_BITS, key & ((1 << _KEY_BITS) - 1)
            self._pending_mask[j, sid] = False
            mem = self._members.row(sid)
            if mem.size == 0:
                continue
            if self._bucket_counts[j, sid] < (1 << (j + 1)):
                continue
            steps += 1
            self.stabilize_steps += 1
            if steps > cap:  # pragma: no cover - safety valve
                self.rebuild()
                return
            # Absorb S ∩ A_j into cov(S); donors shrink and relevel.
            bucket = np.sort(mem[self._elem_level[mem] == j])
            for elem in bucket.tolist():
                owner = int(self._phi[elem])
                if owner == sid:
                    continue
                if owner >= 0:
                    self._cov_size[owner] -= 1
                    old = int(self._elem_level[elem])
                    self._elem_level[elem] = -1
                    if old >= 0:
                        self._clear_elem_level(elem, old)
                    self._phi[elem] = -1
                    self._relevel(owner)
                self._phi[elem] = sid
                self._cov_size[sid] += 1
            self._relevel(sid)
            # RELEVEL skips the sync when the level is unchanged; the
            # absorbed arrivals still need their level set.
            new_j = int(self._level[sid])
            mism = bucket[self._elem_level[bucket] != new_j]
            if mism.size == 1:
                self._set_elem_level(int(mism[0]), new_j)
            elif mism.size:
                self._move_elems_level(mism, new_j)
