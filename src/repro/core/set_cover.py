"""Dynamic set cover with *stable* solutions (Algorithm 1 of the paper).

A set-cover solution ``C`` assigns every universe element ``u`` to one
set ``φ(u) ∈ C`` containing it; ``cov(S)`` is the set of elements
assigned to ``S``. Sets are organized in levels: ``S ∈ L_j`` iff
``2^j <= |cov(S)| < 2^{j+1}``. The solution is **stable**
(Definition 2) when

1. every set sits in the level matching its cover size, and
2. no candidate set ``S ∈ 𝒮`` (in the solution or not) has
   ``|S ∩ A_j| >= 2^{j+1}`` for any level ``j``, where ``A_j`` is the set
   of elements assigned at level ``j``.

Theorem 1: any stable solution is ``(2 + 2·log2 m)``-approximate.

This implementation supports the four operations of Algorithm 1 —
element insertion/removal in the universe and element insertion/removal
in a candidate set — plus whole-set removal (needed when a tuple is
deleted). To find Condition-2 violations without scanning all of ``𝒮``,
it maintains for every candidate set a partition of its member elements
by their *assignment level* (``_by_level``); any bucket reaching
``2^{j+1}`` enqueues a violation, and STABILIZE drains the queue
(lowest level first). A step cap guards the (practically unreached)
worst case by falling back to a fresh greedy solution, which is stable
by Lemma 1.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import numpy as np


def _level_of(size: int) -> int:
    """Level index ``j`` with ``2^j <= size < 2^{j+1}`` (size >= 1)."""
    return size.bit_length() - 1


def _counting_greedy(flat: np.ndarray, lens: np.ndarray, n_sets: int,
                     select) -> list[int]:
    """Shared GREEDY kernel over a flat CSR set system.

    ``flat`` holds, element-major, the dense set index of every
    (element, set) membership pair; ``lens`` the per-element row
    lengths. ``select(gains)`` picks the next dense set index given the
    current uncovered-gain vector (raising :class:`ValueError` when no
    positive gain remains). Returns the dense selection order; gains are
    maintained with counting updates, so the whole run is
    O(total membership) plus the selection rule's own cost. Both the
    size-only probe (:func:`greedy_cover_size`) and the stateful build
    (:meth:`StableSetCover._select_greedy`) run on this kernel — only
    the selection rule differs.
    """
    n_elems = lens.shape[0]
    eptr = np.r_[0, np.cumsum(lens)]
    counts = np.bincount(flat, minlength=n_sets)
    gains = counts.copy()
    # CSR set -> elements: stable sort keeps element-major pair order.
    order = np.argsort(flat, kind="stable")
    set_elems = np.repeat(np.arange(n_elems, dtype=np.intp), lens)[order]
    sptr = np.r_[0, np.cumsum(counts)]
    covered = np.zeros(n_elems, dtype=bool)
    n_uncovered = n_elems
    selection: list[int] = []
    while n_uncovered:
        j = select(gains)
        row = set_elems[sptr[j]:sptr[j + 1]]
        won = row[~covered[row]]
        covered[won] = True
        n_uncovered -= int(won.size)
        touched = np.concatenate([flat[eptr[e]:eptr[e + 1]]
                                  for e in won.tolist()])
        np.subtract.at(gains, touched, 1)
        selection.append(j)
    return selection


def _select_max_gain(gains: np.ndarray) -> int:
    """Largest gain, ties toward the smallest dense index (= smallest id)."""
    j = int(np.argmax(gains))
    if gains[j] == 0:
        raise ValueError("greedy failed: some element is uncoverable")
    return j


def greedy_cover_size(elem_rows) -> int:
    """Solution size of the GREEDY cover over an array set system.

    ``elem_rows[e]`` is an integer array of the set ids containing
    element ``e``. The selection rule is exactly the one of
    :meth:`StableSetCover.build` — largest current uncovered-gain first,
    ties toward the smallest set id (``np.unique`` sorts, so the dense
    argmax tie-break matches the heap's) — so the returned size equals
    ``cover.build(...); cover.solution_size()`` without paying for any
    Python set/dict state. FD-RMS uses this for the Algorithm 2 binary
    search, where only the size of each probe's cover matters.
    """
    n_elems = len(elem_rows)
    if n_elems == 0:
        return 0
    lens = np.fromiter((r.shape[0] for r in elem_rows), np.intp, n_elems)
    if not lens.all():
        raise ValueError("greedy failed: some element is uncoverable")
    flat_sids = np.concatenate(elem_rows)
    sids, dense = np.unique(flat_sids, return_inverse=True)
    return len(_counting_greedy(dense, lens, sids.size, _select_max_gain))


class StableSetCover:
    """A dynamically maintained, stable set-cover solution.

    Elements and sets are identified by hashable keys (FD-RMS uses
    integer utility indices and tuple ids). The instance owns the
    membership relation: mutate it only through the public methods.
    """

    def __init__(self) -> None:
        # Membership relation (the set system Σ).
        self._elem_sets: dict = defaultdict(set)   # elem -> {sid}
        self._set_elems: dict = defaultdict(set)   # sid  -> {elem}
        # Solution state.
        self._phi: dict = {}                       # elem -> sid
        self._cov: dict = defaultdict(set)         # sid  -> {elem}
        self._level: dict = {}                     # sid in C -> level j
        self._elem_level: dict = {}                # elem -> level of φ(elem)
        # Per-set partition of member elements by assignment level.
        self._by_level: dict = defaultdict(lambda: defaultdict(set))
        # Pending Condition-2 checks: heap of (j, sid) + dedup set.
        self._pending: list = []
        self._pending_keys: set = set()
        self.stabilize_steps = 0  # cumulative, for diagnostics/benchmarks

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def universe(self) -> frozenset:
        return frozenset(self._elem_sets.keys())

    def solution(self) -> frozenset:
        """The sets currently in the cover ``C``."""
        return frozenset(self._level.keys())

    def solution_size(self) -> int:
        return len(self._level)

    def cover_of(self, sid) -> frozenset:
        """``cov(S)`` of a set (empty if not in the solution)."""
        return frozenset(self._cov.get(sid, frozenset()))

    def assignment(self, elem):
        """``φ(elem)`` — the covering set of an element."""
        return self._phi[elem]

    def sets_of(self, elem) -> frozenset:
        return frozenset(self._elem_sets.get(elem, frozenset()))

    def members(self, sid) -> frozenset:
        return frozenset(self._set_elems.get(sid, frozenset()))

    # ------------------------------------------------------------------
    # Bulk (re)construction — GREEDY of Algorithm 1
    # ------------------------------------------------------------------
    def build(self, membership: dict) -> None:
        """Install set system ``membership`` (sid -> iterable of elems)
        and compute a fresh greedy solution (stable by Lemma 1).

        Elements only enter the universe through a containing set, so a
        freshly built system cannot hold an uncoverable element; that
        invariant is asserted by :meth:`is_cover` (and, transitively, by
        ``FDRMS.verify``) rather than re-checked here.
        """
        self._elem_sets = defaultdict(set)
        self._set_elems = defaultdict(set)
        for sid, elems in membership.items():
            for elem in elems:
                self._elem_sets[elem].add(sid)
                self._set_elems[sid].add(elem)
        self._greedy(set(self._elem_sets.keys()))

    def rebuild(self) -> None:
        """Recompute the solution greedily from the current membership."""
        self._greedy(set(self._elem_sets.keys()))

    def _select_greedy(self, uncovered: set) -> list:
        """GREEDY selection order, computed over flat integer arrays.

        Returns the sids the classic lazy-heap greedy would pick, in
        order: the heap pops entries by ``(-gain, sid)`` and re-keys
        stale ones downward, which selects the set with the largest
        *current* gain, ties toward the smaller sid. Here the per-pop
        ``len(set & set)`` recomputation is replaced by a dense gain
        vector maintained with counting updates; the heap (still keyed
        by raw sids, so any mutually comparable ids work) only arbitrates
        ties.
        """
        if not uncovered or not self._set_elems:
            return []
        sids = list(self._set_elems.keys())
        sid_index = {sid: j for j, sid in enumerate(sids)}
        flat: list[int] = []
        lens: list[int] = []
        for elem, owners in self._elem_sets.items():
            if elem not in uncovered:
                continue
            row = [sid_index[s] for s in owners]
            flat.extend(row)
            lens.append(len(row))
        if not lens:
            return []
        flat_a = np.asarray(flat, dtype=np.intp)
        lens_a = np.asarray(lens, dtype=np.intp)
        heap = [(-int(g), sid)
                for sid, g in zip(sids, np.bincount(flat_a,
                                                    minlength=len(sids)))
                if g > 0]
        heapq.heapify(heap)

        def select(gains: np.ndarray) -> int:
            while heap:
                neg_g, sid = heapq.heappop(heap)
                j = sid_index[sid]
                actual = int(gains[j])
                if actual == 0:
                    continue
                if actual != -neg_g:
                    heapq.heappush(heap, (-actual, sid))
                    continue
                return j
            raise ValueError("greedy failed: some element is uncoverable")

        selection = _counting_greedy(flat_a, lens_a, len(sids), select)
        return [sids[j] for j in selection]

    def _greedy(self, uncovered: set) -> None:
        self._phi = {}
        self._cov = defaultdict(set)
        self._level = {}
        self._elem_level = {}
        self._by_level = defaultdict(lambda: defaultdict(set))
        self._pending = []
        self._pending_keys = set()
        for sid in self._select_greedy(uncovered):
            won = self._set_elems[sid] & uncovered
            if not won:
                continue
            for elem in won:
                self._phi[elem] = sid
                self._cov[sid].add(elem)
            uncovered -= won
            j = _level_of(len(self._cov[sid]))
            self._level[sid] = j
            for elem in won:
                self._set_elem_level(elem, j)
        if uncovered:
            raise ValueError("greedy failed: some element is uncoverable")
        self._stabilize()

    # ------------------------------------------------------------------
    # Dynamic operations (the four σ of Algorithm 1 + whole-set removal)
    # ------------------------------------------------------------------
    def add_to_set(self, elem, sid) -> None:
        """σ = (u, S, +): element ``elem`` joins candidate set ``sid``."""
        if elem not in self._elem_sets:
            # Membership recorded even for elements outside the universe
            # view is not supported: callers add elements explicitly.
            raise KeyError(f"element {elem!r} is not in the universe")
        if sid in self._elem_sets[elem]:
            return
        self._elem_sets[elem].add(sid)
        self._set_elems[sid].add(elem)
        lvl = self._elem_level.get(elem)
        if lvl is not None:
            bucket = self._by_level[sid][lvl]
            bucket.add(elem)
            self._queue_check(sid, lvl)
        self._stabilize()

    def remove_from_set(self, elem, sid) -> None:
        """σ = (u, S, -): element ``elem`` leaves candidate set ``sid``.

        If ``elem`` was assigned to ``sid``, it is reassigned to another
        containing set (which must exist, else :class:`ValueError`).
        """
        if sid not in self._elem_sets.get(elem, ()):  # no-op if absent
            return
        self._elem_sets[elem].discard(sid)
        self._set_elems[sid].discard(elem)
        if not self._set_elems[sid]:
            del self._set_elems[sid]
        lvl = self._elem_level.get(elem)
        if lvl is not None and sid in self._by_level:
            self._by_level[sid][lvl].discard(elem)
        if self._phi.get(elem) == sid:
            self._unassign(elem, sid)
            self._assign_somewhere(elem)
        self._stabilize()

    def add_element(self, elem, member_sids) -> None:
        """σ = (u, U, +): a new element joins the universe.

        ``member_sids`` lists the candidate sets containing it (must be
        non-empty, otherwise no cover exists).
        """
        sids = set(member_sids)
        if not sids:
            raise ValueError(f"element {elem!r} must belong to at least one set")
        if elem in self._elem_sets:
            raise KeyError(f"element {elem!r} already in the universe")
        self._elem_sets[elem] = set(sids)
        for sid in sids:
            self._set_elems[sid].add(elem)
        self._assign_somewhere(elem)
        self._stabilize()

    def remove_element(self, elem) -> None:
        """σ = (u, U, -): an element leaves the universe entirely."""
        if elem not in self._elem_sets:
            raise KeyError(f"element {elem!r} not in the universe")
        sid = self._phi.get(elem)
        if sid is not None:
            self._unassign(elem, sid)
        for owner in self._elem_sets.pop(elem):
            self._set_elems[owner].discard(elem)
            if not self._set_elems[owner]:
                self._set_elems.pop(owner)
            if owner in self._by_level:
                lvl_map = self._by_level[owner]
                for bucket in lvl_map.values():
                    bucket.discard(elem)
        self._elem_level.pop(elem, None)
        self._stabilize()

    def remove_set(self, sid) -> None:
        """Remove candidate set ``sid`` (tuple deletion in FD-RMS).

        Every element assigned to it is reassigned; elements merely
        *containing* it lose the membership.
        """
        members = self._set_elems.pop(sid, None)
        if members is None:
            return
        for elem in members:
            self._elem_sets[elem].discard(sid)
        self._by_level.pop(sid, None)
        orphans = list(self._cov.get(sid, ()))
        if sid in self._cov:
            del self._cov[sid]
        self._level.pop(sid, None)
        for elem in orphans:
            self._phi.pop(elem, None)
            old = self._elem_level.pop(elem, None)
            if old is not None:
                self._clear_elem_level(elem, old)
        for elem in orphans:
            self._assign_somewhere(elem)
        self._stabilize()

    # ------------------------------------------------------------------
    # Verification (used by tests; exhaustive, not fast)
    # ------------------------------------------------------------------
    def is_cover(self) -> bool:
        """Every universe element is assigned to a containing set."""
        for elem, sids in self._elem_sets.items():
            sid = self._phi.get(elem)
            if sid is None or sid not in sids:
                return False
        return True

    def is_stable(self) -> bool:
        """Exhaustively check Definition 2 (both conditions)."""
        for sid, cover in self._cov.items():
            if not cover:
                return False
            if self._level.get(sid) != _level_of(len(cover)):
                return False
        assigned_at: dict = defaultdict(set)
        for elem, sid in self._phi.items():
            assigned_at[self._level[sid]].add(elem)
        for j, a_j in assigned_at.items():
            cap = 2 ** (j + 1)
            for sid, elems in self._set_elems.items():
                if len(elems & a_j) >= cap:
                    return False
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _queue_check(self, sid, j) -> None:
        if len(self._by_level[sid][j]) >= 2 ** (j + 1):
            key = (j, sid)
            if key not in self._pending_keys:
                self._pending_keys.add(key)
                heapq.heappush(self._pending, key)

    def _set_elem_level(self, elem, new_j) -> None:
        """Move ``elem``'s assignment level to ``new_j`` in all buckets."""
        old = self._elem_level.get(elem)
        if old == new_j:
            return
        for sid in self._elem_sets[elem]:
            lvl_map = self._by_level[sid]
            if old is not None:
                lvl_map[old].discard(elem)
            lvl_map[new_j].add(elem)
            self._queue_check(sid, new_j)
        self._elem_level[elem] = new_j

    def _clear_elem_level(self, elem, old_j) -> None:
        """Drop ``elem`` from the level buckets (it became unassigned)."""
        for sid in self._elem_sets.get(elem, ()):
            if sid in self._by_level:
                self._by_level[sid][old_j].discard(elem)

    def _unassign(self, elem, sid) -> None:
        """Remove ``elem`` from ``cov(sid)`` and relevel the donor."""
        self._cov[sid].discard(elem)
        self._phi.pop(elem, None)
        old = self._elem_level.pop(elem, None)
        if old is not None:
            self._clear_elem_level(elem, old)
        self._relevel(sid)

    def _assign_somewhere(self, elem) -> None:
        """Assign ``elem`` to a containing set (RELEVEL included).

        Preference order: the containing set already in ``C`` at the
        highest level (minimizes churn and keeps |C| small), else any
        containing set, which then joins ``C`` at level 0.
        """
        candidates = self._elem_sets.get(elem)
        if not candidates:
            raise ValueError(f"element {elem!r} has no containing set; "
                             "cover would become infeasible")
        best, best_level = None, -1
        for sid in candidates:
            lvl = self._level.get(sid, -1)
            if lvl > best_level or (lvl == best_level and best is None):
                best, best_level = sid, lvl
        self._phi[elem] = best
        self._cov[best].add(elem)
        self._relevel(best)

    def _relevel(self, sid) -> None:
        """RELEVEL of Algorithm 1: sync ``sid``'s level with |cov|."""
        size = len(self._cov.get(sid, ()))
        if size == 0:
            self._cov.pop(sid, None)
            self._level.pop(sid, None)
            return
        new_j = _level_of(size)
        old_j = self._level.get(sid)
        if old_j == new_j:
            # Elements may still need bucket sync if freshly assigned.
            for elem in self._cov[sid]:
                if self._elem_level.get(elem) != new_j:
                    self._set_elem_level(elem, new_j)
            return
        self._level[sid] = new_j
        for elem in self._cov[sid]:
            self._set_elem_level(elem, new_j)

    def _stabilize(self) -> None:
        """STABILIZE of Algorithm 1, violation-queue driven.

        Processes Condition-2 violations lowest level first. A step cap
        (generous; never hit in our experiments) falls back to a fresh
        greedy solution, which Lemma 1 guarantees stable.
        """
        m = max(1, len(self._elem_sets))
        cap = 64 + 16 * m * (m.bit_length() + 1)
        steps = 0
        while self._pending:
            key = heapq.heappop(self._pending)
            self._pending_keys.discard(key)
            j, sid = key
            if sid not in self._set_elems:
                continue
            bucket = self._by_level[sid][j]
            if len(bucket) < 2 ** (j + 1):
                continue
            steps += 1
            self.stabilize_steps += 1
            if steps > cap:  # pragma: no cover - safety valve
                self.rebuild()
                return
            # Absorb S ∩ A_j into cov(S); donors shrink and relevel.
            for elem in list(bucket):
                owner = self._phi.get(elem)
                if owner == sid:
                    continue
                if owner is not None:
                    self._cov[owner].discard(elem)
                    old = self._elem_level.pop(elem, None)
                    if old is not None:
                        self._clear_elem_level(elem, old)
                    self._phi.pop(elem, None)
                    self._relevel(owner)
                self._phi[elem] = sid
                self._cov[sid].add(elem)
            self._relevel(sid)
