"""Min-size k-RMS: the dual problem (smallest Q with ``mrr_k <= ε``).

The paper's §IV-A notes that ε-KERNEL and HS natively solve the
*min-size* regime — return the smallest subset whose maximum k-regret
ratio is at most a given ε — and adapts them to the min-error interface
by binary search. This module exposes the min-size regime directly,
because downstream users often want "how many tuples do I need for 5%
regret?" rather than "how good can 10 tuples be?".

Two entry points:

* :func:`min_size_rms` — static: greedy hitting set over a sampled
  utility set, the HS construction of Agarwal et al. [3];
* :func:`min_size_curve` — the full trade-off curve ε ↦ |Q| used to
  position a budget (one sort + repeated greedy covers).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.sampling import sample_utilities
from repro.utils import as_point_matrix, check_epsilon, check_k, resolve_rng


def _constraint_matrix(pts: np.ndarray, k: int, n_samples: int, rng):
    d = pts.shape[1]
    dirs = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = dirs @ pts.T                       # (m, n)
    kk = min(k, pts.shape[0])
    kth = -np.partition(-scores, kk - 1, axis=1)[:, kk - 1]
    return scores, np.where(kth > 0, kth, 0.0)


def _greedy_hitting_all(ok: np.ndarray) -> list[int]:
    """Greedy hitting set without a size cap; ``ok[i, j]`` = dir i hit by j."""
    covered = np.zeros(ok.shape[0], dtype=bool)
    selected: list[int] = []
    while not covered.all():
        gains = ok[~covered].sum(axis=0)
        j = int(np.argmax(gains))
        # reprolint: disable=RPL002 -- int coverage count (bool sum); == 0 is exact
        if gains[j] == 0:
            raise RuntimeError("infeasible hitting instance (ε too small?)")
        selected.append(j)
        covered |= ok[:, j]
    return selected


def min_size_rms(points, eps: float, k: int = 1, *, n_samples: int = 4_000,
                 seed=None) -> np.ndarray:
    """Smallest (sampled-certified) subset with ``mrr_k <= eps``.

    The guarantee is w.r.t. the sampled utility constraints (a δ-net of
    utility space); the true mrr over all utilities exceeds ε by at most
    an ``O(δ)`` term, exactly as in the paper's Theorem 2 analysis.

    Returns sorted row indices into ``points``.
    """
    pts = as_point_matrix(points)
    eps = check_epsilon(eps)
    k = check_k(k)
    rng = resolve_rng(seed)
    scores, kth = _constraint_matrix(pts, k, n_samples, rng)
    ok = scores >= (1.0 - eps) * kth[:, None]
    selected = _greedy_hitting_all(ok)
    return np.asarray(sorted(selected), dtype=np.intp)


def min_size_curve(points, eps_values, k: int = 1, *, n_samples: int = 4_000,
                   seed=None) -> dict[float, int]:
    """Map each ε to the greedy min-size result cardinality.

    Shares one score matrix across all ε values, so the curve costs
    little more than a single :func:`min_size_rms` call.
    """
    pts = as_point_matrix(points)
    k = check_k(k)
    rng = resolve_rng(seed)
    scores, kth = _constraint_matrix(pts, k, n_samples, rng)
    out: dict[float, int] = {}
    for eps in eps_values:
        eps = check_epsilon(eps)
        ok = scores >= (1.0 - eps) * kth[:, None]
        out[float(eps)] = len(_greedy_hitting_all(ok))
    return out
