"""repro — reproduction of "A Fully Dynamic Algorithm for k-Regret
Minimizing Sets" (Wang, Li, Wong, Tan; ICDE 2021).

Public API tour
---------------
* :class:`repro.Database` — the fully-dynamic database ``P_t``.
* :class:`repro.FDRMS` — the paper's contribution: maintain a
  ``RMS(k, r)`` result under arbitrary insertions and deletions.
* :class:`repro.RegretEvaluator` / :func:`repro.max_k_regret_ratio_sampled`
  — measure solution quality (``mrr_k``).
* :mod:`repro.baselines` — every static algorithm the paper compares
  against (GREEDY, GEOGREEDY, DMM, ε-KERNEL, HS, SPHERE, CUBE, ...).
* :mod:`repro.data` — synthetic generators (Indep/AntiCor), simulated
  real-world datasets, and the paper's dynamic workload protocol.
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.

Quickstart
----------
>>> import numpy as np
>>> from repro import Database, FDRMS
>>> rng = np.random.default_rng(0)
>>> db = Database(rng.random((500, 4)))
>>> algo = FDRMS(db, k=1, r=10, eps=0.01, m_max=256, seed=0)
>>> len(algo.result()) <= 10
True
"""

from repro.core import (
    FDRMS,
    ApproxTopKIndex,
    RegretEvaluator,
    StableSetCover,
    k_regret_ratio,
    max_k_regret_ratio_sampled,
    max_regret_ratio_lp,
)
from repro.data import Database, DynamicWorkload, Operation, make_paper_workload

__version__ = "1.0.0"

__all__ = [
    "FDRMS",
    "ApproxTopKIndex",
    "StableSetCover",
    "RegretEvaluator",
    "k_regret_ratio",
    "max_k_regret_ratio_sampled",
    "max_regret_ratio_lp",
    "Database",
    "Operation",
    "DynamicWorkload",
    "make_paper_workload",
    "__version__",
]
