"""repro — reproduction of "A Fully Dynamic Algorithm for k-Regret
Minimizing Sets" (Wang, Li, Wong, Tan; ICDE 2021).

Public API tour
---------------
* :func:`repro.solve` — one-shot facade: run any registered algorithm
  on a point matrix and get back a uniform :class:`repro.RMSResult`.
* :func:`repro.open_session` — streaming :class:`repro.Session`
  (``insert`` / ``delete`` / ``result`` / ``stats``) unifying FD-RMS
  and skyline-recompute wrappers for the static baselines.
* :func:`repro.list_algorithms` / :func:`repro.get_algorithm` /
  :func:`repro.register` — the algorithm registry with capability
  metadata (k > 1 support, dynamic updates, min-size mode, d = 2 only);
  the CLI and benchmark harness dispatch through it too.
* :class:`repro.Database` — the fully-dynamic database ``P_t``.
* :class:`repro.FDRMS` — the paper's contribution: maintain a
  ``RMS(k, r)`` result under arbitrary insertions and deletions.
* :class:`repro.RegretEvaluator` / :func:`repro.max_k_regret_ratio_sampled`
  — measure solution quality (``mrr_k``).
* :mod:`repro.baselines` — every static algorithm the paper compares
  against (GREEDY, GEOGREEDY, DMM, ε-KERNEL, HS, SPHERE, CUBE, ...);
  prefer registry dispatch over direct imports.
* :mod:`repro.data` — synthetic generators (Indep/AntiCor), simulated
  real-world datasets, and the paper's dynamic workload protocol.
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures, driven by the same registry.
* :mod:`repro.scenarios` — declarative dynamic-workload scenarios
  compiled to replayable, content-hashed operation traces
  (:func:`repro.get_scenario`, :func:`repro.run_scenario`), with a
  built-in catalogue from the paper's protocol to adversarial skyline
  churn (``python -m repro scenarios``).

Quickstart
----------
>>> import numpy as np
>>> import repro
>>> points = np.random.default_rng(0).random((500, 4))
>>> res = repro.solve(points, r=10, algo="fd-rms", seed=0)
>>> len(res) <= 10
True
>>> session = repro.open_session(points, r=10, algo="fd-rms", seed=0)
>>> pid = session.insert([0.99, 0.99, 0.99, 0.99])
>>> pid in session.result()
True
"""

from repro.api import (
    AlgorithmSpec,
    Capabilities,
    CapabilityError,
    FDRMSSession,
    RecomputeSession,
    RMSResult,
    Session,
    UnknownAlgorithmError,
    get_algorithm,
    list_algorithms,
    open_session,
    register,
    solve,
)
from repro.core import (
    FDRMS,
    ApproxTopKIndex,
    RegretEvaluator,
    StableSetCover,
    k_regret_ratio,
    max_k_regret_ratio_sampled,
    max_regret_ratio_lp,
)
from repro.data import Database, DynamicWorkload, Operation, make_paper_workload
from repro.scenarios import (
    Scenario,
    Trace,
    get_scenario,
    list_scenarios,
    load_trace,
    replay_trace,
    run_scenario,
    save_trace,
)

__version__ = "1.2.0"

__all__ = [
    # unified solver API
    "solve",
    "RMSResult",
    "open_session",
    "Session",
    "FDRMSSession",
    "RecomputeSession",
    "register",
    "get_algorithm",
    "list_algorithms",
    "AlgorithmSpec",
    "Capabilities",
    "CapabilityError",
    "UnknownAlgorithmError",
    # core engine
    "FDRMS",
    "ApproxTopKIndex",
    "StableSetCover",
    "RegretEvaluator",
    "k_regret_ratio",
    "max_k_regret_ratio_sampled",
    "max_regret_ratio_lp",
    # data model
    "Database",
    "Operation",
    "DynamicWorkload",
    "make_paper_workload",
    # scenario engine
    "Scenario",
    "Trace",
    "get_scenario",
    "list_scenarios",
    "load_trace",
    "save_trace",
    "replay_trace",
    "run_scenario",
    "__version__",
]
