"""Entry point for ``python -m repro``.

The CLI's integer return value is propagated through ``sys.exit`` so
failures (e.g. unknown dataset or algorithm names) yield a nonzero
process exit code. The guard keeps ``import repro.__main__`` side-effect
free for tooling.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
