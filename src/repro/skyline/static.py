"""Static skyline computation (the skyline operator of Börzsönyi et al.).

A tuple ``p`` *dominates* ``q`` iff ``p >= q`` componentwise and
``p != q`` in at least one attribute (bigger is better — the paper's
scores are monotone increasing in every attribute). The skyline is the
set of non-dominated tuples; every k-RMS result is a subset of it, and
the static baselines recompute whenever it changes.

The implementation is a sort-filter-skyline (SFS) variant: sorting by
descending attribute sum means a tuple can only be dominated by tuples
earlier in the order, so one forward pass with a running skyline buffer
suffices. Comparisons against the buffer are vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_point_matrix


def dominates(p: np.ndarray, q: np.ndarray, *, tol: float = 0.0) -> bool:
    """Whether ``p`` dominates ``q`` (componentwise >=, strictly > once).

    ``tol`` loosens the comparison for noisy data: ``p[i] >= q[i] - tol``
    counts as "as good". The default is exact.
    """
    p = np.asarray(p, dtype=np.float64).reshape(-1)
    q = np.asarray(q, dtype=np.float64).reshape(-1)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return bool((p >= q - tol).all() and (p > q + tol).any())


def skyline_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of skyline membership, aligned with ``points`` rows.

    Runs in O(n log n + n·s·d) where ``s`` is the skyline size — fast in
    practice because most tuples are eliminated by the first few skyline
    points found in sum order.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    order = np.argsort(-pts.sum(axis=1), kind="stable")
    # Sum order means a point can only be dominated by points processed
    # before it (dominance implies a strictly larger attribute sum).
    # Process candidates in blocks: one broadcasted comparison against
    # the current skyline buffer per block, then a sequential pass for
    # the (few) intra-block dominations. Block size adapts so the
    # (B, size, d) comparison tensors stay within a bounded footprint.
    buf = np.empty((max(16, n // 8), d))
    size = 0
    mask = np.zeros(n, dtype=bool)
    start = 0
    while start < n:
        block_cap = max(8, int(4_000_000 // max(1, size * d)))
        block = order[start:start + block_cap]
        start += block.shape[0]
        cand = pts[block]
        if size:
            window = buf[:size]
            ge = (window[None, :, :] >= cand[:, None, :]).all(axis=2)
            gt = (window[None, :, :] > cand[:, None, :]).any(axis=2)
            alive = ~(ge & gt).any(axis=1)
        else:
            alive = np.ones(block.shape[0], dtype=bool)
        size0 = size
        for row in np.flatnonzero(alive):
            p = cand[row]
            if size > size0:
                # Already cleared against buf[:size0] by the block test;
                # only intra-block additions remain to check.
                window = buf[size0:size]
                dominated = ((window >= p).all(axis=1)
                             & (window > p).any(axis=1)).any()
                if dominated:
                    continue
            if size == buf.shape[0]:
                grown = np.empty((2 * size, d))
                grown[:size] = buf
                buf = grown
            buf[size] = p
            size += 1
            mask[block[row]] = True
    return mask


def skyline_indices(points: np.ndarray) -> np.ndarray:
    """Sorted row indices of the skyline of ``points``."""
    return np.flatnonzero(skyline_mask(points))
