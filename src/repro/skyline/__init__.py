"""The skyline operator: static computation and fully-dynamic maintenance."""

from repro.skyline.static import dominates, skyline_mask, skyline_indices
from repro.skyline.dynamic import DynamicSkyline

__all__ = ["dominates", "skyline_mask", "skyline_indices", "DynamicSkyline"]
