"""Fully-dynamic skyline maintenance.

The experimental protocol (§IV-A) re-runs each static baseline only when
an operation changes the skyline (k-RMS results are skyline subsets, so
operations on dominated tuples are no-ops for them). This module keeps
the skyline of a :class:`repro.data.Database` up to date per operation
and reports whether the operation changed it.

Maintenance logic:

* **Insert p.** If some skyline tuple dominates ``p``, the skyline is
  unchanged. Otherwise ``p`` joins and every skyline tuple now dominated
  by ``p`` leaves (those tuples are *retired* — recorded as dominated,
  since only ``p`` can dominate them among current skyline members).
* **Delete p.** If ``p`` was not on the skyline, nothing changes.
  Otherwise every non-skyline tuple whose dominators all disappeared must
  be promoted. We keep, for each dominated tuple, one *witness* dominator
  on the skyline; deletion only re-examines tuples whose witness was the
  deleted tuple, which keeps typical deletions far below O(n).
"""

from __future__ import annotations

import numpy as np

from repro.data.database import Database


class DynamicSkyline:
    """Maintains the skyline of a database across insertions/deletions.

    Parameters
    ----------
    db : Database
        The backing database. The skyline of its current contents is
        computed at construction; afterwards, call :meth:`insert` /
        :meth:`delete` *after* applying the same operation to ``db``.
    """

    def __init__(self, db: Database) -> None:
        self._db = db
        self._on_skyline: set[int] = set()
        # witness[tid] = skyline id dominating tid (for dominated tuples).
        self._witness: dict[int, int] = {}
        # children[sid] = ids whose witness is sid.
        self._children: dict[int, set[int]] = {}
        self._rebuild()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ids(self) -> frozenset[int]:
        """Current skyline tuple ids."""
        return frozenset(self._on_skyline)

    def __len__(self) -> int:
        return len(self._on_skyline)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._on_skyline

    def points(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, matrix)`` of the skyline tuples, id-sorted."""
        ids = np.asarray(sorted(self._on_skyline), dtype=np.intp)
        return ids, self._db.points(ids)

    # ------------------------------------------------------------------
    # Updates (call after Database.insert / Database.delete)
    # ------------------------------------------------------------------
    def insert(self, tuple_id: int) -> bool:
        """Register an inserted tuple. Returns True iff skyline changed."""
        p = self._db.point(tuple_id)
        sky_ids = sorted(self._on_skyline)
        if sky_ids:
            sky = self._db.points(sky_ids)
            dominated_by = (sky >= p).all(axis=1) & (sky > p).any(axis=1)
            if dominated_by.any():
                witness = int(sky_ids[int(np.argmax(dominated_by))])
                self._witness[tuple_id] = witness
                self._children.setdefault(witness, set()).add(tuple_id)
                return False
            # p enters; evict skyline tuples p dominates.
            beaten = (p >= sky).all(axis=1) & (p > sky).any(axis=1)
            for row in np.flatnonzero(beaten):
                loser = int(sky_ids[int(row)])
                self._demote(loser, witness=tuple_id)
        self._on_skyline.add(tuple_id)
        return True

    def delete(self, tuple_id: int) -> bool:
        """Register a deleted tuple. Returns True iff skyline changed.

        Must be called *after* ``db.delete(tuple_id)``.
        """
        if tuple_id not in self._on_skyline:
            # Dominated tuple: detach from its witness, and hand any
            # tuples witnessed by it to that witness (dominance is
            # transitive, so the grand-witness still dominates them).
            witness = self._witness.pop(tuple_id, None)
            if witness is not None:
                self._children.get(witness, set()).discard(tuple_id)
            children = self._children.pop(tuple_id, set())
            if children:
                if witness is None:
                    raise AssertionError(
                        "non-skyline tuple with children must have a witness"
                    )
                for child in sorted(children):
                    self._witness[child] = witness
                self._children.setdefault(witness, set()).update(children)
            return False
        self._on_skyline.discard(tuple_id)
        orphans = sorted(self._children.pop(tuple_id, set()))
        for orphan in orphans:
            self._witness.pop(orphan, None)
        # Re-insert orphans in descending sum order so that promoted
        # orphans can adopt later ones.
        if orphans:
            pts = self._db.points(orphans)
            order = np.argsort(-pts.sum(axis=1), kind="stable")
            for row in order:
                self._reclassify(int(orphans[int(row)]))
        return True

    def rebuild(self) -> bool:
        """Recompute the skyline from the database; True iff it changed.

        Batch updates apply many operations to the database at once and
        call this once at the end instead of maintaining the skyline per
        operation (the skyline is a pure function of the alive tuples,
        so the result is identical).
        """
        before = frozenset(self._on_skyline)
        self._rebuild()
        return frozenset(self._on_skyline) != before

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _demote(self, loser: int, *, witness: int) -> None:
        """Move ``loser`` from the skyline to dominated-with-witness."""
        self._on_skyline.discard(loser)
        self._witness[loser] = witness
        self._children.setdefault(witness, set()).add(loser)
        # Tuples witnessed by the loser stay witnessed by it: the loser is
        # still alive and still dominates them (domination is transitive
        # only through alive tuples, and the loser remains alive).

    def _reclassify(self, tuple_id: int) -> None:
        """Decide skyline membership of an orphaned tuple from scratch."""
        p = self._db.point(tuple_id)
        sky_ids = sorted(self._on_skyline)
        if sky_ids:
            sky = self._db.points(sky_ids)
            dominated_by = (sky >= p).all(axis=1) & (sky > p).any(axis=1)
            if dominated_by.any():
                witness = int(sky_ids[int(np.argmax(dominated_by))])
                self._witness[tuple_id] = witness
                self._children.setdefault(witness, set()).add(tuple_id)
                return
            beaten = (p >= sky).all(axis=1) & (p > sky).any(axis=1)
            for row in np.flatnonzero(beaten):
                self._demote(int(sky_ids[int(row)]), witness=tuple_id)
        self._on_skyline.add(tuple_id)

    def _rebuild(self) -> None:
        """Recompute skyline + witnesses from the database contents.

        Equivalent to reclassifying every tuple in descending sum order
        (the incremental path), but vectorized: in that order a later
        tuple can never dominate an earlier one (dominance implies a
        strictly larger sum), so the skyline only grows and each
        dominated tuple's witness is simply its smallest-id skyline
        dominator — both computable with array sweeps instead of a
        per-tuple re-sort of the partial skyline.
        """
        self._on_skyline.clear()
        self._witness.clear()
        self._children.clear()
        ids, pts = self._db.snapshot()
        n = ids.size
        if n == 0:
            return
        order = np.argsort(-pts.sum(axis=1), kind="stable")
        spts = pts[order]
        sids = ids[order]
        # Pass 1: the skyline, testing each tuple against the (growing)
        # matrix of skyline points found so far.
        sky_mat = np.empty((n, pts.shape[1]))
        n_sky = 0
        sky_rows: list[int] = []
        for j in range(n):
            p = spts[j]
            if n_sky:
                sky = sky_mat[:n_sky]
                if ((sky >= p).all(axis=1) & (sky > p).any(axis=1)).any():
                    continue
            sky_mat[n_sky] = p
            n_sky += 1
            sky_rows.append(j)
        sky_ids = sids[sky_rows]
        self._on_skyline.update(sky_ids.tolist())
        if n_sky == n:
            return
        # Pass 2: witnesses. Every dominator of q sits on the final
        # skyline side with a larger sum, so the incremental witness —
        # the smallest-id dominator on the skyline as of q's turn — is
        # the smallest-id skyline dominator overall.
        dominated = np.ones(n, dtype=bool)
        dominated[sky_rows] = False
        dom_pts = spts[dominated]
        dom_ids = sids[dominated]
        sky = sky_mat[:n_sky]
        big = np.iinfo(np.intp).max
        chunk = max(1, int(2_000_000 // max(1, n_sky)))
        for start in range(0, dom_ids.size, chunk):
            block = dom_pts[start:start + chunk]
            ge = (sky[None, :, :] >= block[:, None, :]).all(axis=2)
            gt = (sky[None, :, :] > block[:, None, :]).any(axis=2)
            wit = np.where(ge & gt, sky_ids[None, :], big).min(axis=1)
            for q, w in zip(dom_ids[start:start + chunk].tolist(),
                            wit.tolist()):
                self._witness[q] = w
                children = self._children.get(w)
                if children is None:
                    children = self._children[w] = set()
                children.add(q)
