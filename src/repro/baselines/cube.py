"""CUBE — the original bounded heuristic (Nanongkai et al. [22]).

CUBE partitions the first ``d - 1`` attributes into ``t`` intervals
each, forming ``t^(d-1)`` cells, and keeps from every non-empty cell the
tuple maximizing the last attribute. With
``t = floor((r - d + 1)^(1/(d-1)))`` the output size is at most ``r``
and the maximum regret ratio is ``O(r^{-1/(d-1)})`` — the same upper
bound Corollary 1 derives for FD-RMS, which is why the paper cites CUBE
as the bound comparison. Quality in practice is poor (the partition
ignores the data distribution), so the paper does not plot it; we
include it for the theoretical cross-check and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.utils import as_point_matrix, check_size_constraint


@register("cube", display_name="Cube",
          summary="the original bounded heuristic [22]",
          capabilities=Capabilities())
def cube(points, r: int) -> np.ndarray:
    """Select at most ``r`` rows with CUBE's grid construction."""
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    n, d = pts.shape
    if r >= n:
        return np.arange(n, dtype=np.intp)
    if d == 1:
        return np.asarray([int(np.argmax(pts[:, 0]))], dtype=np.intp)
    t = max(1, int(np.floor((r - d + 1) ** (1.0 / (d - 1))))) if r > d - 1 else 1
    # Cell index per tuple over the first d-1 attributes.
    scaled = np.clip((pts[:, :-1] * t).astype(np.intp), 0, t - 1)
    keys = np.zeros(n, dtype=np.int64)
    for col in range(d - 1):
        keys = keys * t + scaled[:, col]
    best: dict[int, int] = {}
    last = pts[:, -1]
    for row in range(n):
        cell = int(keys[row])
        cur = best.get(cell)
        if cur is None or last[row] > last[cur]:
            best[cell] = row
    selected = sorted(best.values())
    if len(selected) > r:
        # More non-empty cells than budget (possible when r < t^(d-1)
        # due to flooring interplay): keep the strongest by last attr.
        selected = sorted(sorted(best.values(), key=lambda i: -last[i])[:r])
    return np.asarray(selected, dtype=np.intp)
