"""GREEDY* — randomized greedy for k-RMS with k > 1 (Chester et al. [11]).

Chester et al. extend the greedy heuristic to ``k > 1`` by evaluating,
for candidate additions, the k-regret they leave behind. Their original
evaluation solves randomized LPs over critical regions of utility space;
following DESIGN.md §5 we make the randomization explicit with a sampled
utility set: the k-th best score of ``P`` is precomputed per sampled
utility, and each iteration adds the tuple whose inclusion minimizes the
maximum sampled k-regret. With ``k = 1`` this degenerates to the sampled
GREEDY variant.

The ``candidate_fraction`` knob reproduces the randomized flavour of the
original (each iteration examines a random subset of candidates), which
is also what keeps it tractable on large skylines.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.sampling import sample_utilities
from repro.utils import (
    as_point_matrix,
    check_k,
    check_size_constraint,
    resolve_rng,
)


@register("greedy*", display_name="Greedy*",
          aliases=("greedy-star", "greedy_star"),
          summary="randomized greedy for k > 1 [11]",
          capabilities=Capabilities(supports_k=True, randomized=True,
                                    skyline_pool=False),
          bench=True,
          bench_kwargs={"n_samples": 5000, "candidate_fraction": 0.5})
def greedy_star(points, r: int, k: int = 2, *, n_samples: int = 10_000,
                candidate_fraction: float = 1.0, seed=None) -> np.ndarray:
    """Select ``r`` row indices minimizing sampled ``mrr_k`` greedily.

    Parameters
    ----------
    points : (n, d) array
        Candidate tuples. Note that for ``k > 1`` the candidate pool must
        be the *full database*, not the skyline: the k-th ranked score is
        defined over all tuples.
    r, k : int
        Size constraint and rank parameter.
    n_samples : int
        Utility sample size used to estimate regret.
    candidate_fraction : float
        Fraction of candidates examined per iteration (randomized greedy;
        1.0 examines all).
    seed : int | Generator | None
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    r = check_size_constraint(r)
    k = check_k(k)
    if not 0.0 < candidate_fraction <= 1.0:
        raise ValueError("candidate_fraction must be in (0, 1]")
    if r >= n:
        return np.arange(n, dtype=np.intp)
    rng = resolve_rng(seed)
    utils = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = pts @ utils.T                                  # (n, m)
    kk = min(k, n)
    kth = np.partition(scores, n - kk, axis=0)[n - kk]      # ω_k per utility
    kth_safe = np.where(kth > 0, kth, 1.0)

    first = int(np.argmax(pts.sum(axis=1)))
    selected = [first]
    chosen = np.zeros(n, dtype=bool)
    chosen[first] = True
    best_q = scores[first].copy()
    for _ in range(r - 1):
        rr = np.maximum(0.0, 1.0 - best_q / kth_safe)
        if rr.max(initial=0.0) <= 1e-12:
            break
        candidates = np.flatnonzero(~chosen)
        if candidate_fraction < 1.0 and candidates.size > 1:
            take = max(1, int(round(candidates.size * candidate_fraction)))
            candidates = rng.choice(candidates, size=take, replace=False)
        # For each candidate, the post-addition regret per utility is
        # 1 - max(best_q, score)/kth; minimize the maximum over utilities.
        cand_scores = scores[candidates]                    # (c, m)
        post = np.maximum(cand_scores, best_q[None, :])
        post_rr = np.maximum(0.0, 1.0 - post / kth_safe[None, :]).max(axis=1)
        winner = int(candidates[int(np.argmin(post_rr))])
        chosen[winner] = True
        selected.append(winner)
        np.maximum(best_q, scores[winner], out=best_q)
    return np.asarray(selected, dtype=np.intp)
