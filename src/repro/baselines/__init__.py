"""Static k-RMS baselines from the paper's evaluation (§IV-A).

Every algorithm takes an ``(n, d)`` point matrix (typically the current
skyline — k-RMS results are skyline subsets) and a size constraint ``r``
and returns row indices of the selected tuples. None of them supports
updates: the experiment harness re-runs them whenever the skyline
changes, exactly as the paper's protocol does.

========================  ==========================================
:func:`greedy`            GREEDY, 1-RMS greedy heuristic [22]
:func:`greedy_star`       GREEDY*, randomized greedy for k > 1 [11]
:func:`geo_greedy`        GEOGREEDY, hull-restricted greedy [23]
:func:`dmm_rrms`          DMM-RRMS, discretized matrix min-max [4]
:func:`dmm_greedy`        DMM-GREEDY, greedy on the DMM matrix [4]
:func:`eps_kernel`        ε-KERNEL coreset selection [2, 3, 10]
:func:`hitting_set`       HS, hitting-set based min-size k-RMS [3]
:func:`sphere`            SPHERE, ε-kernel + greedy hybrid [32]
:func:`cube`              CUBE, the original bounded heuristic [22]
:func:`dp2d`              interval DP for d = 2 (optimality oracle)
:func:`brute_force_rms`   exhaustive search (tests only)
========================  ==========================================
"""

from repro.baselines.greedy import greedy
from repro.baselines.greedy_star import greedy_star
from repro.baselines.geogreedy import geo_greedy
from repro.baselines.dmm import dmm_greedy, dmm_rrms
from repro.baselines.eps_kernel import eps_kernel
from repro.baselines.hitting_set import hitting_set
from repro.baselines.sphere import sphere
from repro.baselines.cube import cube
from repro.baselines.dp2d import brute_force_rms, dp2d
from repro.baselines.arm import arm_greedy, average_regret
from repro.baselines.rrr import rank_regret, rrr_greedy

__all__ = [
    "arm_greedy",
    "average_regret",
    "rank_regret",
    "rrr_greedy",
    "greedy",
    "greedy_star",
    "geo_greedy",
    "dmm_rrms",
    "dmm_greedy",
    "eps_kernel",
    "hitting_set",
    "sphere",
    "cube",
    "dp2d",
    "brute_force_rms",
]
