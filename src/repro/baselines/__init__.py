"""Static k-RMS baselines from the paper's evaluation (§IV-A).

Every algorithm takes an ``(n, d)`` point matrix (typically the current
skyline — k-RMS results are skyline subsets) and a size constraint ``r``
and returns row indices of the selected tuples. None of them supports
updates: the experiment harness re-runs them whenever the skyline
changes, exactly as the paper's protocol does.

========================  ==========================================
:func:`greedy`            GREEDY, 1-RMS greedy heuristic [22]
:func:`greedy_star`       GREEDY*, randomized greedy for k > 1 [11]
:func:`geo_greedy`        GEOGREEDY, hull-restricted greedy [23]
:func:`dmm_rrms`          DMM-RRMS, discretized matrix min-max [4]
:func:`dmm_greedy`        DMM-GREEDY, greedy on the DMM matrix [4]
:func:`eps_kernel`        ε-KERNEL coreset selection [2, 3, 10]
:func:`hitting_set`       HS, hitting-set based min-size k-RMS [3]
:func:`sphere`            SPHERE, ε-kernel + greedy hybrid [32]
:func:`cube`              CUBE, the original bounded heuristic [22]
:func:`dp2d`              interval DP for d = 2 (optimality oracle)
:func:`brute_force_rms`   exhaustive search (tests only)
========================  ==========================================

.. deprecated:: 1.1
    Calling an algorithm imported from this *package* namespace emits a
    :class:`DeprecationWarning`. The canonical entry points are
    :func:`repro.solve` / :func:`repro.api.get_algorithm` (registry
    dispatch with capability metadata), or — for the raw function — an
    explicit submodule import such as
    ``from repro.baselines.greedy import greedy``.
"""

import functools
import warnings

from repro.baselines.arm import arm_greedy as _arm_greedy
from repro.baselines.arm import average_regret
from repro.baselines.cube import cube as _cube
from repro.baselines.dmm import dmm_greedy as _dmm_greedy
from repro.baselines.dmm import dmm_rrms as _dmm_rrms
from repro.baselines.dp2d import brute_force_rms
from repro.baselines.dp2d import dp2d as _dp2d
from repro.baselines.eps_kernel import eps_kernel as _eps_kernel
from repro.baselines.geogreedy import geo_greedy as _geo_greedy
from repro.baselines.greedy import greedy as _greedy
from repro.baselines.greedy_star import greedy_star as _greedy_star
from repro.baselines.hitting_set import hitting_set as _hitting_set
from repro.baselines.rrr import rank_regret
from repro.baselines.rrr import rrr_greedy as _rrr_greedy
from repro.baselines.sphere import sphere as _sphere


def _deprecated_entry(func, registry_name: str):
    """Wrap ``func`` so package-level calls point users at the new API."""
    module = func.__module__

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"calling {func.__name__!r} via the repro.baselines package is "
            f"deprecated; use repro.solve(..., algo={registry_name!r}) or "
            f"import it from {module}",
            DeprecationWarning, stacklevel=2)
        return func(*args, **kwargs)

    return wrapper


greedy = _deprecated_entry(_greedy, "greedy")
greedy_star = _deprecated_entry(_greedy_star, "greedy*")
geo_greedy = _deprecated_entry(_geo_greedy, "geogreedy")
dmm_rrms = _deprecated_entry(_dmm_rrms, "dmm-rrms")
dmm_greedy = _deprecated_entry(_dmm_greedy, "dmm-greedy")
eps_kernel = _deprecated_entry(_eps_kernel, "eps-kernel")
hitting_set = _deprecated_entry(_hitting_set, "hs")
sphere = _deprecated_entry(_sphere, "sphere")
cube = _deprecated_entry(_cube, "cube")
dp2d = _deprecated_entry(_dp2d, "dp2d")
arm_greedy = _deprecated_entry(_arm_greedy, "arm")
rrr_greedy = _deprecated_entry(_rrr_greedy, "rrr")

__all__ = [
    "arm_greedy",
    "average_regret",
    "rank_regret",
    "rrr_greedy",
    "greedy",
    "greedy_star",
    "geo_greedy",
    "dmm_rrms",
    "dmm_greedy",
    "eps_kernel",
    "hitting_set",
    "sphere",
    "cube",
    "dp2d",
    "brute_force_rms",
]
