"""ARM — average regret minimization (extension, paper §V).

The paper's related work (§V) discusses the *average regret
minimization* problem [26, 28, 35]: instead of minimizing the maximum
k-regret ratio over all utilities, minimize its **average** under a
distribution of users. It is a different objective with different
winners (ARM tolerates a few very unhappy users if the bulk is happy),
included here as the optional extension DESIGN.md lists.

Average regret is monotone and supermodular-free in general, but the
sampled objective ``mean_u rr_k(u, Q)`` is monotone decreasing and the
greedy that maximizes marginal decrease is the standard approach
(Zeighami & Wong [35]); with a fixed utility sample it is exactly
lazy-evaluable and fast in vectorized form.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.sampling import sample_utilities
from repro.utils import (
    as_point_matrix,
    check_k,
    check_size_constraint,
    resolve_rng,
)


def average_regret(points_p, points_q, k: int = 1, *, n_samples: int = 10_000,
                   seed=None, utilities=None) -> float:
    """Sampled average k-regret ratio of ``Q`` over ``P``."""
    p = as_point_matrix(points_p, name="points_p")
    q = as_point_matrix(points_q, name="points_q")
    k = check_k(k)
    if utilities is None:
        utilities = sample_utilities(n_samples, p.shape[1], seed=seed)
    sp = p @ utilities.T
    n = p.shape[0]
    kk = min(k, n)
    kth = np.partition(sp, n - kk, axis=0)[n - kk]
    best = (q @ utilities.T).max(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        rr = 1.0 - np.divide(best, kth, out=np.ones_like(best), where=kth > 0)
    rr[kth <= 0] = 0.0
    return float(np.clip(rr, 0.0, 1.0).mean())


@register("arm", display_name="ARM", aliases=("arm-greedy", "arm_greedy"),
          summary="greedy average-regret minimization (alternate objective)",
          capabilities=Capabilities(supports_k=True, randomized=True,
                                    skyline_pool=False))
def arm_greedy(points, r: int, k: int = 1, *, n_samples: int = 10_000,
               seed=None) -> np.ndarray:
    """Greedy average-regret minimization: r rows of ``points``.

    At each step adds the tuple with the largest marginal decrease of
    the sampled average regret — the unified greedy of [26]/[35] on a
    fixed utility sample.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    r = check_size_constraint(r)
    k = check_k(k)
    if r >= n:
        return np.arange(n, dtype=np.intp)
    rng = resolve_rng(seed)
    utils = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = pts @ utils.T                              # (n, m)
    kk = min(k, n)
    kth = np.partition(scores, n - kk, axis=0)[n - kk]
    kth_safe = np.where(kth > 0, kth, 1.0)

    first = int(np.argmax(pts.sum(axis=1)))
    selected = [first]
    chosen = np.zeros(n, dtype=bool)
    chosen[first] = True
    best_q = scores[first].copy()
    for _ in range(r - 1):
        # Marginal objective for each candidate: mean regret after add.
        post = np.maximum(scores, best_q[None, :])      # (n, m)
        post_rr = np.maximum(0.0, 1.0 - post / kth_safe[None, :]).mean(axis=1)
        post_rr[chosen] = np.inf
        winner = int(np.argmin(post_rr))
        if np.isinf(post_rr[winner]):
            break
        chosen[winner] = True
        selected.append(winner)
        np.maximum(best_q, scores[winner], out=best_q)
        if np.maximum(0.0, 1.0 - best_q / kth_safe).mean() <= 1e-12:
            break
    return np.asarray(selected, dtype=np.intp)
