"""SPHERE — ε-kernel seeding + greedy refinement (Xie et al. [32]).

SPHERE combines the two strongest static ideas: it places anchor
directions on the unit sphere (the basis vectors plus a uniform cap
covering), collects for each anchor the tuples closest to achieving the
directional optimum (an ε-kernel-style candidate pool), then greedily
refines the pool down to ``r`` tuples with regret-driven selection.
Its restriction-free bound is the best known for 1-RMS; empirically the
paper finds SPHERE and FD-RMS the two top performers, with SPHERE
degrading on large skylines — the candidate pool and the greedy pass
both scan the full input, which this implementation mirrors.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.baselines.greedy import _greedy_sampled
from repro.geometry.hull import directional_argmax
from repro.geometry.sampling import sample_utilities
from repro.utils import as_point_matrix, check_size_constraint, resolve_rng


@register("sphere", display_name="Sphere",
          summary="ε-kernel + greedy hybrid [32]",
          capabilities=Capabilities(randomized=True),
          bench=True, bench_kwargs={"n_samples": 10_000})
def sphere(points, r: int, *, n_anchors: int | None = None,
           n_samples: int = 20_000, seed=None) -> np.ndarray:
    """Select ``r`` row indices via anchor seeding + greedy refinement.

    Parameters
    ----------
    points : (n, d) array
        Candidate tuples (skyline suffices for 1-RMS).
    r : int
        Result size.
    n_anchors : int, optional
        Number of sphere anchor directions (default ``max(4r, 2000)``,
        mimicking the cap-covering density of the original).
    n_samples : int
        Utility sample for the greedy refinement pass.
    """
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    n, d = pts.shape
    if r >= n:
        return np.arange(n, dtype=np.intp)
    rng = resolve_rng(seed)
    if n_anchors is None:
        n_anchors = max(4 * r, 2000)
    anchors = np.vstack([np.eye(d),
                         sample_utilities(n_anchors, d, seed=rng)])
    pool = np.unique(directional_argmax(pts, anchors))
    if pool.size <= r:
        return pool.astype(np.intp)
    local = _greedy_sampled(pts[pool], r, n_samples, rng)
    return pool[local]
