"""RRR — rank-regret representative (extension, paper §V).

Asudeh et al. [5] define regret by *rank* instead of score: the
rank-regret of ``Q`` for utility ``u`` is the rank (in ``P``) of the
best tuple of ``Q``; a *rank-regret representative* keeps that rank at
most ``k`` for every utility. The difference matters on heavy-tailed
score distributions, where a tiny score gap can hide many ranks.

The paper discusses RRR as a related-but-different formulation (§V);
this module provides a sampled implementation so users can compare both
notions on the same data:

* :func:`rank_regret` — max rank of ``Q``'s best tuple over sampled
  utilities;
* :func:`rrr_greedy` — greedy set-cover construction: each tuple covers
  the sampled utilities where it ranks within k; covering all utilities
  yields a (sampled) rank-regret ≤ k representative.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.sampling import sample_utilities
from repro.utils import as_point_matrix, check_k, resolve_rng


def rank_regret(points_p, points_q, *, n_samples: int = 5_000, seed=None,
                utilities=None) -> int:
    """Maximum (sampled) rank of ``Q``'s best tuple within ``P``.

    Rank 1 means: for every sampled utility, ``Q`` contains the top
    tuple of ``P``. Lower is better; at most ``|P|``.
    """
    p = as_point_matrix(points_p, name="points_p")
    q = as_point_matrix(points_q, name="points_q")
    if utilities is None:
        utilities = sample_utilities(n_samples, p.shape[1], seed=seed)
    sp = utilities @ p.T                     # (m, n)
    sq_best = (utilities @ q.T).max(axis=1)  # (m,)
    # Rank of Q's best score among P's scores (1-based): number of P
    # tuples scoring strictly higher, plus one.
    higher = (sp > sq_best[:, None] + 1e-12).sum(axis=1)
    return int(higher.max()) + 1


@register("rrr", display_name="RRR", aliases=("rrr-greedy", "rrr_greedy"),
          summary="greedy rank-regret representative (alternate objective)",
          capabilities=Capabilities(supports_k=True, randomized=True,
                                    skyline_pool=False))
def rrr_greedy(points, r: int, k: int = 1, *, n_samples: int = 5_000,
               seed=None) -> np.ndarray:
    """Greedy rank-regret representative of at most ``r`` tuples.

    Covers sampled utilities with tuples ranking within ``k`` there.
    If ``r`` tuples cannot cover every sampled utility at rank ``k``
    (rank-regret ≤ k is infeasible at this size), the best-effort cover
    is returned; check with :func:`rank_regret`.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    k = check_k(k)
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if r >= n:
        return np.arange(n, dtype=np.intp)
    rng = resolve_rng(seed)
    utils = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = utils @ pts.T                   # (m, n)
    kk = min(k, n)
    kth = -np.partition(-scores, kk - 1, axis=1)[:, kk - 1]
    ok = scores >= kth[:, None] - 1e-12      # tuple ranks within k at u
    covered = np.zeros(ok.shape[0], dtype=bool)
    selected: list[int] = []
    while not covered.all() and len(selected) < r:
        gains = ok[~covered].sum(axis=0)
        j = int(np.argmax(gains))
        # reprolint: disable=RPL002 -- int coverage count (bool sum); == 0 is exact
        if gains[j] == 0:  # pragma: no cover - k >= 1 makes rows coverable
            break
        selected.append(j)
        covered |= ok[:, j]
    return np.asarray(sorted(selected), dtype=np.intp)
