"""ε-KERNEL — coreset-based k-RMS (Agarwal et al. [2]; used in [3, 10]).

An ε-kernel is a subset preserving directional width up to ``1 - ε``;
taking the extreme tuple along every direction of a ``sqrt(ε)``-net of
the sphere yields one (the standard practical construction). Cao et
al. [10] and Agarwal et al. [3] return an ε-kernel directly as a k-RMS
answer in the *min-size* regime (smallest set achieving error ε); the
paper adapts min-size algorithms to the min-error interface by binary
searching ε so the result size is at most ``r`` (§IV-A) — reproduced
here: the search finds the smallest ε (finest net) whose kernel still
has at most ``r`` distinct tuples.

The paper finds its quality "typically inferior to any other algorithm
because the size of an ε-kernel coreset is much larger than that of the
minimum (1, ε)-regret set for the same ε" — i.e. for a fixed budget r
the achievable ε is coarse; expect visibly worse mrr here too.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.hull import directional_argmax, eps_kernel_directions
from repro.utils import as_point_matrix, check_size_constraint


@register("eps-kernel", display_name="eps-Kernel",
          aliases=("eps_kernel", "epskernel", "ε-kernel"),
          summary="ε-kernel coreset selection [2, 3, 10]",
          capabilities=Capabilities(randomized=True),
          bench=True)
def eps_kernel(points, r: int, *, seed=None, search_steps: int = 20) -> np.ndarray:
    """Select at most ``r`` rows forming the finest feasible ε-kernel.

    Binary search over ε in log-space: small ε means many net directions
    and therefore more distinct extreme tuples; the largest direction
    set whose distinct-extreme count stays within ``r`` wins.
    """
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    n, d = pts.shape
    if r >= n:
        return np.arange(n, dtype=np.intp)
    lo, hi = -7.0, 0.0          # ε in [10^-7, 1)
    best: np.ndarray | None = None
    for _ in range(search_steps):
        mid = 0.5 * (lo + hi)
        eps = 10.0 ** mid
        dirs = eps_kernel_directions(d, eps, seed=seed)
        sel = np.unique(directional_argmax(pts, dirs))
        if sel.size <= r:
            best = sel
            hi = mid            # feasible: try finer nets (smaller ε)
        else:
            lo = mid
    if best is None:
        # Even the coarsest net overflows r: keep the r most frequently
        # extreme tuples (they dominate the directional width).
        dirs = eps_kernel_directions(d, 0.5, seed=seed)
        winners = directional_argmax(pts, dirs)
        idx, counts = np.unique(winners, return_counts=True)
        best = idx[np.argsort(-counts)][:r]
    return np.sort(best).astype(np.intp)
