"""GREEDY — the classic 1-RMS heuristic (Nanongkai et al. [22]).

Starting from the single best tuple along the first attribute, the
algorithm repeatedly finds the utility direction where the current
selection regrets most (the *witness* direction) and adds the database's
top-1 tuple for that direction. The witness search is exact: one LP per
candidate tuple per iteration (``method='lp'``), which is the behaviour
of the published implementations. A vectorized sampled variant
(``method='sample'``) replaces the LPs with a fixed utility sample for
large inputs — identical structure, approximate witness.

GREEDY has no approximation guarantee but is the strongest quality
baseline in practice; the paper reports it as the slowest algorithm
(Fig. 6), which this implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.lp import max_regret_direction
from repro.geometry.sampling import sample_utilities
from repro.utils import as_point_matrix, check_size_constraint, resolve_rng


@register("greedy", display_name="Greedy",
          summary="1-RMS greedy heuristic [22]",
          capabilities=Capabilities(randomized=True),
          bench=True, bench_kwargs={"method": "lp"})
def greedy(points, r: int, *, method: str = "lp", n_samples: int = 20_000,
           seed=None) -> np.ndarray:
    """Select ``r`` row indices minimizing ``mrr_1`` greedily.

    Parameters
    ----------
    points : (n, d) array
        Candidate tuples (pass the skyline for the paper's setting).
    r : int
        Result size.
    method : {'lp', 'sample', 'exact'}
        Witness search: ``'lp'`` adds the top-1 tuple of the exact
        worst-case direction (one LP per candidate per iteration, the
        published implementations' behaviour); ``'sample'`` does the
        same on a sampled utility grid; ``'exact'`` evaluates
        ``mrr_1(Q ∪ {p})`` for every candidate ``p`` and adds the
        minimizer — the literal "maximally reduces mrr" rule of [22],
        at O(n²) LPs per iteration (tiny inputs only).
    n_samples : int
        Utility sample size for ``method='sample'``.
    seed : int | Generator | None
        Randomness for the sampled variant.
    """
    pts = as_point_matrix(points)
    n, d = pts.shape
    r = check_size_constraint(r)
    if r >= n:
        return np.arange(n, dtype=np.intp)
    if method == "lp":
        return _greedy_lp(pts, r)
    if method == "sample":
        return _greedy_sampled(pts, r, n_samples, resolve_rng(seed))
    if method == "exact":
        return _greedy_exact(pts, r)
    raise ValueError(f"unknown method {method!r}")


def _greedy_exact(pts: np.ndarray, r: int) -> np.ndarray:
    """Candidate-based greedy: add argmin_p mrr_1(Q ∪ {p})."""
    from repro.core.regret import max_regret_ratio_lp
    n = pts.shape[0]
    selected = [int(np.argmax(pts[:, 0]))]
    chosen = set(selected)
    for _ in range(r - 1):
        if max_regret_ratio_lp(pts, pts[selected]) <= 1e-12:
            break
        best_val, best_j = float("inf"), None
        for j in range(n):
            if j in chosen:
                continue
            val = max_regret_ratio_lp(pts, pts[selected + [j]])
            if val < best_val:
                best_val, best_j = val, j
        if best_j is None:
            break
        chosen.add(best_j)
        selected.append(best_j)
    return np.asarray(selected, dtype=np.intp)


def _greedy_lp(pts: np.ndarray, r: int) -> np.ndarray:
    n, d = pts.shape
    selected = [int(np.argmax(pts[:, 0]))]
    chosen = set(selected)
    for _ in range(r - 1):
        best_val, best_dir = 0.0, None
        q = pts[selected]
        for j in range(n):
            if j in chosen:
                continue
            val, direction = max_regret_direction(pts[j], q)
            if val > best_val:
                best_val, best_dir = val, direction
        if best_dir is None or best_val <= 1e-12:
            break  # regret already (numerically) zero everywhere
        winner = int(np.argmax(pts @ best_dir))
        if winner in chosen:
            # The witness tuple itself is the top-1 for the witness
            # direction; fall back to the strongest un-chosen candidate.
            scores = pts @ best_dir
            scores[sorted(chosen)] = -np.inf
            winner = int(np.argmax(scores))
        chosen.add(winner)
        selected.append(winner)
    return np.asarray(selected, dtype=np.intp)


def _greedy_sampled(pts: np.ndarray, r: int, n_samples: int,
                    rng: np.random.Generator) -> np.ndarray:
    n, d = pts.shape
    utils = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = pts @ utils.T                    # (n, m)
    top = scores.max(axis=0)                  # ω(u, P) per utility
    top_safe = np.where(top > 0, top, 1.0)
    selected = [int(np.argmax(pts[:, 0]))]
    chosen = set(selected)
    best_q = scores[selected[0]].copy()       # ω(u, Q) per utility
    for _ in range(r - 1):
        rr = 1.0 - best_q / top_safe
        witness = int(np.argmax(rr))
        if rr[witness] <= 1e-12:
            break
        winner = int(np.argmax(scores[:, witness]))
        if winner in chosen:
            col = scores[:, witness].copy()
            col[sorted(chosen)] = -np.inf
            winner = int(np.argmax(col))
        chosen.add(winner)
        selected.append(winner)
        np.maximum(best_q, scores[winner], out=best_q)
    return np.asarray(selected, dtype=np.intp)
