"""Exact algorithms for small instances: 2-d interval DP + brute force.

For ``d = 2``, 1-RMS is solvable optimally (the "type 1" dynamic
programs of [4], [10], [11]): only upper-convex-hull vertices matter,
and they have a natural angular order, so choosing ``r`` of them is an
interval problem. Utility directions are parametrized by
``u(θ) = (cos θ, sin θ)``; the angle axis is discretized on the exact
*critical angles* (where two tuples swap rank) refined with a uniform
grid, which pins the worst-case regret to grid resolution.

The DP partitions angles by their *owner* — the tuple that is top-1
there. Angles owned left of the first chosen vertex are covered by it
(prefix cost), angles between two consecutive chosen vertices by the
better of the two (gap cost), and angles right of the last chosen vertex
by it (suffix cost). On a 2-d upper hull the best chosen tuple for an
angle is always one of its two angular neighbours, so this decomposition
is exact.

``brute_force_rms`` enumerates all size-``r`` subsets against a shared
evaluation oracle — usable only for tiny inputs, it serves the test
suite as an optimality reference for *any* d and k.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.hull import extreme_points
from repro.utils import as_point_matrix, check_k, check_size_constraint


def _angle_grid(pts: np.ndarray, resolution: int) -> np.ndarray:
    """Critical angles (pairwise rank swaps) plus a uniform refinement."""
    n = pts.shape[0]
    crit: list[float] = [0.0, np.pi / 2]
    for i in range(n):
        for j in range(i + 1, n):
            dx = pts[i, 0] - pts[j, 0]
            dy = pts[i, 1] - pts[j, 1]
            # <u, p_i> = <u, p_j> with u = (cos θ, sin θ):
            # cosθ·dx + sinθ·dy = 0  →  θ = atan2(-dx, dy).
            if dx != 0.0 or dy != 0.0:
                theta = float(np.arctan2(-dx, dy))
                if 0.0 <= theta <= np.pi / 2:
                    crit.append(theta)
    grid = np.linspace(0.0, np.pi / 2, resolution)
    return np.unique(np.concatenate([np.asarray(crit), grid]))


@register("dp2d", display_name="DP2D",
          summary="interval DP for d = 2 (optimality oracle)",
          capabilities=Capabilities(d2_only=True, exact=True))
def dp2d(points, r: int, *, resolution: int = 512) -> np.ndarray:
    """Optimal (to angle-grid resolution) 1-RMS for 2-d data.

    Returns row indices of the chosen subset, ``|result| <= r``.
    """
    pts = as_point_matrix(points)
    if pts.shape[1] != 2:
        raise ValueError(f"dp2d requires d = 2, got d = {pts.shape[1]}")
    r = check_size_constraint(r)
    n = pts.shape[0]
    if r >= n:
        return np.arange(n, dtype=np.intp)
    hull = extreme_points(pts)
    if hull.size <= r:
        return hull
    cand = pts[hull]
    thetas = _angle_grid(cand, resolution)
    dirs = np.stack([np.cos(thetas), np.sin(thetas)], axis=1)
    scores = dirs @ cand.T                       # (a, c)
    top = scores.max(axis=1)
    top_safe = np.where(top > 0, top, 1.0)
    reg = np.maximum(0.0, 1.0 - scores / top_safe[:, None])  # (a, c)
    c = cand.shape[0]
    # Angular order: on an upper hull, descending x equals ascending peak
    # angle. Owners are expressed in that order.
    order = np.argsort(-cand[:, 0], kind="stable")
    rank = np.empty(c, dtype=np.intp)
    rank[order] = np.arange(c)
    reg = reg[:, order]
    owner = rank[np.argmax(scores, axis=1)]      # order-index of top-1

    INF = float("inf")
    prefix = np.empty(c)
    suffix = np.empty(c)
    for i in range(c):
        left = owner < i
        prefix[i] = reg[left, i].max() if left.any() else 0.0
        right = owner > i
        suffix[i] = reg[right, i].max() if right.any() else 0.0
    gap = np.zeros((c, c))
    for i in range(c):
        for j in range(i + 1, c):
            mid = (owner > i) & (owner < j)
            if mid.any():
                gap[i, j] = float(np.minimum(reg[mid, i], reg[mid, j]).max())

    dp = np.full((c, r + 1), INF)
    parent = np.full((c, r + 1), -1, dtype=np.intp)
    dp[:, 1] = prefix
    for count in range(2, r + 1):
        for j in range(c):
            for i in range(j):
                val = max(dp[i, count - 1], gap[i, j])
                if val < dp[j, count]:
                    dp[j, count] = val
                    parent[j, count] = i
    final = np.minimum.reduce([
        np.maximum(dp[:, cnt], suffix) for cnt in range(1, r + 1)
    ])
    best_j = int(np.argmin(final))
    best_cnt = 1 + int(np.argmin(
        [max(dp[best_j, cnt], suffix[best_j]) for cnt in range(1, r + 1)]))
    chosen = [best_j]
    cur, cnt = best_j, best_cnt
    while cnt > 1 and parent[cur, cnt] >= 0:
        cur = int(parent[cur, cnt])
        cnt -= 1
        chosen.append(cur)
    chosen_rows = hull[order[np.asarray(sorted(set(chosen)), dtype=np.intp)]]
    return np.sort(chosen_rows)


def brute_force_rms(points, r: int, k: int = 1, *, evaluator=None,
                    candidates=None) -> tuple[np.ndarray, float]:
    """Exhaustive optimal RMS(k, r) for tiny inputs (test oracle).

    Parameters
    ----------
    evaluator : callable(points_p, points_q, k) -> float, optional
        Quality oracle; defaults to the exact LP for ``k = 1`` and the
        sampled estimator otherwise.
    candidates : array of row indices, optional
        Search space restriction (defaults to all rows).

    Returns ``(indices, mrr)`` of the best subset found.
    """
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    k = check_k(k)
    n = pts.shape[0]
    if candidates is None:
        candidates = np.arange(n, dtype=np.intp)
    else:
        candidates = np.asarray(candidates, dtype=np.intp)
    if evaluator is None:
        if k == 1:
            from repro.core.regret import max_regret_ratio_lp

            def evaluator(p, q, _k):
                return max_regret_ratio_lp(p, q)
        else:
            from repro.core.regret import max_k_regret_ratio_sampled

            def evaluator(p, q, kk):
                return max_k_regret_ratio_sampled(p, q, kk, n_samples=20_000,
                                                  seed=0)
    best_idx: tuple[int, ...] | None = None
    best_val = float("inf")
    size = min(r, candidates.size)
    for combo in itertools.combinations(range(candidates.size), size):
        rows = candidates[list(combo)]
        val = evaluator(pts, pts[rows], k)
        if val < best_val:
            best_val = val
            best_idx = tuple(int(x) for x in rows)
    assert best_idx is not None
    return np.asarray(best_idx, dtype=np.intp), float(best_val)
