"""DMM — discretized matrix min-max algorithms (Asudeh et al. [4]).

Both variants discretize the utility space into a fixed direction grid
and work on the regret matrix ``R[i, j] = max(0, 1 - s_ij / ω(u_i, P))``
(``s_ij`` the score of tuple ``j`` under grid direction ``u_i``):

* **DMM-RRMS** binary-searches the optimal achievable regret threshold
  over the sorted distinct entries of ``R``; feasibility of a threshold
  ``ε`` is decided by a greedy set cover (tuple ``j`` covers direction
  ``i`` iff ``R[i, j] <= ε``) of size at most ``r``.
* **DMM-GREEDY** adds, at each step, the tuple minimizing the resulting
  min-max regret over the grid.

The paper notes two DMM weaknesses that this implementation reproduces:
memory blows up with the grid (``per_axis^(d-1)``-ish growth), and the
quality degrades for ``r >= 50`` because the discretization becomes too
sparse relative to the result size.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.sampling import grid_utilities, sample_utilities
from repro.utils import as_point_matrix, check_size_constraint

_MAX_GRID = 50_000


def _direction_grid(d: int, per_axis: int, seed=None) -> np.ndarray:
    """Simplex grid of directions, falling back to sampling when huge."""
    from math import comb
    if comb(per_axis + d - 1, d - 1) <= _MAX_GRID:
        return grid_utilities(per_axis, d)
    dirs = sample_utilities(_MAX_GRID, d, seed=seed)
    return np.vstack([np.eye(d), dirs])


def _regret_matrix(pts: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    scores = dirs @ pts.T                       # (m, n)
    top = scores.max(axis=1, keepdims=True)
    top_safe = np.where(top > 0, top, 1.0)
    return np.maximum(0.0, 1.0 - scores / top_safe)


def _greedy_cover(reg: np.ndarray, eps: float, r: int) -> np.ndarray | None:
    """Greedy set cover of the directions with threshold ``eps``.

    Returns selected tuple indices (size <= r) or None if infeasible
    within ``r`` tuples.
    """
    covered = np.zeros(reg.shape[0], dtype=bool)
    ok = reg <= eps                             # (m, n) coverage matrix
    selected: list[int] = []
    while not covered.all():
        gains = ok[~covered].sum(axis=0)
        j = int(np.argmax(gains))
        # reprolint: disable=RPL002 -- int coverage count (bool sum); == 0 is exact
        if gains[j] == 0:
            return None  # some direction uncoverable at this threshold
        selected.append(j)
        covered |= ok[:, j]
        if len(selected) > r:
            return None
    return np.asarray(selected, dtype=np.intp)


@register("dmm-rrms", display_name="DMM-RRMS", aliases=("dmm_rrms",),
          summary="discretized matrix min-max [4]",
          capabilities=Capabilities(randomized=True),
          bench=True)
def dmm_rrms(points, r: int, *, per_axis: int = 8, seed=None) -> np.ndarray:
    """DMM-RRMS: min-max regret via binary search over matrix entries."""
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    n = pts.shape[0]
    if r >= n:
        return np.arange(n, dtype=np.intp)
    dirs = _direction_grid(pts.shape[1], per_axis, seed=seed)
    reg = _regret_matrix(pts, dirs)
    # Candidate thresholds: per-direction r-th smallest regrets bound the
    # search; using all distinct entries is exact but wasteful, so take
    # the sorted union of each row's smallest r+1 entries.
    take = min(r + 1, n)
    cand = np.unique(np.partition(reg, take - 1, axis=1)[:, :take])
    lo, hi = 0, cand.size - 1
    best: np.ndarray | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        sol = _greedy_cover(reg, float(cand[mid]), r)
        if sol is not None:
            best = sol
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        best = _greedy_cover(reg, 1.0, r)
    if best is None:  # pragma: no cover - eps=1 covers everything
        best = np.arange(min(r, n), dtype=np.intp)
    return best


@register("dmm-greedy", display_name="DMM-Greedy", aliases=("dmm_greedy",),
          summary="greedy on the DMM regret matrix [4]",
          capabilities=Capabilities(randomized=True),
          bench=True)
def dmm_greedy(points, r: int, *, per_axis: int = 8, seed=None) -> np.ndarray:
    """DMM-GREEDY: greedy min-max reduction on the discretized matrix."""
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    n = pts.shape[0]
    if r >= n:
        return np.arange(n, dtype=np.intp)
    dirs = _direction_grid(pts.shape[1], per_axis, seed=seed)
    reg = _regret_matrix(pts, dirs)             # (m, n)
    current = np.full(reg.shape[0], np.inf)
    selected: list[int] = []
    chosen = np.zeros(n, dtype=bool)
    for _ in range(r):
        # new_max[j] = max_i min(current_i, reg[i, j])
        post = np.minimum(reg, current[:, None]).max(axis=0)
        post[chosen] = np.inf
        j = int(np.argmin(post))
        if np.isinf(post[j]):
            break
        selected.append(j)
        chosen[j] = True
        np.minimum(current, reg[:, j], out=current)
        if current.max(initial=0.0) <= 1e-12:
            break
    return np.asarray(selected, dtype=np.intp)
