"""HS — hitting-set based k-RMS (Agarwal et al. [3]).

Sample a dense set of utility directions; for a trial error ε, each
direction ``u_i`` defines the constraint set
``T_i = {j : s_ij >= (1 - ε) · ω_k(u_i, P)}`` of tuples that would
satisfy a user with utility ``u_i``. A subset ``Q`` with
``mrr_k(Q) <= ε`` (on the sample) is exactly a *hitting set* of the
``T_i``; greedy hitting (equivalently greedy set cover on the dual)
finds one within a log factor of optimal. HS is min-size, so — per the
paper's adaptation (§IV-A) — we binary search the smallest ε whose
greedy hitting set fits in ``r`` tuples.

Note the paper's observation for ``k > 1``: the constraint sets must be
built over *all* tuples, not only the skyline, because ``ω_k`` is a
rank-k score; pass the full database accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.geometry.sampling import sample_utilities
from repro.utils import (
    as_point_matrix,
    check_k,
    check_size_constraint,
    resolve_rng,
)


def _greedy_hitting(ok: np.ndarray, r: int) -> np.ndarray | None:
    """Greedy hitting set on boolean matrix ``ok[i, j]`` (dir i hit by j).

    Returns at most ``r`` tuple indices or None when ``r`` is exceeded.
    """
    m = ok.shape[0]
    covered = np.zeros(m, dtype=bool)
    selected: list[int] = []
    while not covered.all():
        gains = ok[~covered].sum(axis=0)
        j = int(np.argmax(gains))
        # reprolint: disable=RPL002 -- int coverage count (bool sum); == 0 is exact
        if gains[j] == 0:
            return None
        selected.append(j)
        covered |= ok[:, j]
        if len(selected) > r:
            return None
    return np.asarray(selected, dtype=np.intp)


@register("hs", display_name="HS", aliases=("hitting-set", "hitting_set"),
          summary="hitting-set based min-size k-RMS [3]",
          capabilities=Capabilities(supports_k=True, min_size=True,
                                    randomized=True, skyline_pool=False),
          bench=True, bench_kwargs={"n_samples": 2000})
def hitting_set(points, r: int, k: int = 1, *, n_samples: int = 4_000,
                seed=None, tol: float = 1e-4) -> np.ndarray:
    """Select at most ``r`` rows via ε-binary-search over greedy hitting.

    Parameters
    ----------
    points : (n, d) array
        Candidate pool (full database for ``k > 1``).
    r, k : int
        Size constraint and rank parameter.
    n_samples : int
        Number of sampled utility constraints.
    tol : float
        Binary-search resolution on ε.
    """
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    k = check_k(k)
    n, d = pts.shape
    if r >= n:
        return np.arange(n, dtype=np.intp)
    rng = resolve_rng(seed)
    dirs = np.vstack([np.eye(d), sample_utilities(n_samples, d, seed=rng)])
    scores = dirs @ pts.T                         # (m, n)
    kk = min(k, n)
    kth = -np.partition(-scores, kk - 1, axis=1)[:, kk - 1]   # ω_k per dir
    kth_safe = np.where(kth > 0, kth, 0.0)

    lo, hi = 0.0, 1.0
    best: np.ndarray | None = None
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        ok = scores >= (1.0 - mid) * kth_safe[:, None]
        sol = _greedy_hitting(ok, r)
        if sol is not None:
            best = sol
            hi = mid
        else:
            lo = mid
    if best is None:
        ok = scores >= (1.0 - hi) * kth_safe[:, None]
        best = _greedy_hitting(ok, r)
    if best is None:  # pragma: no cover - ε→1 makes every tuple hit all
        best = np.arange(min(r, n), dtype=np.intp)
    return np.sort(best).astype(np.intp)
