"""GEOGREEDY — geometry-accelerated greedy (Peng & Wong [23]).

GEOGREEDY produces the same selections as GREEDY but prunes the
candidate pool to the *happy points*: tuples that are vertices of the
upper convex hull in some nonnegative direction, because only those can
ever be the unique top-1 tuple of a linear utility. The witness-search
loop is then identical to GREEDY's LP loop over the reduced pool.

The paper observes that GEOGREEDY matches GREEDY's quality on
low-dimensional data but cannot scale past ``d ≈ 7`` because computing
happy points degrades; our implementation inherits exactly that
behaviour through :func:`repro.geometry.hull.extreme_points` (exact
qhull up to ``d = 7``, directional probing beyond).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import Capabilities, register
from repro.baselines.greedy import greedy
from repro.geometry.hull import extreme_points
from repro.utils import as_point_matrix, check_size_constraint


@register("geogreedy", display_name="GeoGreedy",
          aliases=("geo-greedy", "geo_greedy"),
          summary="hull-restricted greedy [23]",
          capabilities=Capabilities(randomized=True),
          bench=True, bench_kwargs={"method": "lp"})
def geo_greedy(points, r: int, *, method: str = "lp", n_samples: int = 20_000,
               seed=None) -> np.ndarray:
    """Select ``r`` row indices via hull-restricted greedy.

    Parameters mirror :func:`repro.baselines.greedy`; the returned
    indices refer to rows of ``points`` (not of the reduced pool).
    """
    pts = as_point_matrix(points)
    r = check_size_constraint(r)
    happy = extreme_points(pts, seed=seed)
    if happy.size <= r:
        return happy
    local = greedy(pts[happy], r, method=method, n_samples=n_samples,
                   seed=seed)
    return happy[local]
