"""Deterministic fault injection for durability tests.

Small file-level mutators that simulate the crash/corruption modes the
persistence layer must survive: torn writes (truncation at a byte
offset), single-bit flips, missing or renamed files, version skew, and
partial WAL tails. Each helper is deterministic — no randomness — so a
failing fault-matrix case replays exactly.

These are test utilities, but they live in the package (not ``tests/``)
so the CLI and future chaos harnesses can reuse them.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "append_garbage",
    "bump_json_version",
    "flip_bit",
    "rename_away",
    "truncate_at",
    "truncate_last_bytes",
]


def truncate_at(path: str | Path, size: int) -> None:
    """Simulate a torn write: keep only the first ``size`` bytes."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:max(0, int(size))])


def truncate_last_bytes(path: str | Path, count: int) -> None:
    """Drop the final ``count`` bytes (a partial tail record)."""
    data = Path(path).read_bytes()
    truncate_at(path, len(data) - int(count))


def flip_bit(path: str | Path, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit in place (silent media corruption)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    data[byte_offset % len(data)] ^= 1 << (int(bit) % 8)
    path.write_bytes(bytes(data))


def rename_away(path: str | Path, suffix: str = ".missing") -> Path:
    """Make a file vanish (returns where it went, for restoration)."""
    path = Path(path)
    target = path.with_name(path.name + suffix)
    path.rename(target)
    return target


def append_garbage(path: str | Path,
                   data: bytes = b"\x00\xff\x80garbage") -> None:
    """Append binary garbage (a corrupted tail)."""
    path = Path(path)
    with path.open("ab") as handle:
        handle.write(data)


def bump_json_version(path: str | Path, version: int = 999) -> None:
    """Rewrite a JSON/JSONL file's ``version`` field (format skew).

    Works on both a JSON document (checkpoint manifest) and the header
    line of a JSONL file (WAL segment, trace).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        obj = json.loads(text)
        obj["version"] = int(version)
        path.write_text(json.dumps(obj, sort_keys=True) + "\n",
                        encoding="utf-8")
    except json.JSONDecodeError:
        head, _, rest = text.partition("\n")
        obj = json.loads(head)
        obj["version"] = int(version)
        path.write_text(json.dumps(obj, sort_keys=True,
                                   separators=(",", ":"))
                        + "\n" + rest, encoding="utf-8")
