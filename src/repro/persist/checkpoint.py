"""Versioned, digest-verified engine checkpoints.

A checkpoint is a directory with two files:

* ``state.npz`` — every engine array (uncompressed: restore speed is the
  point, and the zip container's CRC32 still catches torn writes and bit
  flips at read time);
* ``manifest.json`` — format kind/version, the engine config, per-array
  sha256 digests (dtype + shape + bytes), the logical ``state_digest``
  of the exported engine, and the WAL position the checkpoint covers.

Both files are written atomically (tmp + fsync + ``os.replace``) and the
manifest is written *last*: its presence is the commit point, so a crash
between the two stages leaves either the previous complete checkpoint or
no (new) checkpoint — never a half-written one that could load.

Every failure mode on the load path — missing files, truncation, flipped
bits, future format versions, inconsistent arrays — surfaces as a typed
:class:`CheckpointError`, which callers (the recovery layer) translate
into a clean cold start. A checkpoint never loads silently corrupt: the
restored engine's ``state_digest()`` must equal the digest recorded at
save time.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.persist.atomic import write_json_atomic, write_via_handle_atomic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.fdrms import FDRMS

__all__ = ["CheckpointError", "MANIFEST_NAME", "STATE_NAME",
           "load_checkpoint", "save_checkpoint", "verify_checkpoint"]

_KIND = "fdrms-checkpoint"
_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.npz"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or from an unknown format."""


def _array_digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(f"{a.dtype.str}:{a.shape}".encode())
    h.update(a.tobytes())
    return h.hexdigest()


def save_checkpoint(engine: "FDRMS", directory: str | Path, *,
                    wal_position: int = 0) -> dict[str, Any]:
    """Write a checkpoint of ``engine`` into ``directory``.

    Returns the manifest. ``wal_position`` records how many WAL
    operations the exported state already includes, so recovery replays
    only the tail.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        config, arrays = engine.export_state()
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"engine state is not exportable: {exc}") \
            from exc
    manifest: dict[str, Any] = {
        "kind": _KIND,
        "version": _FORMAT_VERSION,
        "config": config,
        "wal_position": int(wal_position),
        "state_digest": engine.state_digest(),
        "arrays": {
            name: {"dtype": np.asarray(arr).dtype.str,
                   "shape": list(np.asarray(arr).shape),
                   "sha256": _array_digest(arr)}
            for name, arr in arrays.items()
        },
    }
    write_via_handle_atomic(directory / STATE_NAME,
                            lambda h: np.savez(h, **arrays))
    # The manifest commits the checkpoint; it must land after the state.
    write_json_atomic(directory / MANIFEST_NAME, manifest, sort_keys=True)
    return manifest


def _read_manifest(directory: Path) -> dict[str, Any]:
    path = directory / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise CheckpointError(f"{directory}: no checkpoint manifest") \
            from exc
    except (OSError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable manifest: {exc}") from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: malformed manifest") from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != _KIND:
        raise CheckpointError(f"{path}: not a checkpoint manifest")
    version = int(manifest.get("version", -1))
    if version > _FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format v{version} is newer than this "
            f"library (v{_FORMAT_VERSION})")
    if version < 1:
        raise CheckpointError(f"{path}: bad checkpoint version {version}")
    return manifest


def _read_arrays(directory: Path,
                 manifest: dict[str, Any]) -> dict[str, np.ndarray]:
    path = directory / STATE_NAME
    expected = manifest.get("arrays")
    if not isinstance(expected, dict):
        raise CheckpointError(f"{path}: manifest lists no arrays")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError as exc:
        raise CheckpointError(f"{path}: checkpoint state missing") from exc
    except (zipfile.BadZipFile, EOFError, OSError, ValueError,
            KeyError) as exc:
        raise CheckpointError(f"{path}: corrupt state bundle: {exc}") \
            from exc
    if set(arrays) != set(expected):
        raise CheckpointError(
            f"{path}: state arrays do not match the manifest")
    for name, meta in expected.items():
        arr = arrays[name]
        if (arr.dtype.str != meta["dtype"]
                or list(arr.shape) != list(meta["shape"])
                or _array_digest(arr) != meta["sha256"]):
            raise CheckpointError(
                f"{path}: array {name!r} fails digest verification")
    return arrays


def load_checkpoint(directory: str | Path,
                    parallel: int | str | None = None
                    ) -> tuple["FDRMS", dict[str, Any]]:
    """Load and fully verify a checkpoint; returns ``(engine, manifest)``.

    Verification is end to end: manifest kind/version, per-array sha256
    digests, structural validation during state import, and finally the
    restored engine's logical ``state_digest()`` against the digest
    recorded at save time. Any failure raises :class:`CheckpointError`.
    ``parallel`` selects the restored engine's execution backend; it is
    a physical option, never part of the checkpoint.
    """
    from repro.core.fdrms import FDRMS

    directory = Path(directory)
    manifest = _read_manifest(directory)
    arrays = _read_arrays(directory, manifest)
    try:
        engine = FDRMS.from_state(manifest["config"], arrays,
                                  parallel=parallel)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{directory}: checkpoint state rejected: {exc}") from exc
    digest = engine.state_digest()
    if digest != manifest.get("state_digest"):
        raise CheckpointError(
            f"{directory}: restored engine digest {digest} does not "
            f"match the checkpoint ({manifest.get('state_digest')})")
    return engine, manifest


def verify_checkpoint(directory: str | Path) -> dict[str, Any]:
    """Run the full load-path verification; returns the manifest."""
    _, manifest = load_checkpoint(directory)
    return manifest
