"""Crash-safe persistence: checkpoints, WAL, verified recovery.

Public surface:

* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`verify_checkpoint` — versioned npz + manifest engine snapshots
  with per-array sha256 digests (:class:`CheckpointError` on any fault);
* :class:`WriteAheadLog` / :func:`read_wal` — append-mode operation log
  sharing the scenario-trace line format (:class:`WALError` on any
  fault);
* :func:`restore_engine` — load → verify → roll the WAL tail forward,
  with digest-checked exact parity against a never-restarted engine;
* :mod:`repro.persist.atomic` — the tmp+fsync+``os.replace`` write
  primitives every durable writer uses;
* :mod:`repro.persist.faults` — deterministic fault injection for
  durability tests.
"""

from repro.persist.atomic import (
    write_bytes_atomic,
    write_json_atomic,
    write_text_atomic,
)
from repro.persist.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from repro.persist.recovery import restore_engine
from repro.persist.wal import WALError, WriteAheadLog, read_wal

__all__ = [
    "CheckpointError",
    "WALError",
    "WriteAheadLog",
    "load_checkpoint",
    "read_wal",
    "restore_engine",
    "save_checkpoint",
    "verify_checkpoint",
    "write_bytes_atomic",
    "write_json_atomic",
    "write_text_atomic",
]
