"""Checkpoint restore with WAL roll-forward and verified parity.

The restore pipeline (wired into ``open_session(..., snapshot=...)``):

1. :func:`~repro.persist.checkpoint.load_checkpoint` — read the
   manifest, verify format version and per-array sha256 digests,
   rebuild the engine, and check its logical ``state_digest()`` against
   the digest recorded at save time;
2. read the WAL tail past the checkpoint's ``wal_position`` (strictly
   validated — a torn or malformed tail raises);
3. replay the tail through ``FDRMS.apply_batch`` — the exact code path
   a continuously-running engine takes, so the exact-parity contract of
   batched-vs-sequential updates extends to recovery: a restored engine
   is indistinguishable, digest for digest, from one that never went
   down.

Every detected fault raises :class:`CheckpointError` / :class:`WALError`
from the layer that found it; :func:`restore_engine` propagates them and
the session layer catches them to degrade gracefully to a cold start
(counted in ``stats()["recovery"]``). Nothing in this module ever
returns a partially restored engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.persist.checkpoint import CheckpointError, load_checkpoint
from repro.persist.wal import WALError, read_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fdrms import FDRMS

__all__ = ["restore_engine"]


def restore_engine(snapshot: str | Path, *,
                   wal: str | Path | None = None,
                   parallel: int | str | None = None
                   ) -> tuple["FDRMS", dict[str, Any]]:
    """Restore an engine from a checkpoint, rolling the WAL forward.

    Returns ``(engine, info)`` where ``info`` records what happened:
    ``checkpoint_digest`` (state at the checkpoint), ``replayed_ops``
    (WAL tail length), ``wal_position`` (head after replay) and
    ``state_digest`` (the restored engine, post-replay). Raises
    :class:`CheckpointError` or :class:`WALError` on any detected
    fault — callers decide whether that means cold start.
    """
    engine, manifest = load_checkpoint(snapshot, parallel=parallel)
    info: dict[str, Any] = {
        "mode": "restored",
        "checkpoint_digest": manifest["state_digest"],
        "replayed_ops": 0,
        "wal_position": int(manifest.get("wal_position", 0)),
    }
    if wal is not None:
        start = int(manifest.get("wal_position", 0))
        tail, head = read_wal(wal, start)
        if tail:
            try:
                engine.apply_batch(tail)
            except (TypeError, ValueError, KeyError, IndexError) as exc:
                raise WALError(
                    f"{wal}: WAL tail replay failed at position "
                    f">= {start}: {exc}") from exc
        info["replayed_ops"] = len(tail)
        info["wal_position"] = head
    info["state_digest"] = engine.state_digest()
    return engine, info
