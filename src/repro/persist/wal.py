"""Append-mode write-ahead log of engine operations.

The WAL shares the scenario-trace line format (PR 3): each segment is a
JSONL file whose first line is a header object and whose remaining lines
are ``[kind, tuple_id, point-or-null]`` operation records — exactly what
``json.dumps([op.kind, op.tuple_id, ...])`` produces for a trace body
line. Segments rotate at a configurable operation count and are named by
sequence number (``wal-00000001.jsonl``); each header records the global
operation index its segment starts at, so the chain is self-validating.

Durability is tunable per workload:

* ``fsync="always"`` — fsync after every :meth:`WriteAheadLog.append`;
* ``fsync="batch"`` (default) — flush every append, fsync on segment
  rotation, :meth:`WriteAheadLog.sync` and close;
* ``fsync="never"`` — flush only (tests, throwaway runs).

Readers are strict: a missing segment, a broken header chain, a partial
or malformed tail line, binary garbage, or a future format version all
raise a typed :class:`WALError` naming the file and line. Recovery
treats any :class:`WALError` as "the log cannot be trusted past this
point is unknowable" and degrades to a cold start — it never silently
truncates or skips records.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, TextIO

import numpy as np

from repro.data.database import DELETE, INSERT, Operation
from repro.persist.atomic import fsync_directory

__all__ = ["WALError", "WriteAheadLog", "read_wal", "wal_position"]

_KIND = "fdrms-wal"
_FORMAT_VERSION = 1
_SEGMENT_GLOB = "wal-*.jsonl"
_FSYNC_POLICIES = ("always", "batch", "never")


class WALError(RuntimeError):
    """The write-ahead log is missing, malformed, or untrustworthy."""


def _segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.jsonl"


def _segments(directory: Path) -> list[Path]:
    return sorted(directory.glob(_SEGMENT_GLOB))


def _op_line(op: Operation) -> str:
    point = None if op.point is None else [float(v) for v in op.point]
    return json.dumps([op.kind, op.tuple_id, point],
                      separators=(",", ":"))


def _parse_header(path: Path, line: str, expect_seq: int,
                  expect_start: int) -> None:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WALError(f"{path}:1: malformed segment header") from exc
    if not isinstance(header, dict) or header.get("kind") != _KIND:
        raise WALError(f"{path}:1: not a WAL segment header")
    version = int(header.get("version", -1))
    if version > _FORMAT_VERSION:
        raise WALError(f"{path}:1: WAL format v{version} is newer than "
                       f"this library (v{_FORMAT_VERSION})")
    if version < 1:
        raise WALError(f"{path}:1: bad WAL version {version}")
    if int(header.get("segment", -1)) != expect_seq:
        raise WALError(f"{path}:1: segment number "
                       f"{header.get('segment')} breaks the chain "
                       f"(expected {expect_seq})")
    if int(header.get("start_op", -1)) != expect_start:
        raise WALError(f"{path}:1: start_op {header.get('start_op')} "
                       f"breaks the chain (expected {expect_start})")


def _parse_op(path: Path, lineno: int, line: str) -> Operation:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WALError(
            f"{path}:{lineno}: partial or malformed WAL record") from exc
    if (not isinstance(record, list) or len(record) != 3
            or record[0] not in (INSERT, DELETE)):
        raise WALError(f"{path}:{lineno}: bad WAL record {record!r}")
    kind, tid, values = record
    point = None if values is None else np.asarray(values,
                                                   dtype=np.float64)
    return Operation(kind, point,
                     tuple_id=None if tid is None else int(tid))


def _iter_records(directory: Path) -> Iterator[Operation]:
    """Every operation in the log, strictly validated."""
    segments = _segments(directory)
    if not segments:
        return
    position = 0
    for seq, path in enumerate(segments):
        try:
            with path.open("r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except (OSError, UnicodeDecodeError) as exc:
            raise WALError(f"{path}: unreadable WAL segment: {exc}") \
                from exc
        if not lines or not lines[0]:
            raise WALError(f"{path}:1: empty WAL segment")
        _parse_header(path, lines[0], seq, position)
        if lines[-1] != "":
            raise WALError(f"{path}:{len(lines)}: torn final record "
                           f"(no trailing newline)")
        for lineno, line in enumerate(lines[1:-1], start=2):
            yield _parse_op(path, lineno, line)
            position += 1


def read_wal(directory: str | Path,
             start: int = 0) -> tuple[list[Operation], int]:
    """Read the log; returns ``(ops[start:], head_position)``.

    ``start`` is the global operation index to begin at (a checkpoint's
    ``wal_position``). Raises :class:`WALError` if the log is malformed
    or holds fewer than ``start`` operations (the checkpoint claims
    state the log never saw — one of the two is not ours).
    """
    directory = Path(directory)
    ops = list(_iter_records(directory))
    if start > len(ops):
        raise WALError(
            f"{directory}: log holds {len(ops)} operations but the "
            f"checkpoint claims position {start}")
    return ops[start:], len(ops)


def wal_position(directory: str | Path) -> int:
    """Number of operations in the log (validating the whole chain)."""
    return read_wal(directory)[1]


class WriteAheadLog:
    """Appender with segment rotation and a configurable fsync policy.

    Opening an existing directory validates the full chain and resumes
    appending after the last record; a malformed log raises
    :class:`WALError` (pass ``fresh=True`` to discard it and start over,
    which is what a cold-starting session does).
    """

    def __init__(self, directory: str | Path, *,
                 segment_ops: int = 4096,
                 fsync: str = "batch",
                 fresh: bool = False) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of "
                             f"{_FSYNC_POLICIES}, got {fsync!r}")
        if segment_ops < 1:
            raise ValueError("segment_ops must be >= 1")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_ops = int(segment_ops)
        self._fsync = fsync
        self._handle: TextIO | None = None
        # True while a segment file created by this appender may not be
        # durable as a *directory entry* yet. fsyncing the file data
        # alone is not enough: after a crash the entry itself can be
        # missing, which loses the whole segment no matter how hard its
        # bytes were synced.
        self._dir_dirty = False
        if fresh:
            for path in _segments(self._dir):
                path.unlink()
        segments = _segments(self._dir)
        self._position = wal_position(self._dir)
        self._seq = len(segments)  # next segment to create
        self._seg_count = 0
        if segments:
            # Resume the last segment if it still has room (``_seq``
            # stays at len(segments): it names the next segment to
            # create once this one fills).
            last_count = self._position - self._segment_start(segments)
            if last_count < self._segment_ops:
                self._seg_count = last_count
                # Records are the unit of atomicity; torn tails are
                # detected on read.
                # reprolint: disable=RPL010 -- append-mode log resume
                self._handle = segments[-1].open("a", encoding="utf-8")

    @staticmethod
    def _segment_start(segments: list[Path]) -> int:
        with segments[-1].open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        return int(header["start_op"])

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def position(self) -> int:
        """Global index of the next operation to be appended."""
        return self._position

    def _open_segment(self) -> TextIO:
        path = self._dir / _segment_name(self._seq)
        header = {"kind": _KIND, "version": _FORMAT_VERSION,
                  "segment": self._seq, "start_op": self._position}
        # Atomicity is per record (torn tails are detected on read),
        # not per file.
        # reprolint: disable=RPL010 -- append-mode log segment
        handle = path.open("a", encoding="utf-8")
        handle.write(json.dumps(header, sort_keys=True,
                                separators=(",", ":")) + "\n")
        self._seq += 1
        self._seg_count = 0
        self._dir_dirty = True
        return handle

    def _sync_directory(self) -> None:
        """Make the directory entries of new segments durable."""
        if self._dir_dirty and self._fsync != "never":
            fsync_directory(self._dir)
            self._dir_dirty = False

    def append(self, ops: Any) -> int:
        """Append operations; returns the new head position."""
        for op in ops:
            if self._handle is None:
                self._handle = self._open_segment()
            self._handle.write(_op_line(op) + "\n")
            self._position += 1
            self._seg_count += 1
            if self._seg_count >= self._segment_ops:
                self._rotate()
        if self._handle is not None:
            self._handle.flush()
            if self._fsync == "always":
                os.fsync(self._handle.fileno())
                self._sync_directory()
        return self._position

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        # A rotated-out segment is finished: under "batch" (and
        # "always") it must survive a crash even if nothing is ever
        # appended again, so its directory entry is synced here and not
        # deferred to close().
        self._sync_directory()

    def sync(self) -> None:
        """Force everything appended so far to disk.

        Under ``fsync="batch"`` this is the durability point the batch
        policy promises: file data *and* the directory entries of any
        segments created since the last sync — even when the segment
        rotation threshold was never reached.
        """
        if self._handle is not None:
            self._handle.flush()
            if self._fsync != "never":
                os.fsync(self._handle.fileno())
        self._sync_directory()

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
        else:
            # No open segment (fresh log, or the last append landed
            # exactly on a rotation): close() must still guarantee any
            # rotation since the last sync is directory-durable.
            self._sync_directory()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
