"""Atomic, durable file writes: tmp file + fsync + ``os.replace``.

Every writer in the persistence layer (and the benchmark JSON emitters)
funnels through this module, so a crash at any instant leaves either the
old file or the new file — never a truncated hybrid. This is the single
place allowed to open files for writing non-atomically (the tmp file
itself); reprolint rule RPL010 enforces that elsewhere in ``persist/``
and ``io.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "fsync_directory",
    "replace_atomic",
    "write_bytes_atomic",
    "write_json_atomic",
    "write_text_atomic",
    "write_via_handle_atomic",
]


def fsync_directory(directory: str | Path) -> None:
    """Flush a directory entry to disk (best effort).

    After ``os.replace`` the new *name* lives in the directory; fsyncing
    the directory makes the rename itself durable. Platforms that cannot
    open directories for reading are silently skipped.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _tmp_path(path: Path) -> Path:
    """Deterministic sibling tmp name (same filesystem as the target)."""
    return path.with_name(path.name + ".tmp")


def replace_atomic(tmp: str | Path, path: str | Path) -> None:
    """Atomically move a fully written tmp file onto its target."""
    tmp, path = Path(tmp), Path(path)
    os.replace(tmp, path)
    fsync_directory(path.parent)


def write_via_handle_atomic(path: str | Path,
                            write: Callable[[Any], None], *,
                            mode: str = "wb") -> None:
    """Run ``write(handle)`` against a tmp file, fsync, then replace.

    The generic building block: callers that need a real file handle
    (``np.savez``, line-by-line writers) pass a callback; everything
    else uses the convenience wrappers below.
    """
    path = Path(path)
    tmp = _tmp_path(path)
    # reprolint: disable=RPL010 -- this IS the atomic-write primitive
    with tmp.open(mode) as handle:
        write(handle)
        handle.flush()
        os.fsync(handle.fileno())
    replace_atomic(tmp, path)


def write_bytes_atomic(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    write_via_handle_atomic(path, lambda h: h.write(data), mode="wb")


def write_text_atomic(path: str | Path, text: str, *,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    write_bytes_atomic(path, text.encode(encoding))


def write_json_atomic(path: str | Path, obj: Any, *,
                      indent: int | None = 2,
                      sort_keys: bool = False) -> None:
    """Atomically replace ``path`` with ``obj`` serialized as JSON."""
    write_text_atomic(path, json.dumps(obj, indent=indent,
                                       sort_keys=sort_keys) + "\n")
